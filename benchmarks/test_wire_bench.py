"""Wire benchmark: codec throughput and federated bytes-per-round.

Two families of measurements, both reported into BENCH_pr4.json by
``scripts/run_bench.sh``:

- ``test_codec_encode`` / ``test_codec_decode`` time the raw zero-copy codec
  against the legacy npz oracle on real model state dicts (Table II sizes).
- ``test_federated_round_bytes`` runs a short simulated federation per
  compression setting and attaches the measured wire traffic (bytes per
  round, raw vs encoded tensor bytes) to the benchmark record.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    DataKind,
    FLContext,
    FLJob,
    Learner,
    MetaKey,
    SimulatorRunner,
)
from repro.flare.codec import (
    decode_tensors,
    decode_tensors_npz,
    encode_tensors,
    encode_tensors_npz,
)
from repro.models import build_classifier

MODELS = ["bert", "bert-mini", "lstm"]
VOCAB = 200

COMPRESSION_SETTINGS = {
    "none": None,
    "delta+fp16": "delta+fp16",
    "delta+fp16+deflate": "delta+fp16+deflate",
    "delta+fp16+topk": "delta+fp16+topk:0.1",
}


def model_state(model_name: str) -> dict[str, np.ndarray]:
    return dict(build_classifier(model_name, vocab_size=VOCAB, seed=0).state_dict())


class DriftLearner(Learner):
    """Deterministic stand-in for local training: adds a small seeded
    perturbation to every float tensor.  Instant, so the benchmark measures
    the wire, not the optimizer."""

    def __init__(self, site_name: str, scale: float = 1e-3) -> None:
        super().__init__(name="DriftLearner")
        self.rng = np.random.default_rng(abs(hash(site_name)) % (2 ** 31))
        self.scale = scale

    def train(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        updated = {}
        for key, value in dxo.data.items():
            value = np.asarray(value)
            if value.dtype.kind == "f":
                drift = self.rng.normal(0.0, self.scale, size=value.shape)
                updated[key] = (value + drift).astype(value.dtype)
            else:
                updated[key] = value
        return DXO(DataKind.WEIGHTS, data=updated,
                   meta={MetaKey.NUM_STEPS_CURRENT_ROUND: 1})

    def validate(self, dxo: DXO, fl_ctx: FLContext) -> dict[str, float]:
        return {"valid_acc": 0.0}


# ---------------------------------------------------------------------------
# codec throughput: raw must beat npz on encode and decode at every size
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("codec", ["raw", "npz"])
@pytest.mark.parametrize("model_name", MODELS)
def test_codec_encode(benchmark, model_name, codec):
    state = model_state(model_name)
    encode = encode_tensors if codec == "raw" else encode_tensors_npz
    blob = benchmark(encode, state)
    benchmark.extra_info["payload_bytes"] = int(sum(a.nbytes for a in state.values()))
    benchmark.extra_info["blob_bytes"] = len(blob)


@pytest.mark.parametrize("codec", ["raw", "npz"])
@pytest.mark.parametrize("model_name", MODELS)
def test_codec_decode(benchmark, model_name, codec):
    state = model_state(model_name)
    if codec == "raw":
        blob = encode_tensors(state)
        arrays = benchmark(lambda: decode_tensors(blob)[0])
    else:
        blob = encode_tensors_npz(state)
        arrays = benchmark(lambda: decode_tensors_npz(blob))
    assert set(arrays) == set(state)
    benchmark.extra_info["blob_bytes"] = len(blob)


# ---------------------------------------------------------------------------
# federated wire traffic per compression setting
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("setting", list(COMPRESSION_SETTINGS))
@pytest.mark.parametrize("model_name", MODELS)
def test_federated_round_bytes(benchmark, tmp_path, model_name, setting):
    rounds, n_clients = 3, 2
    job = FLJob(name=f"wire-{model_name}-{setting}",
                initial_weights=model_state(model_name),
                learner_factory=lambda name: DriftLearner(name),
                num_rounds=rounds)

    def run():
        return SimulatorRunner(
            job, n_clients=n_clients, seed=0,
            run_dir=tmp_path / f"{model_name}-{setting}",
            capture_log=False,
            compression=COMPRESSION_SETTINGS[setting]).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    stats = result.stats
    per_round = [record.bytes_on_wire for record in stats.rounds]
    benchmark.extra_info.update({
        "model": model_name,
        "compression": setting,
        "rounds": rounds,
        "n_clients": n_clients,
        "bytes_delivered": stats.bytes_delivered,
        "bytes_per_round_mean": int(np.mean(per_round)),
        # steady state: from round 1 on, downlink deltas are active
        "bytes_per_round_steady": int(np.mean(per_round[1:])) if len(per_round) > 1
        else int(per_round[0]),
        "round_seconds_mean": float(np.mean([r.seconds for r in stats.rounds])),
        "wire_bytes_raw": stats.wire_bytes_raw,
        "wire_bytes_encoded": stats.wire_bytes_encoded,
    })
    assert stats.failed_rounds == 0
    assert not stats.dropped_clients
