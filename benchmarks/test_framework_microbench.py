"""Micro-benchmarks of the federated substrate itself.

Not a paper artifact, but the numbers practitioners ask about before
adopting the framework: DXO wire-codec throughput, signed transport
round-trips, aggregation cost, and the RSA provisioning handshake.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    DataKind,
    FLContext,
    InTimeAccumulateWeightedAggregator,
    MessageBus,
    MetaKey,
    Provisioner,
    default_project,
    from_dxo,
)


def model_sized_dxo(n_params=500_000):
    rng = np.random.default_rng(0)
    return DXO(DataKind.WEIGHTS,
               data={"block": rng.normal(size=n_params).astype(np.float32)},
               meta={MetaKey.NUM_STEPS_CURRENT_ROUND: 100})


def test_dxo_encode(benchmark):
    dxo = model_sized_dxo()
    blob = benchmark(dxo.to_bytes)
    benchmark.extra_info["payload_mb"] = round(len(blob) / 1e6, 2)


def test_dxo_decode(benchmark):
    blob = model_sized_dxo().to_bytes()
    restored = benchmark(DXO.from_bytes, blob)
    assert "block" in restored.data


def test_transport_roundtrip(benchmark):
    bus = MessageBus()
    bus.register_endpoint("server")
    bus.register_endpoint("site-1")
    bus.install_session_key("server", b"sk")
    bus.install_session_key("site-1", b"ck")
    shareable = from_dxo(model_sized_dxo(100_000))

    def roundtrip():
        bus.send_shareable("server", "site-1", "train", shareable)
        return bus.receive("site-1", timeout=5.0)

    sender, _, _ = benchmark(roundtrip)
    assert sender == "server"


@pytest.mark.parametrize("n_clients", [2, 8, 32])
def test_aggregation_scaling(benchmark, n_clients):
    contributions = [model_sized_dxo(100_000) for _ in range(n_clients)]
    ctx = FLContext()
    ctx.set_prop("current_round", 0)

    def aggregate():
        agg = InTimeAccumulateWeightedAggregator()
        agg.reset()
        for index, dxo in enumerate(contributions):
            agg.accept(dxo, f"site-{index}", ctx)
        return agg.aggregate(ctx)

    out = benchmark(aggregate)
    assert out.data["block"].shape == (100_000,)


def test_provisioning_handshake(benchmark):
    """Full provision of a 1+8 project with 512-bit RSA identities."""

    def provision():
        project = default_project(n_clients=8)
        return Provisioner(project, seed=0, key_bits=512).provision()

    kits = benchmark(provision)
    assert len(kits) == 10  # server + 8 sites + admin
