"""Bench for Table III: top-1 accuracy per model × training scheme.

Regenerates every cell of the paper's Table III on the synthetic clopidogrel
cohort and asserts the paper's qualitative shape:

- FL tracks centralized for every model,
- standalone (per-site training) is clearly worse,
- the recursive model (LSTM) is the strongest under the paper's
  hyperparameters.

Timings are reported by pytest-benchmark; the accuracies land in
``extra_info`` of the summary cell.
"""

from __future__ import annotations

import pytest

from repro.experiments import TABLE3_PAPER_ACCURACY, run_table3, run_table3_cell

from .conftest import run_once

SCHEMES = ("centralized", "standalone", "fl")


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("model_name", ["bert", "bert-mini", "lstm"])
def test_table3_cell(benchmark, scale, scheme, model_name):
    """One (scheme, model) cell: times the full training run."""
    if model_name not in scale.models:
        pytest.skip(f"{model_name} not in scale {scale.name!r}")
    accuracy = run_once(benchmark, lambda: run_table3_cell(scheme, model_name,
                                                           scale=scale))
    benchmark.extra_info["top1_accuracy_percent"] = round(accuracy, 1)
    benchmark.extra_info["paper_value"] = TABLE3_PAPER_ACCURACY.get(
        scheme, {}).get(model_name)
    assert 0.0 <= accuracy <= 100.0


def test_table3_shape(benchmark, scale):
    """The whole table at once, checked against the paper's orderings."""
    result = run_once(benchmark, lambda: run_table3(scale=scale))
    benchmark.extra_info["table"] = result.accuracy
    print()
    print(result.to_text())
    checks = result.shape_checks()
    print(checks)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"Table III shape violated: {failed}\n{result.to_text()}"
