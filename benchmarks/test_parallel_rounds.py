"""Wall-clock per federated round: serial fabric vs the shm worker pool,
plus array-backend A/Bs at model shapes.

The full interleaved serial-vs-pool protocol (bit-identity gate, registry
diff, machine-context provenance) lives in ``scripts/bench_smoke.py``; these
benchmarks expose the same workloads to pytest-benchmark so ``run_bench.sh``
-style tooling can track them per-commit.  Protocol notes in "Measuring
parallel rounds" in ``docs/PERFORMANCE.md`` apply: compare back-to-back
ratios, never absolute times, and read the core count before reading a
speedup.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.autograd import Tensor, available_backends, functional as F, use_backend
from repro.flare import DXO, DataKind, FLJob, Learner, MetaKey, SimulatorRunner
from repro.models import build_classifier

from .conftest import run_once


class StepLearner(Learner):
    """A learner doing real fused-kernel work: N train steps per round."""

    def __init__(self, site_name: str, steps: int = 4) -> None:
        super().__init__(name="StepLearner")
        self.site_name = site_name
        self.steps = steps
        self.model = build_classifier("bert-mini", vocab_size=60,
                                      seed=abs(hash(site_name)) % 1000)
        rng = np.random.default_rng(abs(hash(site_name)) % 2**31)
        self.ids = rng.integers(1, 60, size=(8, 24))
        self.labels = rng.integers(0, 2, size=8)

    def train(self, dxo: DXO, fl_ctx) -> DXO:
        self.model.load_state_dict({k: np.asarray(v)
                                    for k, v in dxo.data.items()})
        for _ in range(self.steps):
            self.model.zero_grad()
            loss = F.cross_entropy(self.model(self.ids), self.labels)
            loss.backward()
        return DXO(DataKind.WEIGHTS, data=self.model.state_dict(),
                   meta={MetaKey.NUM_STEPS_CURRENT_ROUND: self.steps})

    def validate(self, dxo: DXO, fl_ctx) -> dict[str, float]:
        return {"valid_acc": 0.0}


def federated_job(rounds: int = 2) -> FLJob:
    weights = build_classifier("bert-mini", vocab_size=60, seed=0).state_dict()
    return FLJob(name="parallel-bench", initial_weights=weights,
                 learner_factory=lambda name: StepLearner(name),
                 num_rounds=rounds, min_clients=4, result_timeout=300.0)


@pytest.mark.parametrize("transport", ["memory", "shm"])
def test_federated_round_wallclock(benchmark, tmp_path, transport):
    """Whole-run wall clock on each fabric — the honest pool metric."""
    rounds = 2

    def run():
        return SimulatorRunner(federated_job(rounds), n_clients=4, seed=7,
                               run_dir=tmp_path / f"{transport}-run",
                               transport=transport).run()

    result = run_once(benchmark, run)
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cores = os.cpu_count() or 1
    benchmark.extra_info["transport"] = transport
    benchmark.extra_info["rounds"] = rounds
    benchmark.extra_info["clients"] = 4
    benchmark.extra_info["cores"] = cores
    assert result.stats.num_rounds == rounds


@pytest.mark.parametrize("backend_name", available_backends())
def test_gelu_chain_by_backend(benchmark, backend_name):
    """The GELU fwd+bwd hot loop under each registered backend."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(16, 40, 256)).astype(np.float32),
               requires_grad=True)

    def step():
        with use_backend(backend_name):
            x.grad = None
            out = F.gelu(x)
            out.backward(np.ones_like(out.data))
        return out

    benchmark(step)
    benchmark.extra_info["backend"] = backend_name


@pytest.mark.parametrize("backend_name", available_backends())
def test_lstm_gates_by_backend(benchmark, backend_name):
    """The sigmoid-heavy LSTM gate math under each registered backend."""
    rng = np.random.default_rng(1)
    hd = 128
    gates = Tensor(rng.normal(size=(32, 4 * hd)).astype(np.float32),
                   requires_grad=True)
    h = Tensor(rng.normal(size=(32, hd)).astype(np.float32),
               requires_grad=True)
    c = Tensor(rng.normal(size=(32, hd)).astype(np.float32),
               requires_grad=True)
    w = Tensor(rng.normal(size=(4 * hd, hd)).astype(np.float32),
               requires_grad=True)

    def step():
        with use_backend(backend_name):
            for p in (gates, h, c, w):
                p.grad = None
            h_out, c_out = F.lstm_step(gates, h, c, w)
            (h_out.sum() + c_out.sum()).backward()
        return h_out

    benchmark(step)
    benchmark.extra_info["backend"] = backend_name
