"""Massive-cohort benchmarks: hierarchical fan-in and async wall-clock.

Two families of measurements, both reported into BENCH_pr9.json by
``scripts/run_bench.sh``:

- ``test_fanin_weighted`` / ``test_fanin_median`` time a single aggregation
  fold over a synthetic cohort of updates, flat vs :class:`TreeAggregator`.
  The weighted family shows the tree's overhead on the in-place streaming
  fold is modest; the median family (which must stash updates) shows the
  tree caps peak materialized updates at O(arity * depth) instead of O(n).
- ``test_cohort_round`` runs a full simulated federation — sync sampled
  rounds vs the FedBuff-style async controller — and attaches wall-clock,
  wire traffic and the peak-materialization high-water mark.

The 1,000-site gated run (bounded materialization + peak RSS + registry
diff) lives in ``scripts/cohort_smoke.py``; these benchmarks expose the
same mechanisms to pytest-benchmark so regressions show up per-commit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    CoordinateMedianAggregator,
    DataKind,
    FLContext,
    FLJob,
    InTimeAccumulateWeightedAggregator,
    Learner,
    MaterializationTracker,
    MetaKey,
    SimulatorRunner,
    TreeAggregator,
)

from .conftest import run_once

ARITY = 8

# scale.name -> synthetic-cohort sizes for the fan-in fold and the simulated
# federation (the paper's cohort is sites*patients; here "cohort" means sites)
SIZES = {
    "smoke": {"fanin_updates": 96, "clients": 24},
    "bench": {"fanin_updates": 384, "clients": 48},
    "paper": {"fanin_updates": 1000, "clients": 200},
}

FANIN_DIM = 128  # one 128x128 fp32 tensor per update (~64 KiB)


def make_updates(n: int) -> list[DXO]:
    return [
        DXO(data_kind=DataKind.WEIGHTS,
            data={"w": np.full((FANIN_DIM, FANIN_DIM), float(i),
                               dtype=np.float32)},
            meta={MetaKey.NUM_STEPS_CURRENT_ROUND: 1 + i % 7})
        for i in range(n)
    ]


def fold(agg, updates):
    ctx = FLContext()
    agg.reset()
    for i, dxo in enumerate(updates):
        agg.accept(dxo, f"site-{i}", ctx)
    return agg.aggregate(ctx)


# ---------------------------------------------------------------------------
# fan-in fold: flat vs arity-8 reduction tree
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["flat", "tree"])
def test_fanin_weighted(benchmark, scale, mode):
    n = SIZES[scale.name]["fanin_updates"]
    updates = make_updates(n)
    if mode == "flat":
        agg = InTimeAccumulateWeightedAggregator()
    else:
        agg = TreeAggregator(arity=ARITY)
    agg.tracker = MaterializationTracker()

    result = benchmark(fold, agg, updates)

    reference = fold(InTimeAccumulateWeightedAggregator(), updates)
    np.testing.assert_allclose(result.data["w"], reference.data["w"],
                               rtol=1e-5)
    benchmark.extra_info.update({
        "family": "weighted", "mode": mode, "n_updates": n, "arity": ARITY,
        "peak_materialized": agg.tracker.peak,
        "depth": getattr(agg, "depth", 1),
    })


@pytest.mark.parametrize("mode", ["flat", "tree"])
def test_fanin_median(benchmark, scale, mode):
    # the robust aggregator must stash updates until the fold; flat keeps
    # all n alive at once, the tree folds subtrees eagerly
    n = SIZES[scale.name]["fanin_updates"]
    updates = make_updates(n)
    if mode == "flat":
        agg = CoordinateMedianAggregator()
    else:
        agg = TreeAggregator(arity=ARITY,
                             node_factory=CoordinateMedianAggregator)
    agg.tracker = MaterializationTracker()

    benchmark(fold, agg, updates)

    peak = agg.tracker.peak
    if mode == "flat":
        assert peak >= n
    else:
        assert peak < n // 4
    benchmark.extra_info.update({
        "family": "median", "mode": mode, "n_updates": n, "arity": ARITY,
        "peak_materialized": peak,
        "depth": getattr(agg, "depth", 1),
    })


# ---------------------------------------------------------------------------
# full simulated round: sync sampled cohort vs FedBuff-style async
# ---------------------------------------------------------------------------
class DeltaLearner(Learner):
    """Instant deterministic learner so the benchmark measures the runtime
    (dispatch, transport, fold), not the optimizer."""

    def __init__(self, site_name: str) -> None:
        super().__init__(name="DeltaLearner")
        self.site_name = site_name
        index = int(site_name.rsplit("-", 1)[-1])
        self.delta = 0.001 * (1 + index % 13)
        self.steps = 1 + index % 7

    def train(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        updated = {key: np.asarray(value) + np.float32(self.delta)
                   for key, value in dxo.data.items()}
        return DXO(DataKind.WEIGHTS, data=updated,
                   meta={MetaKey.NUM_STEPS_CURRENT_ROUND: self.steps})


@pytest.mark.parametrize("mode", ["sync", "async"])
def test_cohort_round(benchmark, tmp_path, scale, mode):
    n_clients = SIZES[scale.name]["clients"]
    commits = 3
    weights = {"dense.weight": np.zeros((64, 64), dtype=np.float32)}
    common = dict(name=f"cohort-{mode}", initial_weights=weights,
                  learner_factory=DeltaLearner, num_rounds=commits,
                  sampler="uniform", sampling_seed=0)
    if mode == "sync":
        job = FLJob(clients_per_round=8, **common)
    else:
        job = FLJob(mode="async", buffer_size=8, concurrency=16,
                    staleness_alpha=0.5, **common)

    def run():
        return SimulatorRunner(job, n_clients=n_clients, seed=0,
                               run_dir=tmp_path / mode, capture_log=False,
                               threads=False, key_bits=128).run()

    result = run_once(benchmark, run)
    stats = result.stats
    staleness = [c.staleness for r in stats.rounds for c in r.client_records]
    assert all(r.quorum_met for r in stats.rounds)
    benchmark.extra_info.update({
        "mode": mode,
        "clients": n_clients,
        "commits": commits,
        "updates_per_commit": 8,
        "bytes_delivered": stats.bytes_delivered,
        "peak_materialized_updates": stats.peak_materialized_updates,
        "staleness_max": max(staleness, default=0),
        "round_seconds_mean": float(np.mean([r.seconds
                                             for r in stats.rounds])),
    })
