"""Ablation bench: effect of NVFlare-style privacy filters on FL accuracy.

The paper positions NVFlare as privacy-preserving but does not quantify the
privacy/utility trade-off; this ablation does, for the filter chain shipped
with the framework: no filter vs Gaussian noise at two strengths vs
percentile clipping.
"""

from __future__ import annotations

import pytest

from repro.experiments import prepare_table3_data
from repro.flare import GaussianPrivacy, PercentilePrivacy
from repro.models import build_classifier
from repro.training import run_federated

from .conftest import run_once

FILTERS = {
    "none": lambda: [],
    "gaussian-0.05": lambda: [GaussianPrivacy(sigma0=0.05, seed=0)],
    "gaussian-0.3": lambda: [GaussianPrivacy(sigma0=0.3, seed=0)],
    "percentile-10": lambda: [PercentilePrivacy(percentile=10.0)],
}


@pytest.mark.parametrize("filter_name", sorted(FILTERS))
def test_privacy_filter_ablation(benchmark, scale, filter_name):
    _train, valid, shards, vocab_size = prepare_table3_data(scale)
    model_name = "lstm" if "lstm" in scale.models else "lstm-tiny"

    def factory():
        return build_classifier(model_name, vocab_size=vocab_size, seed=0)

    def run():
        # 1 local epoch regardless of scale: the ablation compares filters
        # against each other, so the cheapest faithful FL loop suffices
        return run_federated(
            factory, shards, valid, num_rounds=scale.num_rounds,
            local_epochs=1, batch_size=scale.batch_size,
            lr=scale.lr, job_name=f"privacy-{filter_name}",
            task_result_filters=FILTERS[filter_name]())

    result = run_once(benchmark, run)
    benchmark.extra_info["filter"] = filter_name
    benchmark.extra_info["best_acc_percent"] = round(100.0 * result.best_acc, 1)
    assert 0.0 <= result.best_acc <= 1.0
