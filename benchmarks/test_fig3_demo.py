"""Bench for Fig. 3: the federated fine-tuning demonstration.

Runs the 8-client simulator job and verifies the captured transcript shows
every protocol stage of the paper's screenshot (token registration, local
epochs, aggregation of 8 updates, persistence, round advance).
"""

from __future__ import annotations

from repro.experiments import run_fig3

from .conftest import run_once


def test_fig3_transcript(benchmark, scale):
    result = run_once(benchmark, lambda: run_fig3(scale=scale))
    benchmark.extra_info["stages"] = result.stages_found
    benchmark.extra_info["sec_per_local_epoch"] = round(
        result.seconds_per_local_epoch, 2)
    print()
    print(result.to_text())
    missing = [stage for stage, found in result.stages_found.items() if not found]
    assert not missing, f"transcript missing stages: {missing}"
    assert len(result.tokens) == 8
