"""Ablation bench: FedAvg vs coordinate-median when one site is corrupted.

The paper's FedAvg assumes every clinic ships an honest update.  This
ablation injects one site that returns garbage weights and compares the
default weighted-mean aggregator with the Byzantine-robust coordinate
median: the median run should retain most of its accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import prepare_table3_data
from repro.flare import (
    DXO,
    CoordinateMedianAggregator,
    DataKind,
    FLJob,
    InTimeAccumulateWeightedAggregator,
    SimulatorRunner,
)
from repro.models import build_classifier
from repro.training import ClinicalClassificationLearner, evaluate_classifier

from .conftest import run_once


class CorruptingLearner(ClinicalClassificationLearner):
    """Trains normally, then replaces its update with large noise."""

    def train(self, dxo: DXO, fl_ctx) -> DXO:
        result = super().train(dxo, fl_ctx)
        rng = np.random.default_rng(0)
        poisoned = {key: rng.normal(scale=10.0, size=np.asarray(value).shape)
                    .astype(np.float32)
                    for key, value in result.data.items()}
        return DXO(data_kind=DataKind.WEIGHTS, data=poisoned, meta=dict(result.meta))


AGGREGATORS = {
    "fedavg": lambda: InTimeAccumulateWeightedAggregator(),
    "median": lambda: CoordinateMedianAggregator(),
}


@pytest.mark.parametrize("aggregator_name", sorted(AGGREGATORS))
def test_one_corrupted_site(benchmark, scale, aggregator_name):
    train, valid, shards, vocab_size = prepare_table3_data(scale)
    model_name = "lstm" if "lstm" in scale.models else "lstm-tiny"

    def factory():
        return build_classifier(model_name, vocab_size=vocab_size, seed=0)

    def learner_factory(client_name: str):
        cls = CorruptingLearner if client_name == "site-8" else ClinicalClassificationLearner
        # 1 local epoch: the comparison is fedavg-vs-median, not absolute acc
        return cls(site_name=client_name, model_factory=factory,
                   train_data=shards[client_name], valid_data=None,
                   local_epochs=1, batch_size=scale.batch_size,
                   lr=scale.lr)

    eval_model = factory()

    def evaluator(weights):
        eval_model.load_state_dict({k: np.asarray(v) for k, v in weights.items()},
                                   strict=False)
        accuracy, _ = evaluate_classifier(eval_model, valid)
        return {"valid_acc": accuracy}

    def run():
        job = FLJob(name=f"robust-{aggregator_name}",
                    initial_weights=factory().state_dict(),
                    learner_factory=learner_factory,
                    num_rounds=scale.num_rounds, evaluator=evaluator,
                    aggregator_factory=AGGREGATORS[aggregator_name])
        result = SimulatorRunner(job, n_clients=len(shards), seed=0,
                                 capture_log=False).run()
        return result.stats.final_global_metric("valid_acc")

    accuracy = run_once(benchmark, run)
    benchmark.extra_info["final_acc_percent"] = round(100 * accuracy, 1)
    benchmark.extra_info["corrupted_site"] = "site-8"
    if aggregator_name == "median":
        # robust aggregation must stay above majority-class collapse…
        assert accuracy > 0.5
