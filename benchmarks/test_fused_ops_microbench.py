"""Op-level micro-benchmarks: fused kernels vs the unfused reference graph.

Each case times one forward + backward of a single op at the shapes the
Table II models actually use (BERT-mini: batch 16, seq 40, hidden 50).  The
``impl`` axis makes the fused-vs-reference speedup directly visible in the
pytest-benchmark report; ``scripts/run_bench.sh`` folds these numbers into
``BENCH_pr2.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, reference as R

BATCH, SEQ, DIM, HEADS, FFN_DIM = 16, 40, 50, 2, 200
HIDDEN = 64  # LSTM step width


def _tensor(rng, *shape):
    return Tensor(rng.normal(0.0, 0.5, shape).astype(np.float32),
                  requires_grad=True)


def _run(benchmark, params, forward):
    def step():
        for p in params:
            p.grad = None
        out = forward()
        out.sum().backward()
        return out

    out = benchmark(step)
    assert np.isfinite(out.data).all()


def _impl(impl):
    return F if impl == "fused" else R


@pytest.mark.parametrize("impl", ["fused", "reference"])
def test_softmax_fwd_bwd(benchmark, impl):
    rng = np.random.default_rng(0)
    x = _tensor(rng, BATCH, HEADS, SEQ, SEQ)
    _run(benchmark, [x], lambda: _impl(impl).softmax(x))


@pytest.mark.parametrize("impl", ["fused", "reference"])
def test_cross_entropy_fwd_bwd(benchmark, impl):
    rng = np.random.default_rng(0)
    logits = _tensor(rng, BATCH * SEQ, 200)
    targets = rng.integers(0, 200, size=BATCH * SEQ)
    _run(benchmark, [logits], lambda: _impl(impl).cross_entropy(logits, targets))


@pytest.mark.parametrize("impl", ["fused", "reference"])
def test_gelu_fwd_bwd(benchmark, impl):
    rng = np.random.default_rng(0)
    x = _tensor(rng, BATCH * SEQ, FFN_DIM)
    _run(benchmark, [x], lambda: _impl(impl).gelu(x))


@pytest.mark.parametrize("impl", ["fused", "reference"])
def test_layer_norm_fwd_bwd(benchmark, impl):
    rng = np.random.default_rng(0)
    params = [_tensor(rng, BATCH, SEQ, DIM), _tensor(rng, DIM), _tensor(rng, DIM)]
    _run(benchmark, params, lambda: _impl(impl).layer_norm(*params))


@pytest.mark.parametrize("impl", ["fused", "reference"])
def test_attention_layer_fwd_bwd(benchmark, impl):
    rng = np.random.default_rng(0)
    inner = HEADS * 25
    params = [_tensor(rng, BATCH, SEQ, DIM),
              _tensor(rng, inner, DIM), _tensor(rng, inner),
              _tensor(rng, inner, DIM), _tensor(rng, inner),
              _tensor(rng, inner, DIM), _tensor(rng, inner),
              _tensor(rng, DIM, inner), _tensor(rng, DIM),
              _tensor(rng, DIM), _tensor(rng, DIM)]
    mask = (rng.random((BATCH, SEQ)) > 0.1)[:, None, None, :]
    drop_rng = np.random.default_rng(1)
    _run(benchmark, params,
         lambda: _impl(impl).attention_layer(
             *params[:9], HEADS, params[9], params[10], attention_mask=mask,
             dropout_p=0.1, training=True, rng=drop_rng,
             out_dropout_p=0.1, out_rng=drop_rng))


@pytest.mark.parametrize("impl", ["fused", "reference"])
def test_ffn_layer_fwd_bwd(benchmark, impl):
    rng = np.random.default_rng(0)
    params = [_tensor(rng, BATCH, SEQ, DIM),
              _tensor(rng, FFN_DIM, DIM), _tensor(rng, FFN_DIM),
              _tensor(rng, DIM, FFN_DIM), _tensor(rng, DIM),
              _tensor(rng, DIM), _tensor(rng, DIM)]
    drop_rng = np.random.default_rng(1)
    _run(benchmark, params,
         lambda: _impl(impl).ffn_layer(*params, dropout_p=0.1, training=True,
                                       rng=drop_rng))


@pytest.mark.parametrize("impl", ["fused", "reference"])
def test_lstm_step_fwd_bwd(benchmark, impl):
    rng = np.random.default_rng(0)
    params = [_tensor(rng, BATCH, 4 * HIDDEN), _tensor(rng, BATCH, HIDDEN),
              _tensor(rng, BATCH, HIDDEN), _tensor(rng, 4 * HIDDEN, HIDDEN)]

    def forward():
        h, c = _impl(impl).lstm_step(*params)
        return h + c

    _run(benchmark, params, forward)


@pytest.mark.parametrize("impl", ["fused", "reference"])
def test_embed_layer_norm_fwd_bwd(benchmark, impl):
    rng = np.random.default_rng(0)
    params = [_tensor(rng, 200, DIM), _tensor(rng, 128, DIM),
              _tensor(rng, DIM), _tensor(rng, DIM)]
    ids = rng.integers(1, 200, size=(BATCH, SEQ))
    drop_rng = np.random.default_rng(1)
    _run(benchmark, params,
         lambda: _impl(impl).embed_layer_norm(params[0], params[1], ids,
                                              params[2], params[3],
                                              dropout_p=0.1, training=True,
                                              rng=drop_rng))
