"""Bench for the §IV-B.4 timing observation: seconds per local epoch.

The paper reports 12.7 s per local BERT epoch on an RTX 2080 Ti.  Our
substrate is numpy-on-CPU at a reduced workload, so the absolute number
differs; this bench records the equivalent measurement so the two can be
compared in EXPERIMENTS.md, and also times one epoch for each model family.
"""

from __future__ import annotations

import pytest

from repro.experiments import prepare_table3_data
from repro.models import build_classifier
from repro.training import TrainConfig, train_classifier


@pytest.mark.parametrize("model_name", ["bert", "bert-mini", "lstm"])
def test_local_epoch_time(benchmark, scale, model_name):
    if model_name not in scale.models:
        pytest.skip(f"{model_name} not in scale {scale.name!r}")
    _train, _valid, shards, vocab_size = prepare_table3_data(scale)
    shard = shards["site-1"]  # the largest site (29% of the data)
    overrides = {"max_seq_len": scale.max_seq_len} if model_name.startswith("bert") else {}
    model = build_classifier(model_name, vocab_size=vocab_size, seed=0, **overrides)
    config = TrainConfig(epochs=1, batch_size=scale.batch_size, lr=scale.lr)

    benchmark.extra_info["shard_size"] = len(shard)
    benchmark.extra_info["paper_reference_seconds"] = 12.7
    benchmark.pedantic(lambda: train_classifier(model, shard, config),
                       rounds=1, iterations=1, warmup_rounds=0)
