"""Bench for Fig. 2: MLM pretraining loss under four data regimes.

Paper shape: centralized, FL-imbalanced and FL-balanced all converge to a
common low plateau; the small-data regime plateaus visibly higher (paper:
3.5 vs 4.4 final loss).  Absolute values differ here because the synthetic
vocabulary is smaller (initial loss ≈ ln(vocab)), which EXPERIMENTS.md
documents.
"""

from __future__ import annotations

import pytest

from repro.experiments import REGIMES, run_fig2

from .conftest import run_once


@pytest.mark.parametrize("regime", REGIMES)
def test_fig2_regime(benchmark, scale, regime):
    """One pretraining regime: times the full run, records the curve."""
    result = run_once(benchmark, lambda: run_fig2(scale=scale, regimes=(regime,)))
    curve = result.curves[regime]
    benchmark.extra_info["mlm_loss_curve"] = [round(v, 3) for v in curve]
    # pretraining improves the loss at some point (the small-data regime may
    # tick back up late from overfitting, as in the paper's own curve)
    assert min(curve) <= curve[0]


def test_fig2_shape(benchmark, scale):
    """All four regimes; asserts the paper's ordering claims."""
    result = run_once(benchmark, lambda: run_fig2(scale=scale))
    benchmark.extra_info["final_losses"] = {
        name: round(curve[-1], 3) for name, curve in result.curves.items()}
    print()
    print(result.to_text())
    checks = result.shape_checks()
    print(checks)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"Fig. 2 shape violated: {failed}"
