"""Micro-benchmarks: forward+backward throughput of the Table II models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.models import build_classifier

BATCH, SEQ, VOCAB = 16, 40, 200


@pytest.mark.parametrize("model_name", ["bert", "bert-mini", "lstm"])
def test_train_step_throughput(benchmark, model_name):
    model = build_classifier(model_name, vocab_size=VOCAB, seed=0)
    rng = np.random.default_rng(0)
    ids = rng.integers(1, VOCAB, size=(BATCH, SEQ))
    labels = rng.integers(0, 2, size=BATCH)

    def step():
        model.zero_grad()
        loss = F.cross_entropy(model(ids), labels)
        loss.backward()
        return float(loss.data)

    loss = benchmark(step)
    benchmark.extra_info["params"] = model.num_parameters()
    benchmark.extra_info["samples_per_call"] = BATCH
    assert np.isfinite(loss)


@pytest.mark.parametrize("model_name", ["bert", "bert-mini", "lstm"])
def test_inference_throughput(benchmark, model_name):
    model = build_classifier(model_name, vocab_size=VOCAB, seed=0)
    model.eval()
    rng = np.random.default_rng(0)
    ids = rng.integers(1, VOCAB, size=(BATCH, SEQ))

    from repro.autograd import no_grad

    def infer():
        with no_grad():
            return model(ids).data

    logits = benchmark(infer)
    assert logits.shape == (BATCH, 2)
