"""Ablation bench for §IV-B.3 / future work: accuracy vs dataset size.

The paper attributes LSTM's win over BERT partly to dataset size ("LSTM can
be effectively trained with relatively smaller amounts of data") and names
the size sweep as future work.  This bench trains both families centralized
on growing fractions of the cohort and records the accuracy curves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import prepare_table3_data
from repro.models import build_classifier
from repro.training import run_centralized

from .conftest import run_once

FRACTIONS = (0.1, 0.3, 1.0)


@pytest.mark.parametrize("model_name", ["bert-mini", "lstm"])
def test_dataset_size_sweep(benchmark, scale, model_name):
    if model_name not in scale.models:
        model_name = {"bert-mini": "bert-tiny", "lstm": "lstm-tiny"}[model_name]
    train, valid, _shards, vocab_size = prepare_table3_data(scale)
    overrides = {"max_seq_len": scale.max_seq_len} if model_name.startswith("bert") else {}

    def factory():
        return build_classifier(model_name, vocab_size=vocab_size, seed=0, **overrides)

    def sweep():
        accs = {}
        for fraction in FRACTIONS:
            size = max(16, int(len(train) * fraction))
            subset = train.subset(np.arange(size))
            result = run_centralized(factory, subset, valid,
                                     epochs=scale.centralized_epochs,
                                     batch_size=scale.batch_size, lr=scale.lr)
            accs[fraction] = round(100.0 * result.best_acc, 1)
        return accs

    accs = run_once(benchmark, sweep)
    benchmark.extra_info["accuracy_by_fraction"] = accs
    # more data should never hurt much: full-data acc within 5 pts of best
    assert accs[1.0] >= max(accs.values()) - 5.0
