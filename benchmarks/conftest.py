"""Benchmark harness configuration.

Every paper table/figure has one benchmark module.  The workload size is
controlled by ``REPRO_SCALE`` (default ``bench``); set ``REPRO_SCALE=paper``
to run the full-size experiments (hours on CPU) or ``REPRO_SCALE=smoke`` for
a quick pass.  Accuracy-style "benchmarks" run once (rounds=1) and attach
their scientific results to the benchmark's ``extra_info`` so the numbers
land in the pytest-benchmark report next to the timings.
"""

from __future__ import annotations

import logging

import pytest

from repro.experiments import get_scale
from repro.flare import set_console_level


@pytest.fixture(autouse=True, scope="session")
def _quiet_logs():
    set_console_level(logging.ERROR)
    yield


@pytest.fixture(scope="session")
def scale():
    return get_scale()


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
