"""Telemetry overhead: full instrumentation on vs off, same train step.

The acceptance target is < 3% median step-time overhead with metrics +
tracing + op profiling all armed, measured on the PR 2 fused-model
microbench workload (forward+backward train step).  Run with
``--benchmark-only`` like the other benches; the A/B comparison itself is
asserted loosely in ``tests/obs/test_overhead.py`` (shared machines drift
too much for a 3% assertion to be stable in tier-1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.models import build_classifier
from repro.obs import TelemetrySession, span

BATCH, SEQ, VOCAB = 16, 40, 200


def _make_step(model_name):
    model = build_classifier(model_name, vocab_size=VOCAB, seed=0)
    rng = np.random.default_rng(0)
    ids = rng.integers(1, VOCAB, size=(BATCH, SEQ))
    labels = rng.integers(0, 2, size=BATCH)

    def step():
        model.zero_grad()
        with span("step"):
            loss = F.cross_entropy(model(ids), labels)
            loss.backward()
        return float(loss.data)

    return step


@pytest.mark.parametrize("model_name", ["bert-mini", "lstm"])
def test_step_telemetry_off(benchmark, model_name):
    loss = benchmark(_make_step(model_name))
    assert np.isfinite(loss)


@pytest.mark.parametrize("model_name", ["bert-mini", "lstm"])
def test_step_telemetry_on(benchmark, model_name, tmp_path):
    step = _make_step(model_name)
    with TelemetrySession(tmp_path):
        loss = benchmark(step)
    assert np.isfinite(loss)
