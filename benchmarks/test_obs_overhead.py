"""Telemetry + health overhead: instrumentation on vs off, same workload.

The acceptance target is < 3% median step-time overhead with metrics +
tracing + op profiling all armed (and likewise with the health monitor
added on top), measured on the PR 2 fused-model microbench workload
(forward+backward train step).  Run with ``--benchmark-only`` like the
other benches; the A/B comparison itself is asserted loosely in
``tests/obs/test_overhead.py`` (shared machines drift too much for a 3%
assertion to be stable in tier-1).

The health monitor's per-round cost (sketching + detectors at aggregation
time) is benchmarked separately — it is off the training hot path by
design, bounded by the coordinate sample size, not the model size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.models import build_classifier
from repro.obs import HealthMonitor, TelemetrySession, span

BATCH, SEQ, VOCAB = 16, 40, 200


def _make_step(model_name):
    model = build_classifier(model_name, vocab_size=VOCAB, seed=0)
    rng = np.random.default_rng(0)
    ids = rng.integers(1, VOCAB, size=(BATCH, SEQ))
    labels = rng.integers(0, 2, size=BATCH)

    def step():
        model.zero_grad()
        with span("step"):
            loss = F.cross_entropy(model(ids), labels)
            loss.backward()
        return float(loss.data)

    return step


@pytest.mark.parametrize("model_name", ["bert-mini", "lstm"])
def test_step_telemetry_off(benchmark, model_name):
    loss = benchmark(_make_step(model_name))
    assert np.isfinite(loss)


@pytest.mark.parametrize("model_name", ["bert-mini", "lstm"])
def test_step_telemetry_on(benchmark, model_name, tmp_path):
    step = _make_step(model_name)
    with TelemetrySession(tmp_path):
        loss = benchmark(step)
    assert np.isfinite(loss)


@pytest.mark.parametrize("model_name", ["bert-mini", "lstm"])
def test_step_telemetry_and_health_on(benchmark, model_name, tmp_path):
    """Steps run between health-monitored rounds: same < 3% budget.

    The monitor does nothing per step (it hooks aggregation), so armed
    telemetry+health must time like armed telemetry alone.
    """
    step = _make_step(model_name)
    with TelemetrySession(tmp_path, health=True):
        loss = benchmark(step)
    assert np.isfinite(loss)


def _make_round(n_clients=8, n_params=200_000):
    """One full monitored round over realistic-size client updates."""
    rng = np.random.default_rng(0)
    reference = {"w": rng.standard_normal(n_params).astype(np.float32)}
    updates = {f"site-{i}": {"w": reference["w"]
                             + rng.standard_normal(n_params).astype(np.float32)
                             * 0.01}
               for i in range(n_clients)}
    new_global = {"w": reference["w"] + 0.01}
    state = {"round": 0}

    def round_once(monitor):
        r = state["round"]
        state["round"] = r + 1
        monitor.begin_round(r, sorted(updates), reference=reference)
        for name, data in updates.items():
            monitor.record_update(name, data, latency_seconds=0.1)
        monitor.end_round(seconds=1.0, bytes_on_wire=10_000,
                          global_metrics={"valid_acc": 0.8},
                          new_global=new_global)

    return round_once


def test_health_round_cost(benchmark):
    """Absolute per-round monitor cost (8 clients x 200k params)."""
    monitor = HealthMonitor()
    round_once = _make_round()
    benchmark(round_once, monitor)
