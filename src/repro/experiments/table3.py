"""Table III reproduction: top-1 accuracy of BERT / BERT-mini / LSTM under
centralized, standalone and federated training.

One call to :func:`run_table3` regenerates the whole table on the synthetic
clopidogrel cohort; per-cell entry points exist so the benchmark harness can
time each scheme separately.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..data import (
    CohortSpec,
    EhrTokenizer,
    PAPER_IMBALANCED_RATIOS,
    encode_cohort,
    generate_cohort,
    partition_by_ratios,
    train_valid_split,
)
from ..flare import set_console_level
from ..models import build_classifier
from ..training import run_centralized, run_federated, run_standalone
from .configs import ExperimentScale, TABLE3_PAPER_ACCURACY, get_scale
from .report import format_table

__all__ = ["Table3Result", "run_table3", "run_table3_cell", "prepare_table3_data",
           "clear_table3_cache"]

SCHEMES = ("centralized", "standalone", "fl")

# (scheme, model, scale-name, seed) -> accuracy; lets the benchmark harness
# time each cell once and assemble the full table without recomputation.
_CELL_CACHE: dict[tuple[str, str, str, int], float] = {}


def clear_table3_cache() -> None:
    _CELL_CACHE.clear()


@dataclass
class Table3Result:
    """Accuracy (percent) per scheme × model, plus the paper's reference."""

    accuracy: dict[str, dict[str, float]] = field(default_factory=dict)
    scale_name: str = "bench"

    def set_cell(self, scheme: str, model: str, value: float) -> None:
        self.accuracy.setdefault(scheme, {})[model] = value

    def get_cell(self, scheme: str, model: str) -> float:
        return self.accuracy[scheme][model]

    def to_text(self) -> str:
        models = sorted({m for row in self.accuracy.values() for m in row})
        rows = []
        for scheme in SCHEMES:
            if scheme not in self.accuracy:
                continue
            row = [scheme] + [f"{self.accuracy[scheme].get(m, float('nan')):.1f}"
                              for m in models]
            paper_row = TABLE3_PAPER_ACCURACY.get(scheme, {})
            row += [f"(paper: {paper_row[m]:.1f})" if m in paper_row else ""
                    for m in models]
            rows.append(row)
        headers = ["scheme"] + models + [f"paper {m}" for m in models]
        return format_table(headers, rows,
                            title=f"Table III — top-1 accuracy [%] (scale={self.scale_name})")

    def shape_checks(self) -> dict[str, bool]:
        """The qualitative claims of Table III, evaluated on this run.

        - federated roughly matches centralized for every model,
        - standalone is clearly worse than federated,
        - the LSTM is the strongest model in centralized and FL.
        """
        checks: dict[str, bool] = {}
        for model in self.accuracy.get("fl", {}):
            cent = self.accuracy.get("centralized", {}).get(model)
            fl = self.accuracy.get("fl", {}).get(model)
            alone = self.accuracy.get("standalone", {}).get(model)
            if cent is not None and fl is not None:
                checks[f"{model}: fl within 5pts of centralized"] = fl >= cent - 5.0
            if alone is not None and fl is not None:
                checks[f"{model}: standalone below fl"] = alone < fl
        fl_row = self.accuracy.get("fl", {})
        if "lstm" in fl_row and len(fl_row) > 1:
            checks["lstm strongest under fl"] = fl_row["lstm"] == max(fl_row.values())
        return checks


def prepare_table3_data(scale: ExperimentScale, seed: int = 7):
    """Cohort → encode → split → imbalanced 8-way shards.

    Returns ``(train, valid, shards, vocab_size)``.
    """
    cohort = generate_cohort(CohortSpec(n_patients=scale.cohort_size, seed=seed))
    tokenizer = EhrTokenizer(cohort.vocab, max_len=scale.max_seq_len)
    dataset = encode_cohort(cohort, tokenizer)
    train_idx, valid_idx = train_valid_split(len(dataset), valid_fraction=0.2, seed=seed)
    train, valid = dataset.subset(train_idx), dataset.subset(valid_idx)
    shard_indices = partition_by_ratios(len(train), PAPER_IMBALANCED_RATIOS, seed=seed)
    shards = {f"site-{i + 1}": train.subset(s) for i, s in enumerate(shard_indices)}
    return train, valid, shards, len(cohort.vocab)


def run_table3_cell(scheme: str, model_name: str,
                    scale: ExperimentScale | None = None, seed: int = 7,
                    quiet: bool = True, use_cache: bool = True) -> float:
    """Run one (scheme, model) cell; returns top-1 accuracy in percent.

    Results are memoised per (scheme, model, scale, seed) so that assembling
    the full table after per-cell benchmarks does not recompute everything.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}")
    scale = scale or get_scale()
    cache_key = (scheme, model_name, scale.name, seed)
    if use_cache and cache_key in _CELL_CACHE:
        return _CELL_CACHE[cache_key]
    if quiet:
        set_console_level(logging.WARNING)
    train, valid, shards, vocab_size = prepare_table3_data(scale, seed=seed)
    # cost-sensitive loss for the 21%-positive ADR task; applied identically
    # in every scheme so the Table III comparison stays apples-to-apples
    positive = max(train.positive_rate, 1e-6)
    class_weights = np.array([1.0, (1.0 - positive) / positive])

    def factory():
        overrides = {"max_seq_len": scale.max_seq_len} if model_name.startswith("bert") else {}
        return build_classifier(model_name, vocab_size=vocab_size, seed=seed, **overrides)

    if scheme == "centralized":
        result = run_centralized(factory, train, valid,
                                 epochs=scale.centralized_epochs,
                                 batch_size=scale.batch_size, lr=scale.lr, seed=seed,
                                 class_weights=class_weights)
        accuracy = 100.0 * result.best_acc
    elif scheme == "standalone":
        result = run_standalone(factory, shards, valid,
                                epochs=scale.centralized_epochs,
                                batch_size=scale.batch_size, lr=scale.lr, seed=seed,
                                class_weights=class_weights)
        accuracy = 100.0 * result.mean_acc
    else:
        fed = run_federated(factory, shards, valid, num_rounds=scale.num_rounds,
                            local_epochs=scale.local_epochs,
                            batch_size=scale.batch_size, lr=scale.lr, seed=seed,
                            job_name=f"table3-{model_name}",
                            class_weights=class_weights)
        accuracy = 100.0 * fed.best_acc
    _CELL_CACHE[cache_key] = accuracy
    return accuracy


def run_table3(scale: ExperimentScale | None = None, seed: int = 7,
               models: tuple[str, ...] | None = None,
               schemes: tuple[str, ...] = SCHEMES, quiet: bool = True) -> Table3Result:
    """Regenerate the full Table III."""
    scale = scale or get_scale()
    result = Table3Result(scale_name=scale.name)
    for model_name in (models or scale.models):
        for scheme in schemes:
            value = run_table3_cell(scheme, model_name, scale=scale, seed=seed,
                                    quiet=quiet)
            result.set_cell(scheme, model_name, value)
    return result
