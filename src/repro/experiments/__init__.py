"""``repro.experiments`` — one module per paper artifact (tables & figures)."""

from .configs import (
    PAPER_PARAMETERS,
    SCALES,
    TABLE2_MODELS,
    TABLE3_PAPER_ACCURACY,
    ExperimentScale,
    get_scale,
)
from .fig2 import Fig2Result, REGIMES, prepare_fig2_data, run_fig2
from .fig3 import Fig3Result, TRANSCRIPT_STAGES, run_fig3
from .report import ascii_plot, format_series, format_table
from .table3 import Table3Result, prepare_table3_data, run_table3, run_table3_cell

__all__ = [
    "PAPER_PARAMETERS", "TABLE2_MODELS", "TABLE3_PAPER_ACCURACY",
    "ExperimentScale", "SCALES", "get_scale",
    "Table3Result", "run_table3", "run_table3_cell", "prepare_table3_data",
    "Fig2Result", "run_fig2", "REGIMES", "prepare_fig2_data",
    "Fig3Result", "run_fig3", "TRANSCRIPT_STAGES",
    "format_table", "format_series", "ascii_plot",
]
