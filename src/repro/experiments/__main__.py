"""CLI: regenerate paper artifacts.

Usage::

    python -m repro.experiments table3 [--scale smoke|bench|paper]
    python -m repro.experiments fig2   [--scale ...]
    python -m repro.experiments fig3   [--scale ...]
    python -m repro.experiments all    [--scale ...]
"""

from __future__ import annotations

import argparse
import sys
import time

from .configs import SCALES, get_scale
from .fig2 import run_fig2
from .fig3 import run_fig3
from .table3 import run_table3


def _print_checks(checks: dict[str, bool]) -> bool:
    for name, ok in checks.items():
        print(f"  [{'x' if ok else ' '}] {name}")
    return all(checks.values())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments",
                                     description=__doc__)
    parser.add_argument("artifact", choices=["table3", "fig2", "fig3", "all"])
    parser.add_argument("--scale", choices=sorted(SCALES), default=None,
                        help="workload size (default: $REPRO_SCALE or 'bench')")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    started = time.time()
    ok = True

    if args.artifact in ("table3", "all"):
        result = run_table3(scale=scale, seed=args.seed)
        print(result.to_text())
        ok &= _print_checks(result.shape_checks())
    if args.artifact in ("fig2", "all"):
        result = run_fig2(scale=scale)
        print(result.to_text())
        ok &= _print_checks(result.shape_checks())
    if args.artifact in ("fig3", "all"):
        result = run_fig3(scale=scale, seed=args.seed)
        print(result.to_text())
        ok &= result.all_stages_present()

    print(f"\ndone in {time.time() - started:.0f}s "
          f"({'all shape checks passed' if ok else 'SHAPE CHECKS FAILED'})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
