"""Experiment configuration: the paper's Tables I & II plus run scales.

``PAPER_PARAMETERS`` transcribes Table I.  :class:`ExperimentScale` maps the
paper's workload onto three sizes: ``paper`` (full counts — hours on CPU
with the numpy substrate), ``bench`` (the default for the benchmark harness;
same models and protocol, smaller cohort/rounds) and ``smoke`` (seconds; CI).
Select with ``REPRO_SCALE=paper|bench|smoke`` or pass a scale explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["PAPER_PARAMETERS", "TABLE2_MODELS", "TABLE3_PAPER_ACCURACY",
           "ExperimentScale", "SCALES", "get_scale"]

# Table I, transcribed
PAPER_PARAMETERS: dict = {
    "num_clients": 8,
    "hardware": {
        "machine_1": {"os": "Ubuntu 20.04 LTS", "cpu": "Intel Xeon E5-2638 (2ea)",
                      "gpu": "NVIDIA RTX 2080 Ti (4ea)", "ram_gb": 128},
        "machine_2": "AWS p3.8xlarge",
    },
    "software": ["PyTorch v1.13", "CUDA v11.7", "NVFlare v2.2",
                 "MLM-PyTorch", "X-Transformers"],
    "data": {
        "pretrain_train": 453_377,
        "pretrain_valid": 8_683,
        "finetune_train": 6_927,
        "finetune_valid": 1_732,
    },
    "optimizer": "Adam",
    "learning_rate": 1e-2,
}

# Table II, transcribed (hidden dim / attention heads / hidden layers)
TABLE2_MODELS: dict[str, dict] = {
    "bert": {"hidden_dim": 128, "num_heads": 6, "num_layers": 12},
    "bert-mini": {"hidden_dim": 50, "num_heads": 2, "num_layers": 6},
    "lstm": {"hidden_dim": 128, "num_heads": None, "num_layers": 3},
}

# Table III, transcribed — the reference shape our reproduction is held to
TABLE3_PAPER_ACCURACY: dict[str, dict[str, float]] = {
    "centralized": {"bert": 80.1, "bert-mini": 72.7, "lstm": 87.9},
    "standalone": {"bert": 72.2, "bert-mini": 68.5, "lstm": 67.3},
    "fl": {"bert": 80.1, "bert-mini": 72.3, "lstm": 87.5},
}


@dataclass(frozen=True)
class ExperimentScale:
    """One size mapping of the paper's workload."""

    name: str
    cohort_size: int          # clopidogrel cohort (paper: 8,638)
    pretrain_sequences: int   # MLM corpus (paper: 453,377)
    pretrain_valid: int       # MLM validation (paper: 8,683)
    max_seq_len: int
    num_rounds: int           # E communication rounds
    local_epochs: int         # per round (paper Fig. 3: 10)
    centralized_epochs: int   # budget-matched to rounds * local_epochs
    batch_size: int
    lr: float                 # paper Table I: 1e-2
    mlm_lr: float
    mlm_epochs: int
    models: tuple[str, ...]   # presets evaluated in Table III
    mlm_model: str = "bert"   # preset pretrained in Fig. 2
    demo_model: str = "bert"  # preset fine-tuned in the Fig. 3 demo


SCALES: dict[str, ExperimentScale] = {
    "paper": ExperimentScale(
        name="paper", cohort_size=8_638, pretrain_sequences=453_377,
        pretrain_valid=8_683, max_seq_len=64, num_rounds=10, local_epochs=10,
        centralized_epochs=100, batch_size=32, lr=1e-2, mlm_lr=1e-3,
        mlm_epochs=20, models=("bert", "bert-mini", "lstm")),
    "bench": ExperimentScale(
        name="bench", cohort_size=1_600, pretrain_sequences=2_000,
        pretrain_valid=300, max_seq_len=40, num_rounds=5, local_epochs=2,
        centralized_epochs=5, batch_size=32, lr=1e-2, mlm_lr=1e-3,
        mlm_epochs=4, models=("bert", "bert-mini", "lstm")),
    "smoke": ExperimentScale(
        name="smoke", cohort_size=320, pretrain_sequences=320,
        pretrain_valid=64, max_seq_len=24, num_rounds=2, local_epochs=1,
        centralized_epochs=2, batch_size=32, lr=1e-2, mlm_lr=1e-3,
        mlm_epochs=2, models=("bert-tiny", "lstm-tiny"),
        mlm_model="bert-tiny", demo_model="bert-tiny"),
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by argument, ``REPRO_SCALE`` env var, or default."""
    chosen = name or os.environ.get("REPRO_SCALE", "bench")
    if chosen not in SCALES:
        raise KeyError(f"unknown scale {chosen!r}; choose from {sorted(SCALES)}")
    return SCALES[chosen]
