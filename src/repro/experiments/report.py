"""Plain-text table/figure rendering for experiment results."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "ascii_plot"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a fixed-width text table (paper-style)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines: list[str] = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(divider)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, values: Sequence[float], precision: int = 3) -> str:
    """One labelled numeric series, e.g. an MLM-loss trajectory."""
    body = ", ".join(f"{v:.{precision}f}" for v in values)
    return f"{name}: [{body}]"


def ascii_plot(series: dict[str, Sequence[float]], width: int = 60,
               height: int = 12, title: str = "") -> str:
    """A rough ASCII line chart for loss curves (Fig. 2 in a terminal)."""
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return "(no data)"
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0
    max_len = max(len(values) for values in series.values())
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for index, (name, values) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        for step, value in enumerate(values):
            x = int(step / max(max_len - 1, 1) * (width - 1))
            y = int((value - lo) / span * (height - 1))
            grid[height - 1 - y][x] = marker
    lines = [title] if title else []
    lines.append(f"{hi:8.3f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{lo:8.3f} ┤" + "".join(grid[-1]))
    legend = "   ".join(f"{markers[i % len(markers)]}={name}"
                        for i, name in enumerate(sorted(series)))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
