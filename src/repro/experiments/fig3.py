"""Fig. 3 reproduction: the federated fine-tuning demonstration transcript.

Runs a (scaled) BERT fine-tuning job through the simulator and checks that
the captured log contains every stage the paper's screenshot shows:

1. server/client initialisation with join tokens,
2. per-site local-epoch lines with train loss and validation accuracy,
3. per-round contribution acceptance and aggregation of 8 updates,
4. model persistence on the server and round advance,
plus the "sec/local epoch" training-cost figure.
"""

from __future__ import annotations

import logging
import re
from dataclasses import dataclass, field

from ..flare import set_console_level
from ..models import build_classifier
from ..training import run_federated
from .configs import ExperimentScale, get_scale
from .table3 import prepare_table3_data

__all__ = ["Fig3Result", "run_fig3", "TRANSCRIPT_STAGES"]

TRANSCRIPT_STAGES: dict[str, str] = {
    "client_registration": r"New client site-\d+@.+ joined\. Sent token: [0-9a-f-]{36}",
    "registration_ack": r"Successfully registered client:site-\d+",
    "local_epoch": r"Local epoch site-\d+: \d+/\d+ \(lr=.+\), train_loss=\d+\.\d+, valid_acc=\d+\.\d+",
    "training_cost": r"Training cost: \d+\.\d sec/local epoch",
    "contribution_accepted": r"Contribution from site-\d+ ACCEPTED by the aggregator at round \d+",
    "aggregation": r"aggregating \d+ update\(s\) at round \d+",
    "end_aggregation": r"End aggregation\.",
    "persist_start": r"Start persist model on server\.",
    "persist_end": r"End persist model on server\.",
    "round_finished": r"Round \d+ finished\.",
    "round_started": r"Round \d+ started\.",
}


@dataclass
class Fig3Result:
    """The captured transcript and which Fig. 3 stages it contains."""

    transcript: str
    stages_found: dict[str, bool] = field(default_factory=dict)
    seconds_per_local_epoch: float = 0.0
    final_acc: float = 0.0
    tokens: dict[str, str] = field(default_factory=dict)

    def all_stages_present(self) -> bool:
        return all(self.stages_found.values())

    def to_text(self) -> str:
        lines = ["Fig. 3 — demonstration transcript stages:"]
        for stage, found in self.stages_found.items():
            lines.append(f"  [{'x' if found else ' '}] {stage}")
        lines.append(f"Training cost: {self.seconds_per_local_epoch:.1f} sec/local epoch "
                     f"(paper: 12.7 on BERT/GPU)")
        return "\n".join(lines)


def run_fig3(scale: ExperimentScale | None = None, seed: int = 7,
             model_name: str | None = None, n_clients: int = 8,
             quiet: bool = True) -> Fig3Result:
    """Run the demonstration job and analyse its transcript."""
    scale = scale or get_scale()
    model_name = model_name or scale.demo_model
    if quiet:
        set_console_level(logging.WARNING)
    _train, valid, shards, vocab_size = prepare_table3_data(scale, seed=seed)
    if len(shards) != n_clients:
        # table3 shards always use the paper's 8 ratios; re-label defensively
        shards = dict(sorted(shards.items())[:n_clients])

    def factory():
        overrides = {"max_seq_len": scale.max_seq_len} if model_name.startswith("bert") else {}
        return build_classifier(model_name, vocab_size=vocab_size, seed=seed, **overrides)

    fed = run_federated(factory, shards, valid, num_rounds=scale.num_rounds,
                        local_epochs=scale.local_epochs, batch_size=scale.batch_size,
                        lr=scale.lr, seed=seed, job_name="fig3-demo")
    transcript = fed.simulation.log_text
    stages = {stage: re.search(pattern, transcript) is not None
              for stage, pattern in TRANSCRIPT_STAGES.items()}
    return Fig3Result(
        transcript=transcript,
        stages_found=stages,
        seconds_per_local_epoch=fed.simulation.stats.mean_seconds_per_local_epoch()
        / max(scale.local_epochs, 1),
        final_acc=fed.final_acc,
        tokens=fed.simulation.tokens,
    )
