"""Fig. 2 reproduction: MLM pretraining loss under four data regimes.

The paper compares BERT MLM pretraining on
1) centralized data (upper bound),
2) a small dataset (lower bound),
3) federated, imbalanced client shards,
4) federated, balanced client shards,
and reports that regimes 1/3/4 converge to a common low loss while the
small-data regime plateaus higher (paper: 10.7 → 3.5 vs 4.4; our absolute
values differ because the synthetic vocabulary is smaller — the initial MLM
loss is ~ln(vocab) — but the regime ordering is the reproduced result).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field


from ..data import (
    MlmCollator,
    PAPER_IMBALANCED_RATIOS,
    SequenceDataset,
    build_clinical_vocab,
    EhrTokenizer,
    generate_pretraining_corpus,
    partition_balanced,
    partition_by_ratios,
    small_subset,
)
from ..flare import set_console_level
from ..models import build_mlm_model
from ..training import run_centralized_mlm, run_federated_mlm
from .configs import ExperimentScale, get_scale
from .report import ascii_plot, format_series

__all__ = ["Fig2Result", "run_fig2", "REGIMES", "prepare_fig2_data",
           "clear_fig2_cache"]

REGIMES = ("centralized", "small", "fl-imbalanced", "fl-balanced")

# (regime, scale-name, model, seed) -> loss curve (same role as the
# table3 cell cache: lets benches time each regime once)
_CURVE_CACHE: dict[tuple[str, str, str, int], list[float]] = {}


def clear_fig2_cache() -> None:
    _CURVE_CACHE.clear()


@dataclass
class Fig2Result:
    """MLM-loss trajectories per regime."""

    curves: dict[str, list[float]] = field(default_factory=dict)
    scale_name: str = "bench"

    def final_loss(self, regime: str) -> float:
        return self.curves[regime][-1]

    def to_text(self) -> str:
        lines = [f"Fig. 2 — MLM loss trajectories (scale={self.scale_name})"]
        lines += [format_series(name, values) for name, values in sorted(self.curves.items())]
        lines.append(ascii_plot(self.curves, title="MLM loss vs. round/epoch"))
        return "\n".join(lines)

    def shape_checks(self) -> dict[str, bool]:
        """The paper's Fig. 2 claims on this run's curves."""
        checks: dict[str, bool] = {}
        finals = {name: values[-1] for name, values in self.curves.items()}
        if "small" in finals:
            others = [finals[k] for k in finals if k != "small"]
            if others:
                checks["small-data regime plateaus highest"] = finals["small"] > max(others)
        for name, values in self.curves.items():
            # "improves at some point" — the small-data regime can tick up
            # late from overfitting, which the paper's own curve also shows
            checks[f"{name}: loss decreases"] = min(values) < values[0] + 1e-9
        if "centralized" in finals and "fl-imbalanced" in finals:
            checks["fl-imbalanced near centralized"] = (
                abs(finals["fl-imbalanced"] - finals["centralized"])
                < 0.35 * max(finals["centralized"], 1e-9) + 0.35)
        if "fl-balanced" in finals and "fl-imbalanced" in finals:
            checks["balanced ~ imbalanced"] = (
                abs(finals["fl-balanced"] - finals["fl-imbalanced"])
                < 0.35 * max(finals["fl-imbalanced"], 1e-9) + 0.35)
        return checks


def prepare_fig2_data(scale: ExperimentScale, seed: int = 11):
    """Corpus → encode → (train, valid) SequenceDatasets + vocab + collator."""
    vocab = build_clinical_vocab()
    tokenizer = EhrTokenizer(vocab, max_len=scale.max_seq_len)
    corpus = generate_pretraining_corpus(scale.pretrain_sequences + scale.pretrain_valid,
                                         seed=seed)
    ids, mask = tokenizer.encode_batch(corpus)
    train = SequenceDataset(ids[:scale.pretrain_sequences], mask[:scale.pretrain_sequences])
    valid = SequenceDataset(ids[scale.pretrain_sequences:], mask[scale.pretrain_sequences:])
    collator = MlmCollator(vocab, mask_prob=0.15, seed=seed)
    return train, valid, vocab, collator


def run_fig2(scale: ExperimentScale | None = None, seed: int = 11,
             model_name: str | None = None, regimes: tuple[str, ...] = REGIMES,
             n_clients: int = 8, quiet: bool = True) -> Fig2Result:
    """Regenerate the Fig. 2 loss curves."""
    scale = scale or get_scale()
    model_name = model_name or scale.mlm_model
    if quiet:
        set_console_level(logging.WARNING)
    train, valid, vocab, collator = prepare_fig2_data(scale, seed=seed)
    result = Fig2Result(scale_name=scale.name)

    def factory():
        return build_mlm_model(model_name, vocab_size=len(vocab), seed=seed,
                               max_seq_len=scale.max_seq_len)

    for regime in regimes:
        cache_key = (regime, scale.name, model_name, seed)
        if cache_key in _CURVE_CACHE:
            result.curves[regime] = list(_CURVE_CACHE[cache_key])
            continue
        if regime == "centralized":
            history = run_centralized_mlm(factory, train, valid, collator,
                                          epochs=scale.mlm_epochs,
                                          batch_size=scale.batch_size,
                                          lr=scale.mlm_lr, seed=seed)
            result.curves[regime] = [m.valid_loss if m.valid_loss is not None
                                     else m.train_loss for m in history]
        elif regime == "small":
            subset = train.subset(small_subset(len(train), fraction=0.02, seed=seed,
                                               minimum=16))
            history = run_centralized_mlm(factory, subset, valid, collator,
                                          epochs=scale.mlm_epochs,
                                          batch_size=scale.batch_size,
                                          lr=scale.mlm_lr, seed=seed)
            result.curves[regime] = [m.valid_loss if m.valid_loss is not None
                                     else m.train_loss for m in history]
        elif regime in ("fl-imbalanced", "fl-balanced"):
            if regime == "fl-imbalanced":
                ratios = PAPER_IMBALANCED_RATIOS[:n_clients]
                shard_indices = partition_by_ratios(len(train), ratios, seed=seed)
            else:
                shard_indices = partition_balanced(len(train), n_clients, seed=seed)
            shards = {f"site-{i + 1}": train.subset(s)
                      for i, s in enumerate(shard_indices)}
            losses, _sim = run_federated_mlm(
                factory, shards, valid, collator,
                num_rounds=scale.mlm_epochs, local_epochs=1,
                batch_size=scale.batch_size, lr=scale.mlm_lr, seed=seed,
                job_name=f"fig2-{regime}")
            result.curves[regime] = losses
        else:
            raise ValueError(f"unknown regime {regime!r}")
        _CURVE_CACHE[cache_key] = list(result.curves[regime])
    return result
