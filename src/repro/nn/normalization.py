"""Layer normalization."""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Parameter, Tensor

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Normalise over the last axis, then scale and shift.

    Composed from differentiable primitives, so the gradient flows through the
    mean and variance terms exactly as in the textbook derivation.
    """

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self.bias = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim:
            raise ValueError(f"expected last dim {self.dim}, got {x.shape[-1]}")
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered * ((variance + self.eps) ** -0.5)
        return normalised * self.weight + self.bias

    def __repr__(self) -> str:
        return f"LayerNorm(dim={self.dim}, eps={self.eps})"
