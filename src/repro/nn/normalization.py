"""Layer normalization."""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Parameter, Tensor, functional as F

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Normalise over the last axis, then scale and shift.

    Uses the fused :func:`repro.autograd.functional.layer_norm` kernel — one
    graph node with the closed-form backward instead of differentiating
    through the mean/variance composition.
    """

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self.bias = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim:
            raise ValueError(f"expected last dim {self.dim}, got {x.shape[-1]}")
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm(dim={self.dim}, eps={self.eps})"
