"""Recurrent layers: LSTM cell and multi-layer LSTM.

The paper's "recursive" model is a 3-layer LSTM classifier with hidden
dimension 128 (Table II).  The time loop is explicit Python, but the hot
path is batched: the input projection ``x @ W_ih^T + b`` for a whole layer
is hoisted out of the loop as one ``(batch*seq, 4H)`` matmul (the cuDNN
trick), and each step then runs as a single fused
:func:`repro.autograd.functional.lstm_step` graph node instead of ~15
primitive ops.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Parameter, Tensor, functional as F
from .dropout import Dropout

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM step with fused gate weights.

    Gate layout inside the fused matrices is ``[input, forget, cell, output]``.
    The forget-gate bias is initialised to 1, the standard trick for keeping
    long-range memory early in training.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        scale = 1.0 / np.sqrt(hidden_dim)
        self.weight_ih = Parameter(rng.uniform(-scale, scale, size=(4 * hidden_dim, input_dim)).astype(np.float32))
        self.weight_hh = Parameter(rng.uniform(-scale, scale, size=(4 * hidden_dim, hidden_dim)).astype(np.float32))
        bias = np.zeros(4 * hidden_dim, dtype=np.float32)
        bias[hidden_dim:2 * hidden_dim] = 1.0  # forget gate
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """Advance one step: ``x`` is ``(batch, input_dim)``; returns ``(h, c)``."""
        gates_x = F.linear(x, self.weight_ih, self.bias)
        return self.step(gates_x, state)

    def step(self, gates_x: Tensor, state: tuple[Tensor, Tensor],
             step_mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        """Advance one step from a precomputed input projection.

        ``gates_x`` is ``x_t @ W_ih^T + b`` — hoisting that matmul out of the
        time loop (one ``(batch*seq, 4H)`` product per layer) is what the
        :class:`LSTM` wrapper does.
        """
        h_prev, c_prev = state
        return F.lstm_step(gates_x, h_prev, c_prev, self.weight_hh,
                           step_mask=step_mask)

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_dim), dtype=np.float32)
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class LSTM(Module):
    """Multi-layer LSTM over ``(batch, seq, input_dim)`` input.

    Returns the full output sequence of the top layer and the final
    ``(h, c)`` of every layer.  Inter-layer dropout follows torch semantics
    (applied to every layer's output except the last).  With
    ``bidirectional=True`` a second stack reads the sequence right-to-left
    and outputs are concatenated, giving width ``2 * hidden_dim``.
    """

    def __init__(self, input_dim: int, hidden_dim: int, num_layers: int = 1,
                 dropout: float = 0.0, bidirectional: bool = False,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.bidirectional = bidirectional
        from ..autograd import ModuleList

        directions = 2 if bidirectional else 1
        self.cells = ModuleList(
            LSTMCell(input_dim if layer == 0 else hidden_dim * directions,
                     hidden_dim, rng=rng)
            for layer in range(num_layers)
        )
        if bidirectional:
            self.cells_reverse = ModuleList(
                LSTMCell(input_dim if layer == 0 else hidden_dim * directions,
                         hidden_dim, rng=rng)
                for layer in range(num_layers)
            )
        else:
            self.cells_reverse = None
        self.inter_dropout = Dropout(dropout, rng=rng) if dropout > 0 else None

    def forward(self, x: Tensor, mask: np.ndarray | None = None
                ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        """Run the stack over time.

        Parameters
        ----------
        x:
            ``(batch, seq, input_dim)`` input.
        mask:
            Optional boolean ``(batch, seq)``; False (padding) steps carry the
            previous state forward unchanged, so padded tails do not corrupt
            the final state.
        """
        batch, seq, _ = x.shape
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (batch, seq):
                raise ValueError(f"mask shape {mask.shape} != {(batch, seq)}")

        def run_direction(cell, layer_input: Tensor, time_order) -> tuple[list[Tensor], Tensor, Tensor]:
            # Batch the input projection over the whole sequence: one
            # (batch*seq, 4H) matmul instead of `seq` small ones.
            proj = F.linear(layer_input, cell.weight_ih, cell.bias)
            gates_per_step = F.unbind(proj, axis=1)
            h, c = cell.initial_state(batch)
            outputs: list[Tensor | None] = [None] * seq
            for t in time_order:
                step_mask = mask[:, t] if mask is not None else None
                h, c = cell.step(gates_per_step[t], (h, c), step_mask=step_mask)
                outputs[t] = h
            return outputs, h, c  # type: ignore[return-value]

        layer_input = x
        final_states: list[tuple[Tensor, Tensor]] = []
        for layer_index in range(self.num_layers):
            forward_out, h, c = run_direction(self.cells[layer_index], layer_input,
                                              range(seq))
            if self.cells_reverse is not None:
                reverse_out, h_r, c_r = run_direction(
                    self.cells_reverse[layer_index], layer_input,
                    range(seq - 1, -1, -1))
                per_step = [Tensor.concatenate([f, r], axis=1)
                            for f, r in zip(forward_out, reverse_out)]
                layer_output = Tensor.stack(per_step, axis=1)
                final_states.append((Tensor.concatenate([h, h_r], axis=1),
                                     Tensor.concatenate([c, c_r], axis=1)))
            else:
                layer_output = Tensor.stack(forward_out, axis=1)
                final_states.append((h, c))
            if self.inter_dropout is not None and layer_index < self.num_layers - 1:
                layer_output = self.inter_dropout(layer_output)
            layer_input = layer_output
        return layer_input, final_states
