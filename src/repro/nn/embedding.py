"""Token and position embedding layers."""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Parameter, Tensor, functional as F, init

__all__ = ["Embedding", "PositionalEmbedding"]


class Embedding(Module):
    """Learned lookup table mapping integer ids to dense vectors.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size.
    embedding_dim:
        Vector width.
    padding_idx:
        Optional id whose vector is initialised to (and kept near) zero; its
        gradient contributions are zeroed after each backward by the caller's
        optimiser step being a no-op on a zero row in practice — we simply
        initialise it to zero, matching common practice.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 padding_idx: int | None = None,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("embedding dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        table = init.normal((num_embeddings, embedding_dim), rng, std=0.02)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.weight = Parameter(table)

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(f"token id out of range [0, {self.num_embeddings})")
        return F.embedding(self.weight, ids)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class PositionalEmbedding(Module):
    """Learned absolute position embeddings (as in BERT)."""

    def __init__(self, max_len: int, embedding_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.max_len = max_len
        self.weight = Parameter(init.normal((max_len, embedding_dim), rng, std=0.02))

    def forward(self, seq_len: int) -> Tensor:
        """Return ``(seq_len, dim)`` position vectors for positions 0..seq_len-1."""
        if seq_len > self.max_len:
            raise ValueError(f"sequence length {seq_len} exceeds max_len {self.max_len}")
        return self.weight[np.arange(seq_len)]
