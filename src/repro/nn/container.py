"""Generic containers: Sequential."""

from __future__ import annotations

from ..autograd import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Apply sub-modules in order, feeding each output to the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: list[Module] = []
        for index, module in enumerate(modules):
            self.add_module(str(index), module)
            self._ordered.append(module)

    def forward(self, x):
        for module in self._ordered:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]
