"""Multi-head scaled-dot-product self-attention (the BERT building block).

Following the X-Transformers library the paper built on, the per-head width
is independent of the model width: queries/keys/values project ``dim`` to
``num_heads * head_dim`` and the output projects back to ``dim``.  This is
what lets Table II's BERT use hidden dimension 128 with 6 heads (128 is not
divisible by 6).
"""

from __future__ import annotations

import math

import numpy as np

from ..autograd import Module, Tensor, functional as F
from .dropout import Dropout
from .linear import Linear

__all__ = ["MultiHeadSelfAttention", "default_head_dim"]


def default_head_dim(dim: int, num_heads: int) -> int:
    """Per-head width used when none is given: ``ceil(dim / num_heads)``."""
    return max(1, -(-dim // num_heads))


class MultiHeadSelfAttention(Module):
    """Self-attention over a ``(batch, seq, dim)`` input.

    Parameters
    ----------
    dim:
        Model width.
    num_heads:
        Number of attention heads (Table II: 6 for BERT, 2 for BERT-mini).
    head_dim:
        Width of each head; defaults to ``ceil(dim / num_heads)``.
    dropout:
        Dropout applied to the attention probabilities.
    """

    def __init__(self, dim: int, num_heads: int, head_dim: int | None = None,
                 dropout: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if num_heads <= 0:
            raise ValueError("num_heads must be positive")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = head_dim if head_dim is not None else default_head_dim(dim, num_heads)
        inner = self.num_heads * self.head_dim
        self.query = Linear(dim, inner, rng=rng)
        self.key = Linear(dim, inner, rng=rng)
        self.value = Linear(dim, inner, rng=rng)
        self.out = Linear(inner, dim, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        """Apply self-attention.

        Parameters
        ----------
        x:
            ``(batch, seq, dim)`` input.
        attention_mask:
            Optional boolean ``(batch, seq)`` array; True marks *valid* tokens.
            Padding positions are excluded from the softmax.
        """
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=bool)
            if mask.shape != (batch, seq):
                raise ValueError(f"attention_mask shape {mask.shape} != {(batch, seq)}")
            # broadcast over heads and query positions; mask out padded keys
            blocked = ~mask[:, None, None, :]
            scores = scores.masked_fill(np.broadcast_to(blocked, scores.shape), -1e9)
        probs = self.attn_dropout(F.softmax(scores, axis=-1))
        context = probs @ v  # (batch, heads, seq, head_dim)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.num_heads * self.head_dim)
        return self.out(merged)
