"""Multi-head scaled-dot-product self-attention (the BERT building block).

Following the X-Transformers library the paper built on, the per-head width
is independent of the model width: queries/keys/values project ``dim`` to
``num_heads * head_dim`` and the output projects back to ``dim``.  This is
what lets Table II's BERT use hidden dimension 128 with 6 heads (128 is not
divisible by 6).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Tensor, functional as F
from .dropout import Dropout
from .linear import Linear

__all__ = ["MultiHeadSelfAttention", "default_head_dim"]


def default_head_dim(dim: int, num_heads: int) -> int:
    """Per-head width used when none is given: ``ceil(dim / num_heads)``."""
    return max(1, -(-dim // num_heads))


class MultiHeadSelfAttention(Module):
    """Self-attention over a ``(batch, seq, dim)`` input.

    Parameters
    ----------
    dim:
        Model width.
    num_heads:
        Number of attention heads (Table II: 6 for BERT, 2 for BERT-mini).
    head_dim:
        Width of each head; defaults to ``ceil(dim / num_heads)``.
    dropout:
        Dropout applied to the attention probabilities.
    """

    def __init__(self, dim: int, num_heads: int, head_dim: int | None = None,
                 dropout: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if num_heads <= 0:
            raise ValueError("num_heads must be positive")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = head_dim if head_dim is not None else default_head_dim(dim, num_heads)
        inner = self.num_heads * self.head_dim
        self.query = Linear(dim, inner, rng=rng)
        self.key = Linear(dim, inner, rng=rng)
        self.value = Linear(dim, inner, rng=rng)
        self.out = Linear(inner, dim, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None,
                out_dropout: Dropout | None = None,
                post_norm: Module | None = None) -> Tensor:
        """Apply self-attention.

        Parameters
        ----------
        x:
            ``(batch, seq, dim)`` input.
        attention_mask:
            Optional boolean ``(batch, seq)`` array; True marks *valid* tokens.
            Padding positions are excluded from the softmax.
        out_dropout:
            Optional :class:`Dropout` applied to the block output — folded
            into the fused attention node instead of running as its own op.
        post_norm:
            Optional :class:`~repro.nn.LayerNorm`.  When given, the residual
            add and post-layer-norm ``LN(x + attn(x))`` are folded into the
            same node too, so the whole encoder sublayer is one op.
        """
        batch, seq, _ = x.shape
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=bool)
            if mask.shape != (batch, seq):
                raise ValueError(f"attention_mask shape {mask.shape} != {(batch, seq)}")
            # broadcast over heads and query positions lazily: the fused
            # kernel consumes the (batch, 1, 1, seq) key-padding mask without
            # materializing it at full (batch, heads, seq, seq) score shape
            mask = mask[:, None, None, :]
        else:
            mask = None
        # the whole block -- Q/K/V projections, head split, masked softmax,
        # probability dropout, head merge, output projection (and, with
        # post_norm, the residual add + layer norm) -- is one fused graph node
        common = dict(
            attention_mask=mask,
            dropout_p=self.attn_dropout.p,
            training=self.attn_dropout.training,
            rng=self.attn_dropout._rng,
            out_dropout_p=out_dropout.p if out_dropout is not None and out_dropout.training else 0.0,
            out_rng=out_dropout._rng if out_dropout is not None else None)
        if post_norm is not None:
            return F.attention_layer(
                x, self.query.weight, self.query.bias,
                self.key.weight, self.key.bias,
                self.value.weight, self.value.bias,
                self.out.weight, self.out.bias,
                self.num_heads, post_norm.weight, post_norm.bias,
                eps=post_norm.eps, **common)
        return F.multi_head_attention(
            x, self.query.weight, self.query.bias,
            self.key.weight, self.key.bias,
            self.value.weight, self.value.bias,
            self.out.weight, self.out.bias,
            self.num_heads, **common)
