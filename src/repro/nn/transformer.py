"""Transformer encoder layers (post-norm, as in the original BERT)."""

from __future__ import annotations

import numpy as np

from ..autograd import Module, ModuleList, Tensor, functional as F
from .attention import MultiHeadSelfAttention
from .dropout import Dropout
from .linear import Linear
from .normalization import LayerNorm

__all__ = ["TransformerEncoderLayer", "TransformerEncoder"]


class TransformerEncoderLayer(Module):
    """One encoder block: self-attention + GELU feed-forward, residuals, post-LN."""

    def __init__(self, dim: int, num_heads: int, ffn_dim: int | None = None,
                 dropout: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        ffn_dim = ffn_dim or 4 * dim
        self.attention = MultiHeadSelfAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.attn_norm = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, rng=rng)
        self.ffn_out = Linear(ffn_dim, dim, rng=rng)
        self.ffn_norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        # each sublayer -- projections, activation, output dropout, residual
        # add and post-norm -- runs as a single fused graph node
        x = self.attention(x, attention_mask=attention_mask,
                           out_dropout=self.dropout, post_norm=self.attn_norm)
        return F.ffn_layer(x, self.ffn_in.weight, self.ffn_in.bias,
                           self.ffn_out.weight, self.ffn_out.bias,
                           self.ffn_norm.weight, self.ffn_norm.bias,
                           dropout_p=self.dropout.p, training=self.dropout.training,
                           rng=self.dropout._rng, eps=self.ffn_norm.eps)


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer` blocks."""

    def __init__(self, num_layers: int, dim: int, num_heads: int,
                 ffn_dim: int | None = None, dropout: float = 0.1,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        rng = rng or np.random.default_rng()
        self.layers = ModuleList(
            TransformerEncoderLayer(dim, num_heads, ffn_dim=ffn_dim, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        )

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, attention_mask=attention_mask)
        return x
