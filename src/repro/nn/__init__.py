"""``repro.nn`` — neural-network layers built on :mod:`repro.autograd`."""

from .attention import MultiHeadSelfAttention
from .container import Sequential
from .dropout import Dropout
from .embedding import Embedding, PositionalEmbedding
from .heads import ClassificationHead, MLMHead, cls_pool, last_valid_pool, masked_mean_pool
from .linear import Linear
from .normalization import LayerNorm
from .recurrent import LSTM, LSTMCell
from .transformer import TransformerEncoder, TransformerEncoderLayer

__all__ = [
    "Linear", "Embedding", "PositionalEmbedding", "LayerNorm", "Dropout",
    "MultiHeadSelfAttention", "TransformerEncoder", "TransformerEncoderLayer",
    "LSTM", "LSTMCell", "Sequential",
    "ClassificationHead", "MLMHead", "cls_pool", "masked_mean_pool", "last_valid_pool",
]
