"""Output heads: sequence pooling, classification and masked-LM heads."""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Parameter, Tensor, functional as F
from .dropout import Dropout
from .linear import Linear
from .normalization import LayerNorm

__all__ = ["ClassificationHead", "MLMHead", "masked_mean_pool", "cls_pool", "last_valid_pool"]


def cls_pool(hidden: Tensor) -> Tensor:
    """Return the first-position ([CLS]) vector: ``(batch, dim)``."""
    return hidden[:, 0, :]


def masked_mean_pool(hidden: Tensor, mask: np.ndarray | None) -> Tensor:
    """Average hidden states over valid (non-padding) positions."""
    if mask is None:
        return hidden.mean(axis=1)
    mask = np.asarray(mask, dtype=hidden.dtype)
    weights = Tensor(mask[:, :, None])
    totals = (hidden * weights).sum(axis=1)
    counts = Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
    return totals / counts


def last_valid_pool(hidden: Tensor, mask: np.ndarray | None) -> Tensor:
    """Return the hidden state at each sequence's last valid position."""
    batch, seq, _ = hidden.shape
    if mask is None:
        last = np.full(batch, seq - 1, dtype=np.int64)
    else:
        mask = np.asarray(mask, dtype=bool)
        lengths = mask.sum(axis=1)
        last = np.maximum(lengths - 1, 0).astype(np.int64)
    return hidden[(np.arange(batch), last)]


class ClassificationHead(Module):
    """Pooled-vector → logits head with a tanh bottleneck (BERT-style)."""

    def __init__(self, dim: int, num_classes: int, dropout: float = 0.1,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.dense = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.classifier = Linear(dim, num_classes, rng=rng)

    def forward(self, pooled: Tensor) -> Tensor:
        # dense -> tanh -> dropout -> classifier as one fused node
        return F.tanh_head(pooled, self.dense.weight, self.dense.bias,
                           self.classifier.weight, self.classifier.bias,
                           dropout_p=self.dropout.p,
                           training=self.dropout.training,
                           rng=self.dropout._rng)


class MLMHead(Module):
    """Masked-language-model head: transform + LayerNorm + decoder to vocab.

    The decoder weight is *tied* to the token embedding table when one is
    passed in, as in the original BERT implementation.
    """

    def __init__(self, dim: int, vocab_size: int,
                 tied_embedding: Parameter | None = None,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.transform = Linear(dim, dim, rng=rng)
        self.norm = LayerNorm(dim)
        self.vocab_size = vocab_size
        if tied_embedding is not None:
            if tied_embedding.shape != (vocab_size, dim):
                raise ValueError(
                    f"tied embedding shape {tied_embedding.shape} != {(vocab_size, dim)}")
            self.decoder_weight = tied_embedding  # shared Parameter (weight tying)
        else:
            from ..autograd import init

            self.decoder_weight = Parameter(init.normal((vocab_size, dim), rng, std=0.02))
        self.decoder_bias = Parameter(np.zeros(vocab_size, dtype=np.float32))

    def forward(self, hidden: Tensor) -> Tensor:
        """Map ``(batch, seq, dim)`` hidden states to vocab logits.

        ``F.gelu`` here is the fused kernel; the decoder is a plain linear
        projection against the (possibly tied) embedding table.
        """
        transformed = self.norm(F.gelu(self.transform(hidden)))
        return F.linear(transformed, self.decoder_weight, self.decoder_bias)
