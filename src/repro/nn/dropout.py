"""Dropout layer with its own reproducible random stream."""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Tensor, functional as F

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout; active only while the module is in training mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
