"""Affine (fully-connected) layer."""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Parameter, Tensor, functional as F, init

__all__ = ["Linear"]


class Linear(Module):
    """``y = x W^T + b`` with torch-style ``(out_features, in_features)`` weight.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality of the last axis.
    bias:
        Whether to add a learned bias (default True).
    rng:
        Generator used for Kaiming-uniform initialisation.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_features).astype(init.DEFAULT_DTYPE))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(f"expected last dim {self.in_features}, got {x.shape[-1]}")
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"
