"""Array-backed datasets and batching."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .ehr import ClinicalCohort
from .tokenizer import EhrTokenizer

__all__ = ["ClassificationDataset", "SequenceDataset", "train_valid_split", "encode_cohort"]


@dataclass
class ClassificationDataset:
    """Token ids + attention masks + integer labels."""

    input_ids: np.ndarray       # (n, seq) int64
    attention_mask: np.ndarray  # (n, seq) bool
    labels: np.ndarray          # (n,) int64

    def __post_init__(self) -> None:
        n = self.input_ids.shape[0]
        if self.attention_mask.shape[0] != n or self.labels.shape[0] != n:
            raise ValueError("dataset arrays disagree on length")

    def __len__(self) -> int:
        return int(self.input_ids.shape[0])

    @property
    def positive_rate(self) -> float:
        return float(self.labels.mean()) if len(self) else 0.0

    def subset(self, indices: np.ndarray) -> "ClassificationDataset":
        indices = np.asarray(indices, dtype=np.int64)
        return ClassificationDataset(self.input_ids[indices],
                                     self.attention_mask[indices],
                                     self.labels[indices])

    def iter_batches(self, batch_size: int, shuffle: bool = False,
                     rng: np.random.Generator | None = None,
                     drop_last: bool = False
                     ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(input_ids, attention_mask, labels)`` batches."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(len(self))
        if shuffle:
            (rng or np.random.default_rng()).shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = order[start:start + batch_size]
            if drop_last and len(chunk) < batch_size:
                return
            yield self.input_ids[chunk], self.attention_mask[chunk], self.labels[chunk]


@dataclass
class SequenceDataset:
    """Unlabeled token sequences (MLM pretraining input)."""

    input_ids: np.ndarray       # (n, seq) int64
    attention_mask: np.ndarray  # (n, seq) bool

    def __len__(self) -> int:
        return int(self.input_ids.shape[0])

    def subset(self, indices: np.ndarray) -> "SequenceDataset":
        indices = np.asarray(indices, dtype=np.int64)
        return SequenceDataset(self.input_ids[indices], self.attention_mask[indices])

    def iter_batches(self, batch_size: int, shuffle: bool = False,
                     rng: np.random.Generator | None = None
                     ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(len(self))
        if shuffle:
            (rng or np.random.default_rng()).shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = order[start:start + batch_size]
            yield self.input_ids[chunk], self.attention_mask[chunk]


def encode_cohort(cohort: ClinicalCohort, tokenizer: EhrTokenizer) -> ClassificationDataset:
    """Encode every cohort record into a :class:`ClassificationDataset`."""
    input_ids, attention_mask = tokenizer.encode_batch(cohort.texts())
    return ClassificationDataset(input_ids, attention_mask, cohort.labels)


def train_valid_split(n: int, valid_fraction: float = 0.2,
                      seed: int = 13) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled index split; the paper uses an 80/20 split (6,927 / 1,732)."""
    if not 0.0 < valid_fraction < 1.0:
        raise ValueError("valid_fraction must be in (0, 1)")
    order = np.random.default_rng(seed).permutation(n)
    n_valid = max(1, int(round(n * valid_fraction)))
    return np.sort(order[n_valid:]), np.sort(order[:n_valid])
