"""Tokenizer for EHR code sequences.

Clinical records here are sequences of whitespace-separated medical codes
(diagnosis, drug, procedure, demographic tokens), so tokenisation is code
splitting plus special-token framing, truncation and padding — the analogue
of the simple vocabulary tokenisers used with MLM-PyTorch in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .vocab import Vocabulary

__all__ = ["Encoding", "EhrTokenizer"]


@dataclass
class Encoding:
    """A batch-ready encoded sequence."""

    input_ids: np.ndarray       # (seq,) int64
    attention_mask: np.ndarray  # (seq,) bool, True = real token

    def __post_init__(self) -> None:
        if self.input_ids.shape != self.attention_mask.shape:
            raise ValueError("input_ids and attention_mask must align")


class EhrTokenizer:
    """Turn a code string (or token list) into fixed-length id arrays.

    Output layout: ``[CLS] code1 code2 ... [SEP] [PAD]*``.
    """

    def __init__(self, vocab: Vocabulary, max_len: int = 64) -> None:
        if max_len < 3:
            raise ValueError("max_len must leave room for [CLS] and [SEP]")
        self.vocab = vocab
        self.max_len = max_len

    def tokenize(self, text: str) -> list[str]:
        """Split a record into code tokens."""
        return text.split()

    def encode(self, record: str | list[str]) -> Encoding:
        """Encode one record to fixed-length arrays."""
        tokens = self.tokenize(record) if isinstance(record, str) else list(record)
        body = tokens[: self.max_len - 2]
        ids = [self.vocab.cls_id] + self.vocab.encode_tokens(body) + [self.vocab.sep_id]
        pad = self.max_len - len(ids)
        input_ids = np.asarray(ids + [self.vocab.pad_id] * pad, dtype=np.int64)
        attention_mask = np.zeros(self.max_len, dtype=bool)
        attention_mask[: len(ids)] = True
        return Encoding(input_ids=input_ids, attention_mask=attention_mask)

    def encode_batch(self, records: list[str] | list[list[str]]) -> tuple[np.ndarray, np.ndarray]:
        """Encode many records; returns ``(input_ids, attention_mask)`` arrays."""
        encodings = [self.encode(record) for record in records]
        input_ids = np.stack([e.input_ids for e in encodings])
        attention_mask = np.stack([e.attention_mask for e in encodings])
        return input_ids, attention_mask

    def decode(self, input_ids: np.ndarray, skip_special: bool = True) -> list[str]:
        """Map ids back to code tokens (dropping specials by default)."""
        tokens = self.vocab.decode_ids(np.asarray(input_ids).tolist())
        if skip_special:
            special = set(self.vocab.decode_ids(self.vocab.special_ids))
            tokens = [token for token in tokens if token not in special]
        return tokens
