"""``repro.data`` — synthetic clinical corpus, tokenization and partitioning."""

from .dataset import ClassificationDataset, SequenceDataset, encode_cohort, train_valid_split
from .ehr import (
    PAPER_COHORT_SIZE,
    PAPER_POSITIVE_COUNT,
    ClinicalCohort,
    CohortSpec,
    PatientRecord,
    build_clinical_vocab,
    generate_cohort,
    generate_pretraining_corpus,
    load_cohort,
    save_cohort,
)
from .mlm import IGNORE_INDEX, MlmCollator, MlmExample
from .partition import (
    PAPER_IMBALANCED_RATIOS,
    partition_balanced,
    partition_by_ratios,
    partition_label_skew,
    small_subset,
)
from .tokenizer import EhrTokenizer, Encoding
from .vocab import (CLS, MASK, PAD, SEP, SPECIAL_TOKENS, UNK, Vocabulary,
                    build_vocab_from_corpus)

__all__ = [
    "Vocabulary", "PAD", "CLS", "SEP", "MASK", "UNK", "SPECIAL_TOKENS",
    "build_vocab_from_corpus", "save_cohort", "load_cohort",
    "EhrTokenizer", "Encoding",
    "PatientRecord", "ClinicalCohort", "CohortSpec",
    "generate_cohort", "generate_pretraining_corpus", "build_clinical_vocab",
    "PAPER_COHORT_SIZE", "PAPER_POSITIVE_COUNT",
    "ClassificationDataset", "SequenceDataset", "encode_cohort", "train_valid_split",
    "MlmCollator", "MlmExample", "IGNORE_INDEX",
    "PAPER_IMBALANCED_RATIOS", "partition_by_ratios", "partition_balanced",
    "partition_label_skew", "small_subset",
]
