"""Vocabulary: token ↔ id mapping with the special tokens BERT needs."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

PAD = "[PAD]"
CLS = "[CLS]"
SEP = "[SEP]"
MASK = "[MASK]"
UNK = "[UNK]"

SPECIAL_TOKENS = (PAD, CLS, SEP, MASK, UNK)

__all__ = ["Vocabulary", "PAD", "CLS", "SEP", "MASK", "UNK", "SPECIAL_TOKENS",
           "build_vocab_from_corpus"]


class Vocabulary:
    """Immutable token ↔ id mapping.

    Ids 0..4 are always the special tokens ``[PAD] [CLS] [SEP] [MASK] [UNK]``
    (PAD must be 0 — the embedding layers use it as ``padding_idx``).
    """

    def __init__(self, tokens: Iterable[str]) -> None:
        self._id_to_token: list[str] = list(SPECIAL_TOKENS)
        seen = set(self._id_to_token)
        for token in tokens:
            if token in seen:
                continue
            seen.add(token)
            self._id_to_token.append(token)
        self._token_to_id = {token: index for index, token in enumerate(self._id_to_token)}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def special_ids(self) -> tuple[int, ...]:
        return tuple(range(len(SPECIAL_TOKENS)))

    def token_to_id(self, token: str) -> int:
        return self._token_to_id.get(token, self.unk_id)

    def id_to_token(self, index: int) -> str:
        if not 0 <= index < len(self._id_to_token):
            raise IndexError(f"id {index} out of range")
        return self._id_to_token[index]

    def encode_tokens(self, tokens: Sequence[str]) -> list[int]:
        return [self.token_to_id(token) for token in tokens]

    def decode_ids(self, ids: Sequence[int]) -> list[str]:
        return [self.id_to_token(int(index)) for index in ids]

    def tokens(self) -> list[str]:
        """All tokens in id order (specials first)."""
        return list(self._id_to_token)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self._id_to_token, indent=0))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Vocabulary":
        tokens = json.loads(Path(path).read_text())
        if tokens[: len(SPECIAL_TOKENS)] != list(SPECIAL_TOKENS):
            raise ValueError("vocabulary file does not start with the special tokens")
        return cls(tokens[len(SPECIAL_TOKENS):])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Vocabulary) and other._id_to_token == self._id_to_token


def build_vocab_from_corpus(corpus, min_freq: int = 1,
                            max_size: int | None = None) -> Vocabulary:
    """Build a :class:`Vocabulary` from whitespace-tokenised records.

    Tokens are ordered by descending frequency (ties alphabetical), truncated
    to ``max_size`` non-special entries, and filtered by ``min_freq`` — the
    standard recipe for capping an open-ended code inventory.
    """
    if min_freq < 1:
        raise ValueError("min_freq must be >= 1")
    counts: dict[str, int] = {}
    for record in corpus:
        tokens = record.split() if isinstance(record, str) else record
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
    kept = [token for token, count in counts.items() if count >= min_freq]
    kept.sort(key=lambda token: (-counts[token], token))
    if max_size is not None:
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        kept = kept[:max_size]
    return Vocabulary(kept)
