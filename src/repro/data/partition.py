"""Client partitioners for the federated experiments.

The paper's non-IID setting splits the data across 8 clients with the ratios
``{0.29, 0.22, 0.17, 0.14, 0.09, 0.04, 0.03, 0.02}``; its balanced setting
gives every client the same number of points; its "small dataset" regime is a
single client's shard trained standalone.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PAPER_IMBALANCED_RATIOS",
    "partition_by_ratios",
    "partition_balanced",
    "partition_label_skew",
    "small_subset",
]

PAPER_IMBALANCED_RATIOS = (0.29, 0.22, 0.17, 0.14, 0.09, 0.04, 0.03, 0.02)


def partition_by_ratios(n: int, ratios: tuple[float, ...] = PAPER_IMBALANCED_RATIOS,
                        seed: int = 17) -> list[np.ndarray]:
    """Disjoint shuffled index shards whose sizes follow ``ratios``.

    Every index is assigned to exactly one shard; rounding remainders go to
    the largest shard so shards are never empty when ``n >= len(ratios)``.
    """
    if n < len(ratios):
        raise ValueError(f"cannot split {n} items into {len(ratios)} non-empty shards")
    if any(r <= 0 for r in ratios):
        raise ValueError("ratios must be positive")
    total = sum(ratios)
    normalized = [r / total for r in ratios]
    sizes = [max(1, int(n * r)) for r in normalized]
    # give the remainder (positive or negative) to the largest shard
    sizes[int(np.argmax(sizes))] += n - sum(sizes)
    if min(sizes) < 1:
        raise ValueError("ratio so small that a shard would be empty")
    order = np.random.default_rng(seed).permutation(n)
    shards: list[np.ndarray] = []
    cursor = 0
    for size in sizes:
        shards.append(np.sort(order[cursor:cursor + size]))
        cursor += size
    return shards


def partition_balanced(n: int, n_clients: int, seed: int = 17) -> list[np.ndarray]:
    """Equal-size disjoint shards (paper's balanced scheme).

    When ``n`` is not divisible, the first ``n % n_clients`` shards get one
    extra item.
    """
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    if n < n_clients:
        raise ValueError(f"cannot split {n} items into {n_clients} non-empty shards")
    order = np.random.default_rng(seed).permutation(n)
    return [np.sort(shard) for shard in np.array_split(order, n_clients)]


def partition_label_skew(labels: np.ndarray, n_clients: int, alpha: float = 0.5,
                         seed: int = 17) -> list[np.ndarray]:
    """Dirichlet label-skew partition (a common non-IID benchmark scheme).

    Included as an ablation beyond the paper's size-skew split: each class's
    indices are distributed across clients with Dirichlet(alpha) proportions.
    Smaller ``alpha`` means more skew.
    """
    labels = np.asarray(labels)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    shards: list[list[int]] = [[] for _ in range(n_clients)]
    for cls in np.unique(labels):
        indices = np.flatnonzero(labels == cls)
        rng.shuffle(indices)
        proportions = rng.dirichlet([alpha] * n_clients)
        cuts = (np.cumsum(proportions)[:-1] * len(indices)).astype(int)
        for client, chunk in enumerate(np.split(indices, cuts)):
            shards[client].extend(chunk.tolist())
    return [np.sort(np.asarray(shard, dtype=np.int64)) for shard in shards]


def small_subset(n: int, fraction: float = 0.02, seed: int = 17,
                 minimum: int = 8) -> np.ndarray:
    """A small random subset (the paper's "small dataset" lower-bound regime).

    Defaults to the smallest imbalanced-client share (2%).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    size = max(minimum, int(round(n * fraction)))
    size = min(size, n)
    order = np.random.default_rng(seed).permutation(n)
    return np.sort(order[:size])
