"""Masked-language-model collation (BERT-style, Sec. III-B of the paper).

15% of non-special tokens are selected per sequence (``mask_prob = 0.15``).
Of the selected tokens, 80% are replaced by ``[MASK]``, 10% by a random
vocabulary token, and 10% are left unchanged *but still included in the loss*
— the regularisation the paper highlights ("10% of the tokens were not
masked but were included in the loss calculation").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .vocab import Vocabulary

__all__ = ["MlmExample", "MlmCollator", "IGNORE_INDEX"]

IGNORE_INDEX = -100


@dataclass
class MlmExample:
    """One masked batch: corrupted inputs and per-position targets."""

    input_ids: np.ndarray       # (n, seq) corrupted ids
    attention_mask: np.ndarray  # (n, seq) bool
    labels: np.ndarray          # (n, seq) original id at selected positions, else IGNORE_INDEX


class MlmCollator:
    """Apply BERT masking to batches of token ids."""

    def __init__(self, vocab: Vocabulary, mask_prob: float = 0.15,
                 replace_mask_frac: float = 0.8, replace_random_frac: float = 0.1,
                 seed: int = 31) -> None:
        if not 0.0 < mask_prob < 1.0:
            raise ValueError("mask_prob must be in (0, 1)")
        if replace_mask_frac + replace_random_frac > 1.0:
            raise ValueError("replacement fractions exceed 1")
        self.vocab = vocab
        self.mask_prob = mask_prob
        self.replace_mask_frac = replace_mask_frac
        self.replace_random_frac = replace_random_frac
        self._rng = np.random.default_rng(seed)
        self._special = np.asarray(vocab.special_ids, dtype=np.int64)

    def __call__(self, input_ids: np.ndarray, attention_mask: np.ndarray) -> MlmExample:
        """Mask a batch; original arrays are not modified."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        attention_mask = np.asarray(attention_mask, dtype=bool)
        corrupted = input_ids.copy()
        labels = np.full_like(input_ids, IGNORE_INDEX)

        maskable = attention_mask & ~np.isin(input_ids, self._special)
        selected = maskable & (self._rng.random(input_ids.shape) < self.mask_prob)
        labels[selected] = input_ids[selected]

        # split the selected positions 80/10/10
        roll = self._rng.random(input_ids.shape)
        to_mask = selected & (roll < self.replace_mask_frac)
        to_random = selected & (roll >= self.replace_mask_frac) & (
            roll < self.replace_mask_frac + self.replace_random_frac)
        # the remainder stays unchanged but keeps its label (in-loss, unmasked)

        corrupted[to_mask] = self.vocab.mask_id
        n_random = int(to_random.sum())
        if n_random:
            low = len(self._special)
            corrupted[to_random] = self._rng.integers(low, len(self.vocab), size=n_random)
        return MlmExample(input_ids=corrupted, attention_mask=attention_mask, labels=labels)
