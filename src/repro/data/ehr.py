"""Synthetic clopidogrel-cohort EHR generator.

The paper trains on 8,638 patients with clopidogrel prescriptions, of whom
1,824 were treatment-failure (adverse drug reaction) cases — a proprietary
Cipherome dataset (ref [13], prescription records + diagnosis codes).  This
module generates the closest public stand-in: a synthetic cohort whose
records are sequences of medical codes and whose failure labels follow a
logistic risk model over clinically meaningful covariates.

The risk factors mirror the real pharmacology of clopidogrel response:

- CYP2C19 loss-of-function carriers metabolise the prodrug poorly,
- co-prescribed CYP2C19-inhibiting proton-pump inhibitors (omeprazole,
  esomeprazole) blunt activation,
- diabetes, chronic kidney disease, prior stent thrombosis and smoking raise
  the event rate,
- older age bands contribute moderate risk.

Because the label is a (noisy) function of token presence/co-occurrence, the
classification task has the same *shape* as the paper's: binary outcome,
~21% positive rate, predictable from code sequences but not trivially.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .vocab import Vocabulary

__all__ = [
    "PatientRecord",
    "ClinicalCohort",
    "CohortSpec",
    "generate_cohort",
    "generate_pretraining_corpus",
    "build_clinical_vocab",
    "PAPER_COHORT_SIZE",
    "PAPER_POSITIVE_COUNT",
    "save_cohort",
    "load_cohort",
]

PAPER_COHORT_SIZE = 8_638
PAPER_POSITIVE_COUNT = 1_824
PAPER_POSITIVE_RATE = PAPER_POSITIVE_COUNT / PAPER_COHORT_SIZE  # 0.2112

# ---------------------------------------------------------------------------
# code inventory
# ---------------------------------------------------------------------------
AGE_BANDS = [f"AGE_{lo}_{lo + 9}" for lo in range(30, 100, 10)]
SEX_TOKENS = ["SEX_M", "SEX_F"]
GENOTYPE_TOKENS = ["CYP2C19_NORMAL", "CYP2C19_LOF"]

# index drug — every patient in the cohort is on clopidogrel
CLOPIDOGREL = "RX_B01AC04"

# interacting proton-pump inhibitors (CYP2C19 inhibitors)
INTERACTING_PPI = ["RX_A02BC01", "RX_A02BC05"]  # omeprazole, esomeprazole
SAFE_PPI = ["RX_A02BC02"]  # pantoprazole (weak inhibitor)

RISK_DIAGNOSES = {
    "DX_E11": 0.9,   # type-2 diabetes
    "DX_N18": 0.8,   # chronic kidney disease
    "DX_I63": 0.6,   # prior ischaemic stroke
    "DX_I21": 0.5,   # acute myocardial infarction (index event)
    "DX_F17": 0.5,   # nicotine dependence
    "DX_E78": 0.25,  # hyperlipidaemia
}

COMMON_DRUGS = [
    "RX_B01AC06",  # aspirin
    "RX_C10AA05",  # atorvastatin
    "RX_C07AB07",  # bisoprolol
    "RX_C09AA05",  # ramipril
    "RX_A10BA02",  # metformin
    "RX_C03CA01",  # furosemide
    "RX_N02BE01",  # paracetamol
    "RX_C08CA01",  # amlodipine
]

PROCEDURES = ["PROC_PCI", "PROC_CABG", "PROC_ANGIO", "PROC_ECHO", "PROC_ECG"]

N_BACKGROUND_DX = 90
N_BACKGROUND_RX = 60
BACKGROUND_DX = [f"DX_B{index:03d}" for index in range(N_BACKGROUND_DX)]
BACKGROUND_RX = [f"RX_B{index:03d}" for index in range(N_BACKGROUND_RX)]


def build_clinical_vocab() -> Vocabulary:
    """The full code vocabulary used by cohort and pretraining generators."""
    tokens: list[str] = []
    tokens += AGE_BANDS + SEX_TOKENS + GENOTYPE_TOKENS
    tokens += [CLOPIDOGREL] + INTERACTING_PPI + SAFE_PPI
    tokens += sorted(RISK_DIAGNOSES)
    tokens += COMMON_DRUGS + PROCEDURES
    tokens += BACKGROUND_DX + BACKGROUND_RX
    return Vocabulary(tokens)


# ---------------------------------------------------------------------------
# cohort generation
# ---------------------------------------------------------------------------
@dataclass
class PatientRecord:
    """One synthetic patient: code sequence + treatment-failure label."""

    patient_id: str
    tokens: list[str]
    label: int  # 1 = treatment failure (ADR), 0 = responder
    covariates: dict = field(default_factory=dict)

    def text(self) -> str:
        """Record as a whitespace-joined code string (tokenizer input)."""
        return " ".join(self.tokens)


@dataclass(frozen=True)
class CohortSpec:
    """Knobs of the generator.

    ``label_noise`` is the probability of flipping the risk-model label;
    ``risk_sharpness`` scales the logistic score, pushing per-patient risk
    toward 0 or 1.  The defaults put the Bayes-optimal accuracy near 90%
    at the paper's 21.1% positive rate, mirroring the high-80s ceiling of
    the paper's Table III.
    """

    n_patients: int = PAPER_COHORT_SIZE
    target_positive_rate: float = PAPER_POSITIVE_RATE
    min_visit_codes: int = 8
    max_visit_codes: int = 28
    label_noise: float = 0.04
    risk_sharpness: float = 3.0
    seed: int = 7


# logistic risk-model weights over covariates
_RISK_WEIGHTS = {
    "cyp2c19_lof": 2.6,
    "interacting_ppi": 1.8,
    "diabetes": 0.9,
    "ckd": 0.8,
    "prior_stroke": 0.6,
    "smoker": 0.5,
    "age_band": 0.12,  # per decade above 30
}


def _sigmoid(x: float) -> float:
    return 1.0 / (1.0 + np.exp(-x))


def _sample_patient(index: int, spec: CohortSpec, rng: np.random.Generator,
                    bias: float) -> PatientRecord:
    age_band = int(rng.integers(0, len(AGE_BANDS)))
    sex = SEX_TOKENS[int(rng.integers(0, 2))]
    cyp_lof = rng.random() < 0.30          # LoF allele carrier prevalence
    on_interacting_ppi = rng.random() < 0.25
    on_safe_ppi = (not on_interacting_ppi) and rng.random() < 0.15
    diabetes = rng.random() < 0.30
    ckd = rng.random() < 0.15
    prior_stroke = rng.random() < 0.12
    smoker = rng.random() < 0.25

    score = bias + spec.risk_sharpness * (
        _RISK_WEIGHTS["cyp2c19_lof"] * cyp_lof
        + _RISK_WEIGHTS["interacting_ppi"] * on_interacting_ppi
        + _RISK_WEIGHTS["diabetes"] * diabetes
        + _RISK_WEIGHTS["ckd"] * ckd
        + _RISK_WEIGHTS["prior_stroke"] * prior_stroke
        + _RISK_WEIGHTS["smoker"] * smoker
        + _RISK_WEIGHTS["age_band"] * age_band
    )
    label = int(rng.random() < _sigmoid(score))
    if rng.random() < spec.label_noise:
        label = 1 - label

    tokens = [AGE_BANDS[age_band], sex,
              GENOTYPE_TOKENS[1] if cyp_lof else GENOTYPE_TOKENS[0],
              CLOPIDOGREL]
    visit: list[str] = []
    if on_interacting_ppi:
        visit.append(INTERACTING_PPI[int(rng.integers(0, len(INTERACTING_PPI)))])
    if on_safe_ppi:
        visit.append(SAFE_PPI[0])
    if diabetes:
        visit += ["DX_E11", "RX_A10BA02"]
    if ckd:
        visit.append("DX_N18")
    if prior_stroke:
        visit.append("DX_I63")
    if smoker:
        visit.append("DX_F17")
    if rng.random() < 0.6:
        visit.append("DX_I21")
    if rng.random() < 0.5:
        visit.append("PROC_PCI")

    n_codes = int(rng.integers(spec.min_visit_codes, spec.max_visit_codes + 1))
    n_filler = max(0, n_codes - len(visit))
    filler_pool = COMMON_DRUGS + PROCEDURES + BACKGROUND_DX + BACKGROUND_RX
    visit += [filler_pool[int(i)] for i in rng.integers(0, len(filler_pool), size=n_filler)]
    rng.shuffle(visit)

    return PatientRecord(
        patient_id=f"P{index:06d}",
        tokens=tokens + visit,
        label=label,
        covariates={
            "age_band": age_band, "sex": sex, "cyp2c19_lof": cyp_lof,
            "interacting_ppi": on_interacting_ppi, "diabetes": diabetes,
            "ckd": ckd, "prior_stroke": prior_stroke, "smoker": smoker,
        },
    )


def _calibrate_bias(spec: CohortSpec) -> float:
    """Pick the logistic intercept so the marginal positive rate matches.

    Solved by bisection on a fixed Monte-Carlo sample of covariates.
    """
    rng = np.random.default_rng(spec.seed + 104729)
    n = 4_000
    draws = {
        "cyp2c19_lof": rng.random(n) < 0.30,
        "interacting_ppi": rng.random(n) < 0.25,
        "diabetes": rng.random(n) < 0.30,
        "ckd": rng.random(n) < 0.15,
        "prior_stroke": rng.random(n) < 0.12,
        "smoker": rng.random(n) < 0.25,
        "age_band": rng.integers(0, len(AGE_BANDS), size=n),
    }
    base = spec.risk_sharpness * sum(_RISK_WEIGHTS[key] * draws[key]
                                     for key in _RISK_WEIGHTS)

    lo, hi = -40.0, 10.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        rate = float(np.mean(1.0 / (1.0 + np.exp(-(base + mid)))))
        # label noise flips both ways; match the post-noise marginal rate
        noisy_rate = rate * (1.0 - 2.0 * spec.label_noise) + spec.label_noise
        if noisy_rate > spec.target_positive_rate:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


@dataclass
class ClinicalCohort:
    """A generated cohort plus its vocabulary."""

    records: list[PatientRecord]
    vocab: Vocabulary
    spec: CohortSpec

    def __len__(self) -> int:
        return len(self.records)

    @property
    def labels(self) -> np.ndarray:
        return np.asarray([record.label for record in self.records], dtype=np.int64)

    @property
    def positive_rate(self) -> float:
        return float(self.labels.mean()) if self.records else 0.0

    def texts(self) -> list[str]:
        return [record.text() for record in self.records]


def generate_cohort(spec: CohortSpec | None = None) -> ClinicalCohort:
    """Generate the synthetic clopidogrel cohort (deterministic per seed)."""
    spec = spec or CohortSpec()
    if spec.n_patients <= 0:
        raise ValueError("n_patients must be positive")
    bias = _calibrate_bias(spec)
    rng = np.random.default_rng(spec.seed)
    records = [_sample_patient(index, spec, rng, bias) for index in range(spec.n_patients)]
    return ClinicalCohort(records=records, vocab=build_clinical_vocab(), spec=spec)


def generate_pretraining_corpus(n_sequences: int, seed: int = 11,
                                min_codes: int = 6, max_codes: int = 24) -> list[str]:
    """Unlabeled EHR-style code sequences for MLM pretraining (Fig. 2).

    Sequences follow the same grammar as cohort records (demographics +
    genotype + visit codes) but span a broader synthetic population, playing
    the role of the paper's 453k-sequence pretraining corpus.
    """
    if n_sequences <= 0:
        raise ValueError("n_sequences must be positive")
    rng = np.random.default_rng(seed)
    filler_pool = COMMON_DRUGS + PROCEDURES + BACKGROUND_DX + BACKGROUND_RX
    risk_pool = list(RISK_DIAGNOSES) + INTERACTING_PPI + SAFE_PPI + [CLOPIDOGREL]
    corpus: list[str] = []
    for _ in range(n_sequences):
        tokens = [AGE_BANDS[int(rng.integers(0, len(AGE_BANDS)))],
                  SEX_TOKENS[int(rng.integers(0, 2))],
                  GENOTYPE_TOKENS[int(rng.random() < 0.30)]]
        n_codes = int(rng.integers(min_codes, max_codes + 1))
        n_risk = int(rng.integers(0, 4))
        visit = [risk_pool[int(i)] for i in rng.integers(0, len(risk_pool), size=n_risk)]
        visit += [filler_pool[int(i)] for i in rng.integers(0, len(filler_pool),
                                                            size=max(0, n_codes - n_risk))]
        rng.shuffle(visit)
        corpus.append(" ".join(tokens + visit))
    return corpus


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------
def save_cohort(cohort: ClinicalCohort, path) -> "Path":
    """Write a cohort to JSONL (one patient per line) + spec header.

    Line 1 is a metadata header with the generator spec, so a saved cohort is
    self-describing and :func:`load_cohort` can verify compatibility.
    """
    import json
    from dataclasses import asdict
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        handle.write(json.dumps({"kind": "clinical-cohort", "version": 1,
                                 "spec": asdict(cohort.spec)}) + "\n")
        for record in cohort.records:
            handle.write(json.dumps({
                "patient_id": record.patient_id,
                "tokens": record.tokens,
                "label": record.label,
                "covariates": record.covariates,
            }) + "\n")
    return path


def load_cohort(path) -> ClinicalCohort:
    """Read a cohort previously written by :func:`save_cohort`."""
    import json
    from pathlib import Path

    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError("empty cohort file")
    header = json.loads(lines[0])
    if header.get("kind") != "clinical-cohort":
        raise ValueError("not a cohort file (bad header)")
    spec = CohortSpec(**header["spec"])
    records = []
    for line in lines[1:]:
        payload = json.loads(line)
        records.append(PatientRecord(
            patient_id=payload["patient_id"],
            tokens=list(payload["tokens"]),
            label=int(payload["label"]),
            covariates=dict(payload["covariates"]),
        ))
    return ClinicalCohort(records=records, vocab=build_clinical_vocab(), spec=spec)
