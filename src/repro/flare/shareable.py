"""Shareable: the task/result envelope exchanged between server and clients."""

from __future__ import annotations

from typing import Any

from .constants import ReservedKey, ReturnCode
from .dxo import DXO

__all__ = ["Shareable", "make_reply", "from_dxo", "to_dxo"]


class Shareable(dict):
    """A dict with well-known header helpers (NVFlare's task envelope).

    The DXO payload, when present, lives under the ``"DXO"`` key as bytes so
    that a Shareable is always transport-ready.
    """

    def set_header(self, key: str, value: Any) -> None:
        self[key] = value

    def get_header(self, key: str, default: Any = None) -> Any:
        return self.get(key, default)

    @property
    def return_code(self) -> str:
        return self.get(ReservedKey.RETURN_CODE, ReturnCode.OK)

    def set_return_code(self, code: str) -> None:
        self[ReservedKey.RETURN_CODE] = code

    @property
    def task_name(self) -> str | None:
        return self.get(ReservedKey.TASK_NAME)

    @property
    def current_round(self) -> int | None:
        return self.get(ReservedKey.ROUND_NUMBER)


def from_dxo(dxo: DXO) -> Shareable:
    """Wrap a DXO (serialized) in a fresh Shareable."""
    shareable = Shareable()
    shareable["DXO"] = dxo.to_bytes()
    return shareable


def to_dxo(shareable: Shareable) -> DXO:
    """Extract and decode the DXO payload of a Shareable."""
    blob = shareable.get("DXO")
    if blob is None:
        raise ValueError("shareable carries no DXO payload")
    return DXO.from_bytes(blob)


def make_reply(code: str) -> Shareable:
    """A payload-less reply carrying only a return code."""
    reply = Shareable()
    reply.set_return_code(code)
    return reply
