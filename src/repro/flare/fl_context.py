"""FLContext: the property bag threaded through every framework call.

Mirrors NVFlare's ``FLContext``: components communicate side-band data
(current round, client name, run directory, peer properties) without
widening method signatures.
"""

from __future__ import annotations

from typing import Any

__all__ = ["FLContext"]


class FLContext:
    """A mutable key → value property store with an identity and peer view."""

    def __init__(self, identity: str = "", job_id: str = "") -> None:
        self.identity = identity
        self.job_id = job_id
        self._props: dict[str, Any] = {}
        self._peer_props: dict[str, Any] = {}

    def set_prop(self, key: str, value: Any) -> None:
        self._props[key] = value

    def get_prop(self, key: str, default: Any = None) -> Any:
        return self._props.get(key, default)

    def remove_prop(self, key: str) -> None:
        self._props.pop(key, None)

    def set_peer_prop(self, key: str, value: Any) -> None:
        self._peer_props[key] = value

    def get_peer_prop(self, key: str, default: Any = None) -> Any:
        return self._peer_props.get(key, default)

    def props(self) -> dict[str, Any]:
        """A copy of all properties (for logging/inspection)."""
        return dict(self._props)

    def clone(self, identity: str | None = None) -> "FLContext":
        """A shallow copy, optionally re-identified (server → client hop)."""
        ctx = FLContext(identity=identity if identity is not None else self.identity,
                        job_id=self.job_id)
        ctx._props = dict(self._props)
        ctx._peer_props = dict(self._peer_props)
        return ctx

    def __repr__(self) -> str:
        return f"FLContext(identity={self.identity!r}, job_id={self.job_id!r}, props={sorted(self._props)})"
