"""Shareable generators: model weights ↔ task shareables.

NVFlare's ``FullModelShareableGenerator``: the controller hands it the global
model to wrap into the round's task data, and hands the aggregated DXO back
to produce the next global model (applying diffs when the round exchanged
WEIGHT_DIFF payloads).
"""

from __future__ import annotations

import numpy as np

from .constants import DataKind, ReservedKey
from .dxo import DXO
from .events import FLComponent
from .fl_context import FLContext
from .shareable import Shareable, from_dxo, to_dxo

__all__ = ["FullModelShareableGenerator"]


class FullModelShareableGenerator(FLComponent):
    """Bidirectional conversion between weight dicts and Shareables."""

    def learnable_to_shareable(self, weights: dict[str, np.ndarray],
                               fl_ctx: FLContext) -> Shareable:
        """Wrap the full global model as the round's task payload."""
        dxo = DXO(data_kind=DataKind.WEIGHTS,
                  data={key: np.asarray(value) for key, value in weights.items()})
        shareable = from_dxo(dxo)
        shareable.set_header(ReservedKey.ROUND_NUMBER,
                             fl_ctx.get_prop(ReservedKey.CURRENT_ROUND, 0))
        return shareable

    def shareable_to_learnable(self, shareable: Shareable,
                               current: dict[str, np.ndarray],
                               fl_ctx: FLContext) -> dict[str, np.ndarray]:
        """Produce the next global model from an aggregated result."""
        dxo = to_dxo(shareable)
        return self.dxo_to_learnable(dxo, current)

    def dxo_to_learnable(self, dxo: DXO,
                         current: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        if dxo.data_kind == DataKind.WEIGHTS:
            return {key: np.asarray(value) for key, value in dxo.data.items()}
        if dxo.data_kind == DataKind.WEIGHT_DIFF:
            missing = set(dxo.data) - set(current)
            if missing:
                raise KeyError(f"diff refers to unknown parameters: {sorted(missing)[:3]}")
            # keep each parameter's dtype: aggregated diffs arrive as float64
            # (and bool diffs as int8) and must not promote the global model
            updated: dict[str, np.ndarray] = {}
            for key in current:
                base = np.asarray(current[key])
                updated[key] = (base + np.asarray(dxo.data.get(key, 0.0))
                                ).astype(base.dtype, copy=False)
            return updated
        raise ValueError(f"cannot build a model from data kind {dxo.data_kind!r}")
