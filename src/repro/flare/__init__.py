"""``repro.flare`` — the NVFlare-style federated-learning framework.

Provision → register (token handshake) → ScatterAndGather rounds →
aggregate → persist, all in one process, with a real (if in-memory) signed
message transport.  See DESIGN.md for the mapping to NVFlare concepts.
"""

from .admin import AdminAPI, ClientInfo, JobStatus
from .aggregators import (
    Aggregator,
    CoordinateMedianAggregator,
    FedOptAggregator,
    InTimeAccumulateWeightedAggregator,
    MaterializationTracker,
    TreeAggregator,
    TrimmedMeanAggregator,
)
from .async_controller import AsyncScatterAndGather, staleness_discount
from .client import FederatedClient, session_key_from_token
from .constants import DataKind, EventType, FLRole, ReservedKey, ReturnCode, TaskName
from .controller import ScatterAndGather
from .cross_site_eval import CrossSiteModelEval
from .codec import (
    decode_tensors,
    encode_tensors,
    reset_wire_metrics,
    wire_totals,
)
from .dxo import DXO, MetaKey, get_wire_codec, set_wire_codec
from .events import FLComponent, LogCapture, get_fl_logger, set_console_level
from .faults import FaultInjector, FaultPlan, FaultyMessageBus
from .filters import (
    CompressionConfig,
    DeltaDecode,
    DeltaEncode,
    DXOFilter,
    ExcludeVars,
    FilterChain,
    Float16Dequantize,
    Float16Quantize,
    GaussianPrivacy,
    NormClipPrivacy,
    PercentilePrivacy,
    TopKDensify,
    TopKSparsify,
)
from .fl_context import FLContext
from .job import FLJob
from .learner import Learner
from .persistor import ModelPersistor
from .provision import (
    ParticipantSpec,
    ProjectSpec,
    Provisioner,
    StartupKit,
    default_project,
    make_join_token,
)
from .sampling import (
    ClientSampler,
    StratifiedSampler,
    UniformSampler,
    WeightedSampler,
    make_sampler,
)
from .security import (
    Certificate,
    CertificateAuthority,
    RSAKeyPair,
    generate_keypair,
    hmac_sign,
    hmac_verify,
    sign,
    verify,
)
from .server import AuthenticationError, FLServer
from .shareable import Shareable, from_dxo, make_reply, to_dxo
from .shareable_generator import FullModelShareableGenerator
from .simulator import SimulationResult, SimulatorRunner
from .shm_transport import ShmMessageBus
from .socket_transport import SocketMessageBus
from .runner import ProcessClientRunner, WorkerRuntime
from .stats import ClientRoundRecord, RoundRecord, RunStats
from .transport import (
    BaseTransport,
    Message,
    MessageBus,
    ReceiveTimeout,
    RetryPolicy,
    SignatureError,
    Transport,
    TransportError,
    send_with_retry,
)

__all__ = [
    "DataKind", "ReturnCode", "EventType", "ReservedKey", "TaskName", "FLRole",
    "AdminAPI", "ClientInfo", "JobStatus",
    "FLContext", "FLComponent", "LogCapture", "get_fl_logger", "set_console_level",
    "DXO", "MetaKey", "Shareable", "from_dxo", "to_dxo", "make_reply",
    "encode_tensors", "decode_tensors", "wire_totals", "reset_wire_metrics",
    "get_wire_codec", "set_wire_codec",
    "RSAKeyPair", "generate_keypair", "sign", "verify",
    "Certificate", "CertificateAuthority", "hmac_sign", "hmac_verify",
    "ParticipantSpec", "ProjectSpec", "StartupKit", "Provisioner",
    "default_project", "make_join_token",
    "Message", "MessageBus", "TransportError", "ReceiveTimeout", "SignatureError",
    "Transport", "BaseTransport", "SocketMessageBus", "ShmMessageBus",
    "ProcessClientRunner", "WorkerRuntime",
    "RetryPolicy", "send_with_retry",
    "FaultPlan", "FaultInjector", "FaultyMessageBus",
    "Aggregator", "InTimeAccumulateWeightedAggregator", "FedOptAggregator",
    "CoordinateMedianAggregator", "TrimmedMeanAggregator",
    "TreeAggregator", "MaterializationTracker",
    "ClientSampler", "UniformSampler", "WeightedSampler", "StratifiedSampler",
    "make_sampler",
    "FullModelShareableGenerator", "ModelPersistor",
    "DXOFilter", "FilterChain", "ExcludeVars", "GaussianPrivacy",
    "PercentilePrivacy", "NormClipPrivacy",
    "CompressionConfig", "DeltaEncode", "DeltaDecode",
    "Float16Quantize", "Float16Dequantize", "TopKSparsify", "TopKDensify",
    "Learner", "FederatedClient", "session_key_from_token",
    "FLServer", "AuthenticationError",
    "ScatterAndGather", "AsyncScatterAndGather", "staleness_discount",
    "CrossSiteModelEval",
    "FLJob", "SimulatorRunner", "SimulationResult",
    "ClientRoundRecord", "RoundRecord", "RunStats",
]
