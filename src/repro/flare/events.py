"""FLComponent: event handling + structured logging for framework parts.

Every server/client/workflow object derives from :class:`FLComponent`; the
owner fires events (round started, aggregation done, ...) down its component
tree and components log through a shared, timestamped logger whose format
matches the NVFlare simulator output shown in the paper's Fig. 3.
"""

from __future__ import annotations

import logging
from typing import Any

from .fl_context import FLContext

__all__ = ["FLComponent", "format_names", "get_fl_logger", "LogCapture",
           "set_console_level"]

_LOGGER_NAME = "repro.flare"
_FORMAT = "%(asctime)s,%(msecs)03d - %(component)s - %(levelname)s - %(message)s"
_DATEFMT = "%Y-%m-%d %H:%M:%S"


def get_fl_logger() -> logging.Logger:
    """The framework logger (configured once, NVFlare-style format)."""
    logger = logging.getLogger(_LOGGER_NAME)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.set_name("fl-console")
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
    return logger


def format_names(names: list[str] | set[str] | tuple[str, ...],
                 limit: int = 8) -> str:
    """Participant list for log lines, truncated for massive cohorts.

    At 1,000 sampled sites a joined participant list is a multi-KB log line
    *per round*; everything past ``limit`` names collapses to a count.
    """
    names = list(names)
    if len(names) <= limit:
        return ", ".join(names)
    return (", ".join(names[:limit])
            + f" … and {len(names) - limit} more")


def set_console_level(level: int) -> None:
    """Adjust only the console handler; LogCapture handlers keep seeing INFO.

    Lets experiments run quietly while the Fig. 3 transcript is still
    captured in full.
    """
    for handler in get_fl_logger().handlers:
        if handler.get_name() == "fl-console":
            handler.setLevel(level)


class LogCapture(logging.Handler):
    """Collects formatted framework log lines (used to render Fig. 3)."""

    def __init__(self) -> None:
        super().__init__()
        self.lines: list[str] = []
        self.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))

    def emit(self, record: logging.LogRecord) -> None:
        if not hasattr(record, "component"):
            record.component = record.name
        self.lines.append(self.format(record))

    def attach(self) -> "LogCapture":
        get_fl_logger().addHandler(self)
        return self

    def detach(self) -> None:
        get_fl_logger().removeHandler(self)

    def text(self) -> str:
        return "\n".join(self.lines)


class FLComponent:
    """Base class: named component with event hooks and logging helpers."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self._logger = get_fl_logger()

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def handle_event(self, event_type: str, fl_ctx: FLContext) -> None:
        """Override to react to framework events; default is a no-op."""

    def fire_event(self, event_type: str, fl_ctx: FLContext,
                   targets: list["FLComponent"] | None = None) -> None:
        """Deliver ``event_type`` to ``targets`` (or just this component)."""
        for component in (targets if targets is not None else [self]):
            component.handle_event(event_type, fl_ctx)

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def _log(self, level: int, message: str, *args: Any) -> None:
        self._logger.log(level, message, *args, extra={"component": self.name})

    def log_info(self, message: str, *args: Any) -> None:
        self._log(logging.INFO, message, *args)

    def log_warning(self, message: str, *args: Any) -> None:
        self._log(logging.WARNING, message, *args)

    def log_error(self, message: str, *args: Any) -> None:
        self._log(logging.ERROR, message, *args)
