"""Learner: the client-side training abstraction.

NVFlare executors delegate the actual ML to a ``Learner`` (the paper's log
shows a ``CiBertLearner``).  A learner receives the current global weights
as a DXO, trains locally for the configured epochs, and returns its updated
weights (or diff) plus step-count metadata for weighted aggregation.
Concrete learners for classification and MLM live in :mod:`repro.training`.
"""

from __future__ import annotations

from .dxo import DXO
from .events import FLComponent
from .fl_context import FLContext

__all__ = ["Learner"]


class Learner(FLComponent):
    """Interface implemented by task-specific trainers."""

    def initialize(self, fl_ctx: FLContext) -> None:
        """One-time setup before the first round (build model, data)."""

    def train(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        """Load global weights from ``dxo``, train locally, return an update.

        The returned DXO must carry ``MetaKey.NUM_STEPS_CURRENT_ROUND`` so the
        aggregator can weight the contribution.
        """
        raise NotImplementedError

    def validate(self, dxo: DXO, fl_ctx: FLContext) -> dict[str, float]:
        """Evaluate the weights in ``dxo`` on this client's validation data."""
        raise NotImplementedError

    def finalize(self, fl_ctx: FLContext) -> None:
        """Cleanup after the run."""
