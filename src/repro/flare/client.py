"""FederatedClient: registration handshake + task execution loop."""

from __future__ import annotations

import hashlib
import threading
import time
from typing import TYPE_CHECKING

from ..obs import trace as obs_trace
from .constants import DataKind, EventType, ReservedKey, ReturnCode, TaskName
from .dxo import DXO, MetaKey
from .events import FLComponent
from .filters import DXOFilter
from .fl_context import FLContext
from .learner import Learner
from .provision import StartupKit
from .security import sign
from .shareable import Shareable, from_dxo, make_reply, to_dxo
from .transport import MessageBus, RetryPolicy, TransportError, send_with_retry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import FLServer

__all__ = ["FederatedClient", "session_key_from_token"]

_STOP_TOPIC = "__stop__"


def session_key_from_token(token: str) -> bytes:
    """Both sides derive the HMAC session key from the issued join token."""
    return hashlib.sha256(token.encode("utf-8")).digest()


class FederatedClient(FLComponent):
    """One participating site: owns a learner and a startup kit."""

    def __init__(self, kit: StartupKit, learner: Learner, bus: MessageBus,
                 task_result_filters: list[DXOFilter] | None = None,
                 task_data_filters: list[DXOFilter] | None = None,
                 retry_policy: RetryPolicy | None = None) -> None:
        super().__init__(name=kit.participant.name)
        self.kit = kit
        self.learner = learner
        self.bus = bus
        self.task_result_filters = list(task_result_filters or [])
        self.task_data_filters = list(task_data_filters or [])
        self.retry_policy = retry_policy or RetryPolicy()
        self.retries = 0
        self.token: str | None = None
        self.server_name: str | None = None
        self.fl_ctx = FLContext(identity=self.name)
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()
        # Optional shared semaphore bounding how many clients train at once
        # (the simulator installs one, mirroring NVFlare's simulator thread
        # pool; training 8 BERTs concurrently on one box exhausts memory).
        self.task_semaphore: threading.Semaphore | None = None
        bus.register_endpoint(self.name)

    # ------------------------------------------------------------------
    # registration (the Fig. 3 "Token & SSH Protocols" stage)
    # ------------------------------------------------------------------
    def register(self, server: "FLServer") -> str:
        """Authenticate to the server and install the session key.

        The client proves possession of its provisioned private key by
        signing a server-issued nonce; the server verifies the certificate
        chain and answers with a join token from which both ends derive the
        HMAC session key.
        """
        nonce = server.issue_nonce(self.name)
        proof = sign(nonce, self.kit.keypair)
        token = server.register_client(self.kit.certificate, nonce, proof)
        self.token = token
        self.server_name = server.name
        self.bus.install_session_key(self.name, session_key_from_token(token))
        self.fl_ctx.set_prop(ReservedKey.TOKEN, token)
        self.learner.initialize(self.fl_ctx)
        return token

    # ------------------------------------------------------------------
    # task processing
    # ------------------------------------------------------------------
    def process_task(self, task_name: str, shareable: Shareable) -> Shareable:
        """Execute one task against the learner, applying filter chains.

        The transport attaches the server's trace context to the received
        shareable; opening the task span with it as ``remote_parent``
        stitches ``round -> client_task`` into one tree even when this
        client is a forked OS process with its own tracer.
        """
        round_number = shareable.get_header(ReservedKey.ROUND_NUMBER, 0)
        trace_ctx = shareable.pop(ReservedKey.TRACE_CTX, None)
        with obs_trace.span("client_task", remote_parent=trace_ctx,
                            client=self.name, task=task_name,
                            round=round_number) as task_span:
            reply = self._process_task_inner(task_name, shareable)
            task_span.set_attr("return_code", reply.return_code)
        return reply

    def _process_task_inner(self, task_name: str, shareable: Shareable) -> Shareable:
        self.fl_ctx.set_prop(ReservedKey.CURRENT_ROUND,
                             shareable.get_header(ReservedKey.ROUND_NUMBER, 0))
        try:
            dxo = to_dxo(shareable)
            # Decompression/reconstruction filters (fp16 dequantize, delta
            # decode) also signal unusable task data via ValueError — e.g. a
            # delta against a model version this client does not hold.
            for task_filter in self.task_data_filters:
                with obs_trace.span("filter", stage="task_data",
                                    filter=type(task_filter).__name__):
                    dxo = task_filter.process(dxo, self.fl_ctx)
        except ValueError as error:
            self.log_warning("task data for %r unusable: %s", task_name, error)
            return make_reply(ReturnCode.BAD_TASK_DATA)
        if dxo.data_kind == DataKind.WEIGHTS:
            # Remember the round's received global model: DeltaEncode diffs
            # the outgoing result against it.  These arrays may be read-only
            # views into the received blob; every consumer copies on write.
            self.fl_ctx.set_prop(ReservedKey.GLOBAL_MODEL, dxo.data)
        gate = self.task_semaphore
        try:
            if gate is not None:
                gate.acquire()
            try:
                if task_name == TaskName.TRAIN:
                    self.fire_event(EventType.BEFORE_TRAIN_TASK, self.fl_ctx)
                    started = time.perf_counter()
                    result = self.learner.train(dxo, self.fl_ctx)
                    elapsed = time.perf_counter() - started
                    result.set_meta_prop("train_seconds", elapsed)
                    self.fire_event(EventType.AFTER_TRAIN_TASK, self.fl_ctx)
                elif task_name == TaskName.VALIDATE:
                    metrics = self.learner.validate(dxo, self.fl_ctx)
                    result = DXO(data_kind="METRICS", data=dict(metrics),
                                 meta={MetaKey.CLIENT_NAME: self.name})
                else:
                    return make_reply(ReturnCode.TASK_UNKNOWN)
            finally:
                if gate is not None:
                    gate.release()
        except Exception as error:  # surfaced as a return code, like NVFlare
            self.log_error("task %s failed: %s", task_name, error)
            return make_reply(ReturnCode.EXECUTION_EXCEPTION)
        for result_filter in self.task_result_filters:
            with obs_trace.span("filter", stage="task_result",
                                filter=type(result_filter).__name__):
                result = result_filter.process(result, self.fl_ctx)
        result.set_meta_prop(MetaKey.CLIENT_NAME, self.name)
        reply = from_dxo(result)
        reply.set_return_code(ReturnCode.OK)
        reply.set_header(ReservedKey.CLIENT_NAME, self.name)
        reply.set_header(ReservedKey.TASK_NAME, task_name)
        return reply

    # ------------------------------------------------------------------
    # message loop
    # ------------------------------------------------------------------
    def poll_once(self, timeout: float = 30.0) -> bool:
        """Receive and handle one message; False when told to stop."""
        sender, topic, shareable = self.bus.receive(
            self.name, timeout=timeout, topic="task", peer=self.server_name)
        if topic == _STOP_TOPIC:
            return False
        reply = self.process_task(topic, shareable)
        try:
            attempts = send_with_retry(self.bus, self.name, sender,
                                       f"{topic}:result", reply, self.retry_policy)
            self.retries += attempts - 1
        except TransportError as error:
            # The controller's quorum logic absorbs the loss; dying here
            # would take the whole client thread down with it.
            self.retries += self.retry_policy.max_attempts - 1
            self.log_warning("result for %r lost after %d attempt(s): %s",
                             topic, self.retry_policy.max_attempts, error)
        return True

    def serve_in_thread(self) -> threading.Thread:
        """Run the message loop on a daemon thread (simulator mode)."""
        if self.token is None:
            raise RuntimeError(f"{self.name} must register before serving")

        def loop() -> None:
            with obs_trace.span("client_thread", client=self.name):
                while not self._stopping.is_set():
                    try:
                        if not self.poll_once(timeout=1.0):
                            return
                    except TransportError:
                        continue  # idle timeout; check the stop flag again

        self._thread = threading.Thread(target=loop, name=f"client-{self.name}", daemon=True)
        self._thread.start()
        return self._thread

    def stop(self) -> None:
        self._stopping.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.learner.finalize(self.fl_ctx)
