"""Client-sampling schedulers for massive-cohort rounds.

A production federation has thousands of registered sites but tasks only a
fraction each round (NVFlare calls this the *client selection* policy; the
FedBuff/FedScale literature calls it the participation schedule).  The
:class:`ClientSampler` seam extracts that policy out of the controllers:

- :class:`UniformSampler` — every eligible site equally likely (the
  historical ``clients_per_round`` behaviour).
- :class:`WeightedSampler` — inclusion probability proportional to site
  size, so large hospitals are tasked more often and the aggregate sees
  data in proportion to where it lives.
- :class:`StratifiedSampler` — sites are bucketed by size quantile and the
  draw is allocated across buckets proportionally (every non-empty bucket
  gets at least one pick when the budget allows), so a cohort dominated by
  small clinics still hears from its few large centres every round.

Every sampler is a pure function of ``(seed, round_number)``: the per-round
RNG is re-derived from both, so sampling is deterministic, independent of
call history, and bit-reproducible across re-runs and resumed jobs —
required by the async controller's reproducibility gate.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["ClientSampler", "UniformSampler", "WeightedSampler",
           "StratifiedSampler", "make_sampler"]


class ClientSampler:
    """Pluggable per-round cohort selection.

    Subclasses implement :meth:`_draw`; :meth:`sample` handles validation
    and the trivial n >= population case, and returns clients in their
    original (registration) order so logs and fold orders stay stable.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def sample(self, clients: Sequence[str], n: int,
               round_number: int) -> list[str]:
        """Choose ``n`` distinct participants for ``round_number``."""
        if n <= 0:
            raise ValueError("sample size must be positive")
        clients = list(clients)
        if n >= len(clients):
            return clients
        chosen = self._draw(clients, n, self._round_rng(round_number))
        index = {name: position for position, name in enumerate(clients)}
        return sorted(chosen, key=index.__getitem__)

    # ------------------------------------------------------------------
    def _round_rng(self, round_number: int) -> np.random.Generator:
        """A fresh generator derived from ``(seed, round)`` — stateless, so
        the round-r draw never depends on which rounds ran before it."""
        return np.random.default_rng((self.seed, int(round_number)))

    def _draw(self, clients: list[str], n: int,
              rng: np.random.Generator) -> list[str]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class UniformSampler(ClientSampler):
    """Uniform draw without replacement — every site equally likely."""

    def _draw(self, clients: list[str], n: int,
              rng: np.random.Generator) -> list[str]:
        picks = rng.choice(len(clients), size=n, replace=False)
        return [clients[int(i)] for i in picks]


class _SizedSampler(ClientSampler):
    """Shared site-size handling: unknown sites count as size 1."""

    def __init__(self, site_sizes: Mapping[str, float] | None = None,
                 seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.site_sizes = dict(site_sizes or {})
        for name, size in self.site_sizes.items():
            if size <= 0:
                raise ValueError(f"site size for {name!r} must be positive, "
                                 f"got {size}")

    def _size(self, client: str) -> float:
        return float(self.site_sizes.get(client, 1.0))


class WeightedSampler(_SizedSampler):
    """Inclusion probability proportional to site size, without replacement."""

    def _draw(self, clients: list[str], n: int,
              rng: np.random.Generator) -> list[str]:
        sizes = np.array([self._size(name) for name in clients], dtype=np.float64)
        picks = rng.choice(len(clients), size=n, replace=False,
                           p=sizes / sizes.sum())
        return [clients[int(i)] for i in picks]


class StratifiedSampler(_SizedSampler):
    """Proportional allocation across site-size quantile buckets.

    Eligible sites are sorted by size and split into ``n_strata`` contiguous
    buckets; the budget is allocated to buckets by largest remainder on
    their populations, with every non-empty bucket guaranteed at least one
    pick whenever ``n >= number of non-empty buckets``.  Draws within a
    bucket are uniform.
    """

    def __init__(self, site_sizes: Mapping[str, float] | None = None,
                 n_strata: int = 4, seed: int = 0) -> None:
        super().__init__(site_sizes=site_sizes, seed=seed)
        if n_strata <= 0:
            raise ValueError("n_strata must be positive")
        self.n_strata = n_strata

    def _strata(self, clients: list[str]) -> list[list[str]]:
        by_size = sorted(clients, key=lambda name: (self._size(name), name))
        parts = np.array_split(np.arange(len(by_size)),
                               min(self.n_strata, len(by_size)))
        return [[by_size[int(i)] for i in part] for part in parts if len(part)]

    def _draw(self, clients: list[str], n: int,
              rng: np.random.Generator) -> list[str]:
        strata = self._strata(clients)
        quotas = self._allocate(n, [len(s) for s in strata])
        chosen: list[str] = []
        for stratum, quota in zip(strata, quotas):
            if quota >= len(stratum):
                chosen.extend(stratum)
            elif quota > 0:
                picks = rng.choice(len(stratum), size=quota, replace=False)
                chosen.extend(stratum[int(i)] for i in picks)
        return chosen

    @staticmethod
    def _allocate(n: int, populations: list[int]) -> list[int]:
        """Largest-remainder proportional allocation, min 1 where possible."""
        total = sum(populations)
        raw = [n * pop / total for pop in populations]
        quotas = [int(q) for q in raw]
        # floor-one guarantee first: no non-empty stratum draws empty as
        # long as the budget covers the stratum count
        if n >= len(populations):
            quotas = [max(q, 1) for q in quotas]
        quotas = [min(q, pop) for q, pop in zip(quotas, populations)]
        remainders = sorted(range(len(raw)),
                            key=lambda i: (raw[i] - int(raw[i]), -populations[i]),
                            reverse=True)
        index = 0
        while sum(quotas) < n:
            i = remainders[index % len(remainders)]
            if quotas[i] < populations[i]:
                quotas[i] += 1
            index += 1
        while sum(quotas) > n:
            i = remainders[index % len(remainders)]
            if quotas[i] > 1 or (sum(quotas) - quotas[i]) >= n:
                quotas[i] = max(0, quotas[i] - 1)
            index += 1
        return quotas

    def describe(self) -> str:
        return f"StratifiedSampler(n_strata={self.n_strata})"


def make_sampler(spec: "ClientSampler | str | None", *,
                 site_sizes: Mapping[str, float] | None = None,
                 seed: int = 0) -> ClientSampler | None:
    """Build a sampler from a job-config spec string.

    Accepted specs: ``"uniform"``, ``"weighted"``, ``"stratified"`` or
    ``"stratified:<n_strata>"``.  ``None`` passes through (the controller
    falls back to its default uniform draw); a :class:`ClientSampler`
    instance passes through unchanged.
    """
    if spec is None or isinstance(spec, ClientSampler):
        return spec
    name, _, arg = str(spec).partition(":")
    name = name.strip().lower()
    if name == "uniform":
        return UniformSampler(seed=seed)
    if name == "weighted":
        return WeightedSampler(site_sizes=site_sizes, seed=seed)
    if name == "stratified":
        n_strata = int(arg) if arg else 4
        return StratifiedSampler(site_sizes=site_sizes, n_strata=n_strata,
                                 seed=seed)
    raise ValueError(f"unknown sampler spec {spec!r} "
                     "(choose uniform, weighted, or stratified[:n])")
