"""SimulatorRunner: run a whole federated job in one process.

Reproduces NVFlare's simulator (the mode the paper's demonstration uses):
provision the project, create the simulated clients, register them against
the server with the token handshake, serve each client on its own thread,
run the ScatterAndGather workflow, and return the final/best models with the
collected statistics and the captured log transcript (Fig. 3).
"""

from __future__ import annotations

import sys
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..obs.health import HealthMonitor
from ..obs.session import TelemetrySession, _sysmon_interval
from . import codec as wire_codec_module
from .async_controller import AsyncScatterAndGather
from .client import FederatedClient
from .controller import ScatterAndGather
from .dxo import set_wire_codec
from .events import LogCapture
from .faults import FaultPlan, FaultyMessageBus
from .filters import CompressionConfig
from .fl_context import FLContext
from .job import FLJob
from .persistor import ModelPersistor
from .provision import Provisioner, default_project
from .runner import ProcessClientRunner, TelemetryCollector, WorkerRuntime
from .sampling import make_sampler
from .server import FLServer
from .shm_transport import ShmMessageBus
from .socket_transport import SocketMessageBus
from .stats import RunStats
from .transport import MessageBus, Transport

__all__ = ["SimulatorRunner", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one simulated federated run."""

    final_weights: dict[str, np.ndarray]
    best_weights: dict[str, np.ndarray]
    stats: RunStats
    tokens: dict[str, str]
    run_dir: Path
    log_text: str = ""
    cross_site: dict = field(default_factory=dict)


class SimulatorRunner:
    """Single-process federated simulation with threaded clients."""

    def __init__(self, job: FLJob, n_clients: int = 8, seed: int = 0,
                 run_dir: str | Path | None = None, threads: bool = True,
                 capture_log: bool = True, key_bits: int = 512,
                 max_parallel: int = 2,
                 fault_plan: FaultPlan | None = None,
                 telemetry: bool = False,
                 health: bool | HealthMonitor = False,
                 compression: CompressionConfig | str | None = None,
                 wire_codec: str | None = None,
                 transport: str | None = None,
                 telemetry_flush: float = 0.5,
                 metrics_port: int | None = None,
                 sysmon: bool | float | None = None) -> None:
        if n_clients <= 0:
            raise ValueError("n_clients must be positive")
        if max_parallel <= 0:
            raise ValueError("max_parallel must be positive")
        # Which fabric carries the job: "memory" = threaded clients on the
        # in-process bus, "socket" = one OS process per client over TCP
        # loopback, "shm" = one OS process per client over the fork-
        # inherited shared-memory fabric (the persistent worker pool).
        # The runner argument overrides the job's setting.
        self.transport = transport or job.transport or "memory"
        if self.transport not in ("memory", "socket", "shm"):
            raise ValueError("transport must be 'memory', 'socket' or "
                             f"'shm', got {self.transport!r}")
        if self.transport in ("socket", "shm") and not threads:
            raise ValueError(f"transport={self.transport!r} requires "
                             "threads=True (clients run in their own processes)")
        self.job = job
        self.n_clients = n_clients
        self.seed = seed
        self.threads = threads
        self.capture_log = capture_log
        self.key_bits = key_bits
        # Optional chaos scenario: run the whole job over a lossy bus.
        self.fault_plan = fault_plan
        # When on, the run is wrapped in a TelemetrySession writing
        # metrics.json / trace.jsonl / profile.json under run_dir (pointers
        # land in stats.telemetry).  ``telemetry_flush`` is how often each
        # worker process streams its trace/metrics delta to the parent —
        # lower means fresher live tails and less loss on a crash.
        self.telemetry = telemetry
        self.telemetry_flush = telemetry_flush
        # Live operations plane.  ``metrics_port`` arms a loopback
        # Prometheus exporter (0 = ephemeral port) serving /metrics and
        # /healthz for the duration of the run — implies telemetry.
        # ``sysmon`` arms the resource sampler (sys.rss_bytes and friends)
        # in the server and in every worker process: True = default
        # interval, a float = interval seconds; the default None arms it
        # exactly when the exporter is on.
        self.metrics_port = metrics_port
        if metrics_port is not None:
            self.telemetry = True
        if sysmon is None:
            sysmon = metrics_port is not None
        self.sysmon_interval = _sysmon_interval(sysmon)
        # Set while run() executes (telemetry runs only): the live
        # MetricsExporter, so callers can discover the bound port/url.
        self.metrics_exporter = None
        # Live health monitoring: per-client drift diagnostics + anomaly
        # alerts per round, written to run_dir/health.jsonl and surfaced on
        # stats.alerts.  ``True`` uses the default detector set (quarantine
        # off); pass a HealthMonitor to configure detectors/quarantine.
        self.health = health
        # Wire-efficiency knobs: ``compression`` ("delta+fp16", a
        # CompressionConfig, or None; overrides job.compression) turns on
        # the whole delta/quantize/sparsify chain on both sides, and
        # ``wire_codec`` pins the tensor codec ("raw", "raw+deflate" or the
        # legacy "npz" oracle) for the duration of the run.
        self.compression = CompressionConfig.from_spec(compression) \
            if compression is not None else job.compression
        if wire_codec is None and self.compression is not None:
            wire_codec = self.compression.wire_codec
        self.wire_codec = wire_codec
        # NVFlare's simulator multiplexes N clients over T threads; here all
        # clients have their own thread but at most ``max_parallel`` execute
        # a task at once, bounding peak training memory.
        self.max_parallel = max_parallel
        self.run_dir = Path(run_dir) if run_dir is not None else Path(
            tempfile.mkdtemp(prefix=f"fl-{job.name}-"))

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Provision, register, train, tear down."""
        capture = LogCapture().attach() if self.capture_log else None
        if isinstance(self.health, HealthMonitor):
            monitor: HealthMonitor | None = self.health
        elif self.health:
            monitor = HealthMonitor(run_dir=self.run_dir)
        else:
            monitor = None
        # The parent tracer is labelled "server" and mints the run-level
        # trace_id every worker process adopts; spans stream to
        # run_dir/trace.jsonl live (tail the run with
        # ``python -m repro.obs tail <run_dir>``).
        session = (TelemetrySession(self.run_dir, health=monitor or False,
                                    process="server",
                                    sysmon=self.sysmon_interval or False,
                                    exporter=self.metrics_port).start()
                   if self.telemetry else None)
        self.metrics_exporter = session.exporter if session is not None else None
        previous_codec = (set_wire_codec(self.wire_codec)
                          if self.wire_codec is not None else None)
        try:
            return self._run_inner(capture, session, monitor)
        finally:
            if previous_codec is not None:
                set_wire_codec(previous_codec)
            if session is not None:
                session.stop()  # finalizes the health artifact too
            elif monitor is not None:
                monitor.finalize()
            self.metrics_exporter = None
            if capture is not None:
                capture.detach()

    # ------------------------------------------------------------------
    def _run_inner(self, capture: LogCapture | None,
                   session: TelemetrySession | None = None,
                   monitor: HealthMonitor | None = None) -> SimulationResult:
        project = default_project(n_clients=self.n_clients, name=self.job.name)
        provisioner = Provisioner(project, seed=self.seed, key_bits=self.key_bits)
        kits = provisioner.provision()

        bus: Transport
        if self.transport == "socket":
            # Hub node: listens on loopback, routes frames between the
            # server endpoint (local) and the per-process client spokes.
            bus = SocketMessageBus(fault_plan=self.fault_plan)
        elif self.transport == "shm":
            # One fabric shared by parent and forked workers: queues for
            # control, mmap'd /dev/shm segments for tensor bodies.
            bus = ShmMessageBus(fault_plan=self.fault_plan)
        else:
            bus = (FaultyMessageBus(self.fault_plan)
                   if self.fault_plan is not None else MessageBus())
        server = FLServer(kits["server"], bus, seed=self.seed)
        server.log_info("Create the simulate clients.")
        exporter = session.exporter if session is not None else None
        if exporter is not None:
            # A scrape sees the transport/codec registries live, not just
            # after the end-of-run merge into the session registry.
            exporter.add_source(bus.metrics.to_dict)
            exporter.add_source(wire_codec_module.wire_metrics.to_dict)

        clients: list[FederatedClient] = []
        runner: ProcessClientRunner | None = None
        client_names = [spec.name for spec in project.clients]
        if self.transport in ("socket", "shm"):
            collector: TelemetryCollector | None = None
            trace_id = None
            if self.telemetry:
                # One collector joins the workers' streamed deltas to the
                # parent session: mid-round deltas arrive through the
                # server's result loop, the rest through the final drain.
                collector = TelemetryCollector(session)
                server.telemetry_sink = collector.ingest
                if session is not None and session.tracer is not None:
                    trace_id = session.tracer.trace_id
                if exporter is not None:
                    # Mid-run scrapes show every worker's latest streamed
                    # snapshot: sys.rss_bytes{process=site-N}, training
                    # counters, transport/wire registries.
                    def _worker_metrics(collector=collector):
                        return [part
                                for snapshot in collector.snapshots().values()
                                for key in ("metrics", "transport", "wire")
                                for part in [snapshot.get(key)]
                                if isinstance(part, dict)]

                    exporter.add_source(_worker_metrics)
            runner = ProcessClientRunner(
                self.job.learner_factory, kits, server,
                compression=self.compression,
                extra_result_filters=list(self.job.task_result_filters),
                fault_plan=self.fault_plan,
                max_parallel=self.max_parallel,
                runtime=WorkerRuntime.capture(len(client_names),
                                              telemetry=self.telemetry,
                                              sysmon=self.sysmon_interval),
                trace_id=trace_id,
                telemetry_flush=self.telemetry_flush,
                collector=collector)
            runner.launch(client_names)
        else:
            gate = threading.Semaphore(self.max_parallel)
            for spec in project.clients:
                learner = self.job.learner_factory(spec.name)
                task_data_filters: list = []
                task_result_filters = list(self.job.task_result_filters)
                if self.compression is not None:
                    # fresh instances per client: DeltaDecode caches this
                    # site's reconstructed global model between rounds
                    task_data_filters = self.compression.client_task_filters()
                    task_result_filters += self.compression.client_result_filters()
                client = FederatedClient(
                    kits[spec.name], learner, bus,
                    task_result_filters=task_result_filters,
                    task_data_filters=task_data_filters)
                client.task_semaphore = gate
                client.register(server)
                client.log_info(
                    "Successfully registered client:%s for project simulator_server. Token:%s",
                    spec.name, client.token)
                clients.append(client)

            if self.threads:
                for client in clients:
                    client.serve_in_thread()

        persistor = ModelPersistor(self.run_dir / "models")
        sampler = make_sampler(self.job.sampler,
                               site_sizes=self.job.site_sizes,
                               seed=self.job.sampling_seed)
        if self.job.mode == "async":
            if self.compression is not None:
                raise ValueError("async mode is incompatible with wire "
                                 "compression")
            controller: ScatterAndGather | AsyncScatterAndGather = \
                AsyncScatterAndGather(
                    server=server,
                    client_names=client_names,
                    initial_weights=self.job.initial_weights,
                    aggregator=self.job.aggregator_factory(),
                    persistor=persistor,
                    num_rounds=self.job.num_rounds,
                    buffer_size=self.job.buffer_size,
                    concurrency=self.job.concurrency,
                    staleness_alpha=self.job.staleness_alpha,
                    max_staleness=self.job.max_staleness,
                    evaluator=self.job.evaluator,
                    result_filters=self.job.server_result_filters,
                    min_clients=self.job.min_clients,
                    result_timeout=self.job.result_timeout,
                    max_failed_rounds=self.job.max_failed_rounds,
                    sampling_seed=self.job.sampling_seed,
                    sampler=sampler,
                    health=monitor,
                )
        else:
            controller = ScatterAndGather(
                server=server,
                client_names=client_names,
                initial_weights=self.job.initial_weights,
                aggregator=self.job.aggregator_factory(),
                persistor=persistor,
                num_rounds=self.job.num_rounds,
                evaluator=self.job.evaluator,
                result_filters=self.job.server_result_filters,
                min_clients=self.job.min_clients,
                clients_per_round=self.job.clients_per_round,
                result_timeout=self.job.result_timeout,
                max_failed_rounds=self.job.max_failed_rounds,
                sampling_seed=self.job.sampling_seed,
                sampler=sampler,
                compression=self.compression,
                health=monitor,
            )
        wire_before = wire_codec_module.wire_totals()
        worker_snapshots: dict[str, dict] = {}

        try:
            if self.threads:
                stats = controller.run()
            else:
                stats = self._run_sequential(controller, clients)
        finally:
            if runner is not None:
                # Stop fan-out may be partially undeliverable on a faulty
                # fabric; join() terminates any straggler processes anyway.
                server.stop_clients(client_names)
                if self.telemetry:
                    # each worker ships its metrics/profile on the way out;
                    # collect before join() so nothing is lost to teardown
                    worker_snapshots = runner.drain_telemetry()
                runner.join()
                bus.close()
            elif self.threads:
                # Join every worker thread even when the controller aborted
                # mid-run or the stop fan-out itself hits a faulty bus: the
                # stop flag (client.stop) does not depend on the __stop__
                # message being deliverable.
                server.stop_clients([client.name for client in clients])
                stop_error: Exception | None = None
                for client in clients:
                    try:
                        client.stop()
                    except Exception as error:  # keep joining the rest first
                        stop_error = stop_error or error
                # don't mask an in-flight controller error with a stop error
                if stop_error is not None and sys.exc_info()[0] is None:
                    raise stop_error

        final_weights = controller.global_weights
        # Per-run wire accounting: the codec registry is cumulative per
        # process, so the run's share is the before/after delta.
        wire_after = wire_codec_module.wire_totals()

        def _wire_delta(prefix: str) -> int:
            return int(
                sum(v for k, v in wire_after.items() if k.startswith(prefix))
                - sum(v for k, v in wire_before.items() if k.startswith(prefix)))

        stats.wire_bytes_raw = _wire_delta("transport.bytes_raw")
        stats.wire_bytes_encoded = _wire_delta("transport.bytes_encoded")
        if session is not None:
            # Fold the bus's always-on registry (delivery totals, per-topic
            # latency, injected faults) into the run's metrics.json and point
            # the stats at the artifacts the session will write on stop().
            if session.registry is not None:
                session.registry.merge(bus.metrics)
                session.registry.merge(wire_codec_module.wire_metrics)
            # Per-worker snapshots (process-per-client runs): fold each
            # child's registries and op profile in, so metrics.json /
            # profile.json cover the training work done in every process.
            for name, snapshot in sorted(worker_snapshots.items()):
                if session.registry is not None:
                    for key in ("metrics", "transport", "wire"):
                        if isinstance(snapshot.get(key), dict):
                            session.registry.merge_dict(snapshot[key])
                if session.profiler is not None \
                        and isinstance(snapshot.get("profile"), dict):
                    session.profiler.merge_dict(snapshot["profile"])
            if session.sysmon is not None:
                session.sysmon.sample()  # capture the end-of-run high water
                stats.peak_rss_bytes = int(session.sysmon.peak_rss_bytes)
            stats.telemetry = session.artifact_paths()
        elif monitor is not None and monitor.health_path is not None:
            stats.telemetry = {"health": str(monitor.health_path)}
        if session is not None or monitor is not None:
            # Registry fodder: a run dir with stats.json + health.jsonl is
            # self-describing for ``python -m repro.obs runs list/diff``.
            stats.save_json(self.run_dir / "stats.json")
        try:
            best_weights = persistor.load_best()
        except FileNotFoundError:
            best_weights = dict(final_weights)
        return SimulationResult(
            final_weights=final_weights,
            best_weights=best_weights,
            stats=stats,
            tokens=dict(server.tokens),
            run_dir=self.run_dir,
            log_text=capture.text() if capture is not None else "",
        )

    # ------------------------------------------------------------------
    def _run_sequential(self, controller: "ScatterAndGather | AsyncScatterAndGather",
                        clients: list[FederatedClient]) -> RunStats:
        """Deterministic single-thread mode: interleave controller and clients.

        The controller's collect step blocks, so in sequential mode each
        dispatch is driven manually: broadcast happens inside the
        controller, after which every tasked client polls exactly once per
        TASKS_BROADCAST event (the async controller fires one per dispatch
        wave, so in-flight sites answer deterministically in registration
        order — the basis of the bit-reproducibility gate).
        """
        # Sequential execution re-uses the threaded controller by running the
        # clients' poll loops from a round-boundary event hook.
        from .constants import EventType

        class _PollClients:
            def handle_event(self, event_type: str, fl_ctx: FLContext) -> None:
                if event_type == EventType.TASKS_BROADCAST:
                    for client in clients:
                        # only clients actually tasked this round (the
                        # controller may sample a subset) have a message
                        if client.bus.pending(client.name):
                            client.poll_once(timeout=5.0)

        hook = _PollClients()
        original_fire = controller.fire_event

        def fire_and_poll(event_type: str, fl_ctx, targets=None) -> None:
            original_fire(event_type, fl_ctx, targets)
            hook.handle_event(event_type, fl_ctx)

        controller.fire_event = fire_and_poll  # type: ignore[method-assign]
        return controller.run()
