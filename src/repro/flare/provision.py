"""Provisioning: project spec → startup kits (NVFlare's "provision" stage).

The paper's pipeline (Fig. 1) starts with *NVFlare provision*: defining the
project (one server, N client sites, admin), generating the root CA,
participant key pairs and certificates, and distributing a startup kit to
every participant.  This module reproduces that flow in-process.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .constants import FLRole
from .security import Certificate, CertificateAuthority, RSAKeyPair, generate_keypair

__all__ = ["ParticipantSpec", "ProjectSpec", "StartupKit", "Provisioner",
           "default_project", "make_join_token"]


@dataclass(frozen=True)
class ParticipantSpec:
    """One row of the project file: name, org and role."""

    name: str
    org: str
    role: str

    def __post_init__(self) -> None:
        if self.role not in (FLRole.SERVER, FLRole.CLIENT, FLRole.ADMIN):
            raise ValueError(f"unknown role {self.role!r}")


@dataclass(frozen=True)
class ProjectSpec:
    """A federated project: named participants under one trust root."""

    name: str
    participants: tuple[ParticipantSpec, ...]

    def __post_init__(self) -> None:
        names = [p.name for p in self.participants]
        if len(set(names)) != len(names):
            raise ValueError("participant names must be unique")
        if sum(p.role == FLRole.SERVER for p in self.participants) != 1:
            raise ValueError("project needs exactly one server")

    @property
    def server(self) -> ParticipantSpec:
        return next(p for p in self.participants if p.role == FLRole.SERVER)

    @property
    def clients(self) -> list[ParticipantSpec]:
        return [p for p in self.participants if p.role == FLRole.CLIENT]


@dataclass
class StartupKit:
    """Everything a participant needs to join: keys, cert, trust root."""

    participant: ParticipantSpec
    keypair: RSAKeyPair
    certificate: Certificate
    ca_public_key: tuple[int, int]
    project_name: str

    def summary(self) -> dict:
        """JSON-safe kit description (what would land on disk)."""
        return {
            "project": self.project_name,
            "participant": self.participant.name,
            "org": self.participant.org,
            "role": self.participant.role,
            "public_key_bits": self.keypair.n.bit_length(),
            "certificate_subject": self.certificate.subject,
        }


def default_project(n_clients: int = 8, name: str = "clinical-fl") -> ProjectSpec:
    """The paper's topology: one server + eight client sites + one admin."""
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    participants = [ParticipantSpec("server", "central", FLRole.SERVER)]
    participants += [ParticipantSpec(f"site-{index}", f"clinic-{index}", FLRole.CLIENT)
                     for index in range(1, n_clients + 1)]
    participants.append(ParticipantSpec("admin@central", "central", FLRole.ADMIN))
    return ProjectSpec(name=name, participants=tuple(participants))


class Provisioner:
    """Generates the CA and one startup kit per participant."""

    def __init__(self, project: ProjectSpec, seed: int = 0, key_bits: int = 1024) -> None:
        self.project = project
        self.seed = seed
        self.key_bits = key_bits
        self.ca = CertificateAuthority(name=f"{project.name}-ca", bits=key_bits,
                                       seed=seed)

    def provision(self) -> dict[str, StartupKit]:
        """Issue keys and certificates for every participant."""
        kits: dict[str, StartupKit] = {}
        for index, participant in enumerate(self.project.participants):
            keypair = generate_keypair(bits=self.key_bits, seed=self.seed + 1000 + index)
            certificate = self.ca.issue(participant.name, participant.org,
                                        participant.role, keypair.public)
            kits[participant.name] = StartupKit(
                participant=participant, keypair=keypair, certificate=certificate,
                ca_public_key=self.ca.public_key, project_name=self.project.name)
        return kits

    def write_kits(self, kits: dict[str, StartupKit], directory: str | Path) -> Path:
        """Write kit summaries to disk, mirroring NVFlare's startup folders."""
        directory = Path(directory)
        for name, kit in kits.items():
            kit_dir = directory / name / "startup"
            kit_dir.mkdir(parents=True, exist_ok=True)
            (kit_dir / "fed_info.json").write_text(json.dumps(kit.summary(), indent=2))
        return directory


def make_join_token(rng: np.random.Generator) -> str:
    """A UUID4-format join token (deterministic under a seeded generator)."""
    raw = bytearray(rng.bytes(16))
    raw[6] = (raw[6] & 0x0F) | 0x40  # version 4
    raw[8] = (raw[8] & 0x3F) | 0x80  # RFC 4122 variant
    return str(uuid.UUID(bytes=bytes(raw)))
