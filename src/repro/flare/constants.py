"""Shared constants of the federated framework (NVFlare-style vocabulary)."""

from __future__ import annotations

__all__ = ["DataKind", "ReturnCode", "EventType", "ReservedKey", "TaskName",
           "FLRole", "TELEMETRY_TOPIC"]

# Topic of the child -> server telemetry messages: workers stream periodic
# metric/trace deltas during the run and one final snapshot on the way out.
# Lives here (not in runner.py) so the server's receive loop can route it
# without importing the process-runner machinery.
TELEMETRY_TOPIC = "__telemetry__"


class DataKind:
    """What a DXO payload contains."""

    WEIGHTS = "WEIGHTS"
    WEIGHT_DIFF = "WEIGHT_DIFF"
    METRICS = "METRICS"
    COLLECTION = "COLLECTION"


class ReturnCode:
    """Result status carried in a Shareable header."""

    OK = "OK"
    EXECUTION_EXCEPTION = "EXECUTION_EXCEPTION"
    TASK_UNKNOWN = "TASK_UNKNOWN"
    BAD_TASK_DATA = "BAD_TASK_DATA"
    EMPTY_RESULT = "EMPTY_RESULT"
    UNAUTHENTICATED = "UNAUTHENTICATED"


class EventType:
    """Events fired through the FL component tree."""

    START_RUN = "START_RUN"
    END_RUN = "END_RUN"
    ROUND_STARTED = "ROUND_STARTED"
    TASKS_BROADCAST = "TASKS_BROADCAST"
    ROUND_DONE = "ROUND_DONE"
    BEFORE_TRAIN_TASK = "BEFORE_TRAIN_TASK"
    AFTER_TRAIN_TASK = "AFTER_TRAIN_TASK"
    BEFORE_AGGREGATION = "BEFORE_AGGREGATION"
    AFTER_AGGREGATION = "AFTER_AGGREGATION"
    CLIENT_REGISTERED = "CLIENT_REGISTERED"
    BEST_MODEL_UPDATED = "BEST_MODEL_UPDATED"


class ReservedKey:
    """Well-known Shareable header / FLContext property keys."""

    TASK_NAME = "__task_name__"
    MSG_ID = "__msg_id__"
    ATTEMPT = "__attempt__"
    SEND_TS = "__send_ts__"
    TRACE_CTX = "__trace_ctx__"
    ROUND_NUMBER = "__round_number__"
    TOTAL_ROUNDS = "__total_rounds__"
    RETURN_CODE = "__return_code__"
    CLIENT_NAME = "__client_name__"
    NUM_STEPS = "__num_steps_current_round__"
    TOKEN = "__token__"
    CURRENT_ROUND = "current_round"
    GLOBAL_MODEL = "global_model"
    RUN_DIR = "run_dir"


class TaskName:
    """Task identifiers used by the workflows."""

    TRAIN = "train"
    VALIDATE = "validate"
    SUBMIT_MODEL = "submit_model"


class FLRole:
    """Participant roles in a provisioned project."""

    SERVER = "server"
    CLIENT = "client"
    ADMIN = "admin"
