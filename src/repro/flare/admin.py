"""Admin API: the operator's view of a running federation.

NVFlare ships an admin console (list clients, check job status, abort).
This module provides the equivalent programmatic surface over the in-process
federation: registered-client inventory, transport counters, controller
progress and an abort signal the controller honours between rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from .controller import ScatterAndGather
from .events import FLComponent
from .server import FLServer

__all__ = ["AdminAPI", "ClientInfo", "JobStatus"]


@dataclass(frozen=True)
class ClientInfo:
    """One registered client as the admin sees it."""

    name: str
    token: str
    pending_messages: int


@dataclass(frozen=True)
class JobStatus:
    """Controller progress snapshot."""

    current_round: int
    total_rounds: int
    finished: bool
    aborted: bool
    messages_delivered: int
    bytes_delivered: int


class AdminAPI(FLComponent):
    """Operator console over a server and (optionally) its controller."""

    def __init__(self, server: FLServer,
                 controller: ScatterAndGather | None = None) -> None:
        super().__init__(name="AdminAPI")
        self.server = server
        self.controller = controller
        self._abort_requested = False
        if controller is not None:
            self._install_abort_hook(controller)

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def list_clients(self) -> list[ClientInfo]:
        """All registered clients, with their tokens and queue depth."""
        return [ClientInfo(name=name, token=token,
                           pending_messages=self.server.bus.pending(name))
                for name, token in sorted(self.server.tokens.items())]

    def check_client(self, name: str) -> ClientInfo:
        if name not in self.server.tokens:
            raise KeyError(f"client {name!r} is not registered")
        return ClientInfo(name=name, token=self.server.tokens[name],
                          pending_messages=self.server.bus.pending(name))

    # ------------------------------------------------------------------
    # job control
    # ------------------------------------------------------------------
    def job_status(self) -> JobStatus:
        if self.controller is None:
            raise RuntimeError("no controller attached")
        completed = self.controller.stats.num_rounds
        return JobStatus(
            current_round=completed,
            total_rounds=self.controller.num_rounds,
            finished=completed >= self.controller.num_rounds,
            aborted=self._abort_requested,
            messages_delivered=self.server.bus.delivered_count,
            bytes_delivered=self.server.bus.delivered_bytes,
        )

    def abort_job(self) -> None:
        """Ask the controller to stop after the current round."""
        self._abort_requested = True
        self.log_warning("abort requested by admin")

    # ------------------------------------------------------------------
    def _install_abort_hook(self, controller: ScatterAndGather) -> None:
        admin = self
        original = controller._run_round

        def abortable_run_round(round_number: int, fl_ctx) -> None:
            if admin._abort_requested:
                raise RuntimeError(
                    f"job aborted by admin before round {round_number}")
            original(round_number, fl_ctx)

        controller._run_round = abortable_run_round  # type: ignore[method-assign]
