"""Transport seam: signed envelopes over pluggable delivery fabrics.

Plays the role of NVFlare's gRPC/TLS channel.  Every message body is real
bytes (the Shareable's DXO payload is RTC1/npz-encoded) and carries an
HMAC-SHA256 tag under the session key established at registration, so the
protocol steps — serialize, sign, dispatch, dequeue, verify, deserialize —
all actually run.

Two fabrics implement the :class:`Transport` contract:

- :class:`MessageBus` — the in-memory fast path: per-participant queues in
  one process (the historical simulator transport).
- :class:`~repro.flare.socket_transport.SocketMessageBus` — length-prefixed
  binary frames over TCP loopback, one node per process, used by the
  process-per-client runner (``SimulatorRunner(transport="socket")``).

Everything above the seam — retry/backoff, message-id dedup, fault
injection, compression filters, telemetry, the health monitor — is written
against :class:`Transport` and behaves identically on both fabrics (pinned
by ``tests/flare/test_transport_conformance.py``).

Reliability layer: every send carries an idempotency header
(``ReservedKey.MSG_ID``, stable across resends) plus an attempt counter, the
receive path deduplicates replayed/duplicated message ids after signature
verification, and :func:`send_with_retry` adds bounded exponential backoff
on top for lossy fabrics (see ``faults.FaultyMessageBus``).
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from ..obs import trace as obs_trace
from ..obs.metrics import MetricsRegistry
from .constants import ReservedKey
from .security import hmac_sign_parts, hmac_verify_parts
from .shareable import Shareable

__all__ = ["Message", "Transport", "BaseTransport", "MessageBus",
           "TransportError", "ReceiveTimeout", "SignatureError", "RetryPolicy",
           "send_with_retry"]

# How many message ids each endpoint remembers for replay/duplicate detection.
_DEDUP_WINDOW = 4096


class TransportError(RuntimeError):
    """Raised on signature failures or undeliverable messages."""


class ReceiveTimeout(TransportError):
    """No message arrived within the receive timeout.

    Carries the waiting endpoint plus — when the caller described what it
    was waiting for — the expected topic and peer, so a timeout deep in a
    round surfaces *which* conversation stalled instead of a bare count of
    seconds.
    """

    def __init__(self, endpoint: str, timeout: float | None,
                 topic: str | None = None, peer: str | None = None) -> None:
        self.endpoint = endpoint
        self.timeout = timeout
        self.topic = topic
        self.peer = peer
        waiting = f"no message for {endpoint!r}"
        if topic is not None and peer is not None:
            waiting += f" (expected topic {topic!r} from {peer!r})"
        elif topic is not None:
            waiting += f" (expected topic {topic!r})"
        elif peer is not None:
            waiting += f" (expected sender {peer!r})"
        super().__init__(f"{waiting} within {timeout}s")


class SignatureError(TransportError):
    """A message failed HMAC verification (tampered, corrupted or stale key)."""


@dataclass
class Message:
    """One envelope on the wire.

    ``body`` is usually ``bytes`` but any buffer works: the shared-memory
    fabric delivers a ``memoryview`` over an mmap so the payload is hashed
    and decoded in place, never copied into the receiving process.
    """

    sender: str
    recipient: str
    topic: str
    body: bytes
    signature: str = ""
    headers: dict[str, Any] = field(default_factory=dict)

    def signed_parts(self) -> tuple[bytes, bytes, bytes]:
        """The buffers covered by the HMAC tag, in signing order."""
        header_bytes = json.dumps(
            {"sender": self.sender, "recipient": self.recipient, "topic": self.topic,
             "headers": self.headers}, sort_keys=True).encode("utf-8")
        return header_bytes, b"\x00", self.body

    def signed_payload(self) -> bytes:
        return b"".join(self.signed_parts())


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for resends.

    Deterministic (no jitter) so that simulated runs are reproducible; the
    delay for attempt ``k`` is ``min(base_delay * multiplier**k, max_delay)``.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (backoff must not shrink)")

    def delay_for(self, attempt: int) -> float:
        """Backoff to sleep after failed attempt number ``attempt`` (0-based)."""
        return min(self.base_delay * self.multiplier ** attempt, self.max_delay)


def send_with_retry(bus: "Transport", sender: str, recipient: str, topic: str,
                    shareable: Shareable,
                    policy: RetryPolicy | None = None) -> int:
    """Send with bounded exponential backoff; returns the attempts used.

    All attempts share one message id, so a receiver that already saw an
    earlier attempt (e.g. the send "failed" after delivery) drops the resend
    as a duplicate — resends are idempotent.  Raises :class:`TransportError`
    only after ``policy.max_attempts`` consecutive failures.
    """
    policy = policy or RetryPolicy()
    msg_id = bus.next_msg_id(sender)
    last_error: TransportError | None = None
    for attempt in range(policy.max_attempts):
        try:
            bus.send_shareable(sender, recipient, topic, shareable,
                               msg_id=msg_id, attempt=attempt)
            return attempt + 1
        except TransportError as error:
            last_error = error
            bus.metrics.counter("transport.send_failures", topic=topic).inc()
            if attempt + 1 < policy.max_attempts:
                time.sleep(policy.delay_for(attempt))
    raise TransportError(
        f"message {topic!r} from {sender!r} to {recipient!r} undeliverable "
        f"after {policy.max_attempts} attempt(s): {last_error}") from last_error


def _encode_shareable(shareable: Shareable) -> bytes:
    """Shareable → bytes: JSON headers + raw DXO block."""
    headers = {key: value for key, value in shareable.items() if key != "DXO"}
    header_bytes = json.dumps(headers, sort_keys=True).encode("utf-8")
    body = shareable.get("DXO", b"")
    return len(header_bytes).to_bytes(4, "little") + header_bytes + body


def _decode_shareable(blob: bytes) -> Shareable:
    """bytes/memoryview → Shareable.

    Slicing a memoryview yields another view, so when ``blob`` lives in
    shared memory the DXO block is handed to the codec without a copy.
    """
    header_len = int.from_bytes(blob[:4], "little")
    headers = json.loads(bytes(blob[4:4 + header_len]).decode("utf-8"))
    shareable = Shareable(headers)
    body = blob[4 + header_len:]
    if len(body):
        shareable["DXO"] = body
    return shareable


class Transport:
    """The contract every delivery fabric implements.

    An instance is a *node*: it hosts some set of local endpoints (whose
    inboxes it owns) and knows how to route envelopes toward everyone else.
    The in-memory bus is one node hosting every participant; a socket
    deployment has one node per process.

    The contract, pinned by the conformance suite:

    - ``send_shareable`` serializes, signs with the *sender's* session key
      and dispatches; it raises :class:`TransportError` when the node cannot
      route to the recipient or the sender holds no key.
    - ``receive`` verifies the sender's signature (:class:`SignatureError`
      on mismatch), drops already-seen message ids, and raises
      :class:`ReceiveTimeout` — with the waited endpoint/topic/peer — on an
      exhausted deadline.
    - deliveries between one sender/recipient pair stay FIFO-ordered.
    - resends carrying the same ``msg_id`` are delivered at most once.
    """

    metrics: MetricsRegistry

    def register_endpoint(self, name: str) -> None:
        """Declare ``name`` as an endpoint hosted by (or known to) this node."""
        raise NotImplementedError

    def install_session_key(self, name: str, key: bytes) -> None:
        raise NotImplementedError

    def session_key(self, name: str) -> bytes | None:
        raise NotImplementedError

    def next_msg_id(self, sender: str) -> str:
        raise NotImplementedError

    def send_shareable(self, sender: str, recipient: str, topic: str,
                       shareable: Shareable, msg_id: str | None = None,
                       attempt: int = 0) -> None:
        raise NotImplementedError

    def receive(self, name: str, timeout: float | None = 10.0, *,
                topic: str | None = None,
                peer: str | None = None) -> tuple[str, str, Shareable]:
        raise NotImplementedError

    def pending(self, name: str) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release sockets/threads; a no-op for in-memory fabrics."""


class BaseTransport(Transport):
    """Shared envelope layer: keys, signing, msg-id sequencing, dedup, metrics.

    Subclasses provide the delivery fabric by implementing
    :meth:`_dispatch` (route one signed envelope toward its recipient) and
    :meth:`_next_message` (pop the next envelope addressed to a local
    endpoint, or ``None`` on timeout).
    """

    def __init__(self) -> None:
        self._session_keys: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self._send_seq: dict[str, int] = {}
        self._seen_ids: dict[str, OrderedDict] = {}
        self._endpoints: set[str] = set()
        self._peers: set[str] = set()
        # Every node owns an always-enabled registry: delivery totals must be
        # available (RunStats copies them) whether or not a telemetry
        # session is active.  A session merges this registry into the run's
        # metrics.json at export time.
        self.metrics = MetricsRegistry()
        self._messages_delivered = self.metrics.counter("transport.messages_delivered")
        self._bytes_delivered = self.metrics.counter("transport.bytes_delivered")
        self._retries = self.metrics.counter("transport.retries")
        self._duplicates_dropped = self.metrics.counter("transport.duplicates_dropped")

    # ------------------------------------------------------------------
    # registry-backed totals (the former one-off int attributes)
    # ------------------------------------------------------------------
    @property
    def delivered_count(self) -> int:
        return int(self._messages_delivered.value)

    @property
    def delivered_bytes(self) -> int:
        return int(self._bytes_delivered.value)

    @property
    def retry_count(self) -> int:
        """Sends carrying attempt > 0."""
        return int(self._retries.value)

    @property
    def duplicates_dropped(self) -> int:
        """Receives skipped by message-id dedup."""
        return int(self._duplicates_dropped.value)

    # ------------------------------------------------------------------
    def register_endpoint(self, name: str) -> None:
        with self._lock:
            self._endpoints.add(name)
            self._seen_ids.setdefault(name, OrderedDict())
        self._on_endpoint_registered(name)

    def _on_endpoint_registered(self, name: str) -> None:
        """Fabric hook: allocate per-endpoint delivery state."""

    def register_peer(self, name: str) -> None:
        """Declare a *remote* participant this node must verify traffic from.

        No inbox is allocated — the name only becomes eligible for
        :meth:`install_session_key`.  Multi-node fabrics use this for
        counterpart identities (a client node registers the server as a
        peer); on the single-node in-memory bus it is rarely needed because
        every participant is a local endpoint.
        """
        with self._lock:
            self._peers.add(name)

    def install_session_key(self, name: str, key: bytes) -> None:
        with self._lock:
            if name not in self._endpoints and name not in self._peers:
                raise TransportError(f"unknown endpoint {name!r}")
            self._session_keys[name] = key

    def session_key(self, name: str) -> bytes | None:
        with self._lock:
            return self._session_keys.get(name)

    def next_msg_id(self, sender: str) -> str:
        """A fresh idempotency id; sequential per sender."""
        with self._lock:
            seq = self._send_seq.get(sender, 0)
            self._send_seq[sender] = seq + 1
        return f"{sender}:{seq}"

    # ------------------------------------------------------------------
    def send_shareable(self, sender: str, recipient: str, topic: str,
                       shareable: Shareable, msg_id: str | None = None,
                       attempt: int = 0) -> None:
        """Serialize, sign with the sender's session key and dispatch.

        ``msg_id`` defaults to a fresh id; retries must pass the original id
        (see :func:`send_with_retry`) so the receiver can deduplicate.
        """
        key = self.session_key(sender)
        if key is None:
            raise TransportError(f"endpoint {sender!r} has no session key (not registered)")
        if msg_id is None:
            msg_id = self.next_msg_id(sender)
        body = _encode_shareable(shareable)
        # One monotonic sample serves both the latency stamp and the trace
        # context's timeline stamp: the receiver derives the sender's clock
        # offset from their difference, so sharing the sample makes the
        # derivation exact instead of off by the sampling gap.
        send_ts = time.monotonic()
        headers = {ReservedKey.CLIENT_NAME: sender,
                   ReservedKey.MSG_ID: msg_id,
                   ReservedKey.ATTEMPT: attempt,
                   ReservedKey.SEND_TS: send_ts}
        tracer = obs_trace.get_tracer()
        if tracer is not None:
            headers[ReservedKey.TRACE_CTX] = tracer.current_context(send_ts)
        message = Message(sender=sender, recipient=recipient, topic=topic, body=body,
                          headers=headers)
        message.signature = hmac_sign_parts(message.signed_parts(), key)
        if attempt > 0:
            self._retries.inc()
        self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        """Route one signed envelope toward its recipient."""
        raise NotImplementedError

    def _count_delivery(self, message: Message) -> None:
        """Account one envelope handled by this node (send or local arrival)."""
        self._messages_delivered.inc()
        self._bytes_delivered.inc(len(message.body))
        self.metrics.counter("transport.messages", topic=message.topic).inc()
        self.metrics.counter("transport.bytes", topic=message.topic).inc(len(message.body))

    # ------------------------------------------------------------------
    def receive(self, name: str, timeout: float | None = 10.0, *,
                topic: str | None = None,
                peer: str | None = None) -> tuple[str, str, Shareable]:
        """Dequeue, verify signature, deduplicate, deserialize.

        Returns ``(sender, topic, shareable)``.  Duplicated or replayed
        message ids are skipped (the wait continues against the original
        deadline); a bad signature raises :class:`SignatureError` and an
        exhausted deadline raises :class:`ReceiveTimeout` naming the waiting
        endpoint plus the optional expected ``topic``/``peer`` context.
        """
        with self._lock:
            if name not in self._endpoints:
                raise TransportError(f"unknown endpoint {name!r}")
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            message = self._next_message(name, remaining)
            if message is None:
                raise ReceiveTimeout(name, timeout, topic=topic, peer=peer)
            key = self.session_key(message.sender)
            if key is None or not hmac_verify_parts(message.signed_parts(),
                                                    message.signature, key):
                raise SignatureError(
                    f"signature check failed for message {message.topic!r} "
                    f"from {message.sender!r}")
            msg_id = message.headers.get(ReservedKey.MSG_ID)
            if msg_id is not None and not self._mark_seen(name, msg_id):
                self._duplicates_dropped.inc()
                continue
            send_ts = message.headers.get(ReservedKey.SEND_TS)
            if isinstance(send_ts, (int, float)):
                self.metrics.histogram("transport.latency_seconds",
                                       topic=message.topic).observe(
                    max(time.monotonic() - send_ts, 0.0))
            shareable = _decode_shareable(message.body)
            ctx = message.headers.get(ReservedKey.TRACE_CTX)
            if isinstance(ctx, dict):
                tracer = obs_trace.get_tracer()
                if tracer is not None and isinstance(send_ts, (int, float)):
                    tracer.observe_remote(ctx, send_ts)
                # Hand the context to the task executor (local attachment
                # only: received shareables are never re-sent, and replies
                # are built fresh, so the key never leaks back on the wire).
                shareable[ReservedKey.TRACE_CTX] = ctx
            return message.sender, message.topic, shareable

    def _next_message(self, name: str, remaining: float | None) -> Message | None:
        """Pop the next envelope for local endpoint ``name``; None on timeout."""
        raise NotImplementedError

    def _mark_seen(self, name: str, msg_id: str) -> bool:
        """Record ``msg_id`` for ``name``; False when it was already seen."""
        with self._lock:
            seen = self._seen_ids.setdefault(name, OrderedDict())
            if msg_id in seen:
                return False
            seen[msg_id] = None
            while len(seen) > _DEDUP_WINDOW:
                seen.popitem(last=False)
            return True


class MessageBus(BaseTransport):
    """Per-participant queues with HMAC signing on every delivery.

    Session keys are installed by the server when a client registers; traffic
    to or from a participant without a key is rejected, which is how the
    simulator enforces the "provision before train" ordering.

    Every send is stamped with a message id (per-sender sequence, so ids are
    deterministic under threaded sends) and an attempt counter; ``receive``
    drops already-seen ids, which makes resends and replay attacks
    exactly-once at the application layer.
    """

    def __init__(self) -> None:
        super().__init__()
        self._queues: dict[str, "queue.Queue[Message]"] = {}

    # ------------------------------------------------------------------
    def _on_endpoint_registered(self, name: str) -> None:
        with self._lock:
            self._queues.setdefault(name, queue.Queue())

    def _dispatch(self, message: Message) -> None:
        self._enqueue(message)

    def _enqueue(self, message: Message) -> None:
        """Deliver one signed envelope (fault-injecting buses override this)."""
        with self._lock:
            if message.recipient not in self._queues:
                raise TransportError(f"unknown recipient {message.recipient!r}")
            self._queues[message.recipient].put(message)
        self._count_delivery(message)

    def _next_message(self, name: str, remaining: float | None) -> Message | None:
        with self._lock:
            q = self._queues[name]
        try:
            return q.get(timeout=remaining)
        except queue.Empty:
            return None

    def pending(self, name: str) -> int:
        with self._lock:
            return self._queues[name].qsize() if name in self._queues else 0
