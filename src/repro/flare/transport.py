"""In-memory transport: queues + signed, serialized messages.

Plays the role of NVFlare's gRPC/TLS channel in the simulator.  Every
message body is real bytes (the Shareable's DXO payload is npz-encoded) and
carries an HMAC-SHA256 tag under the session key established at
registration, so the protocol steps — serialize, sign, enqueue, dequeue,
verify, deserialize — all actually run.
"""

from __future__ import annotations

import json
import queue
import threading
from dataclasses import dataclass, field
from typing import Any

from .constants import ReservedKey
from .security import hmac_sign, hmac_verify
from .shareable import Shareable

__all__ = ["Message", "MessageBus", "TransportError"]


class TransportError(RuntimeError):
    """Raised on signature failures or undeliverable messages."""


@dataclass
class Message:
    """One envelope on the wire."""

    sender: str
    recipient: str
    topic: str
    body: bytes
    signature: str = ""
    headers: dict[str, Any] = field(default_factory=dict)

    def signed_payload(self) -> bytes:
        header_bytes = json.dumps(
            {"sender": self.sender, "recipient": self.recipient, "topic": self.topic,
             "headers": self.headers}, sort_keys=True).encode("utf-8")
        return header_bytes + b"\x00" + self.body


def _encode_shareable(shareable: Shareable) -> bytes:
    """Shareable → bytes: JSON headers + raw DXO block."""
    headers = {key: value for key, value in shareable.items() if key != "DXO"}
    header_bytes = json.dumps(headers, sort_keys=True).encode("utf-8")
    body = shareable.get("DXO", b"")
    return len(header_bytes).to_bytes(4, "little") + header_bytes + body


def _decode_shareable(blob: bytes) -> Shareable:
    header_len = int.from_bytes(blob[:4], "little")
    headers = json.loads(blob[4:4 + header_len].decode("utf-8"))
    shareable = Shareable(headers)
    body = blob[4 + header_len:]
    if body:
        shareable["DXO"] = body
    return shareable


class MessageBus:
    """Per-participant queues with HMAC signing on every delivery.

    Session keys are installed by the server when a client registers; traffic
    to or from a participant without a key is rejected, which is how the
    simulator enforces the "provision before train" ordering.
    """

    def __init__(self) -> None:
        self._queues: dict[str, "queue.Queue[Message]"] = {}
        self._session_keys: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.delivered_count = 0
        self.delivered_bytes = 0

    # ------------------------------------------------------------------
    def register_endpoint(self, name: str) -> None:
        with self._lock:
            self._queues.setdefault(name, queue.Queue())

    def install_session_key(self, name: str, key: bytes) -> None:
        with self._lock:
            if name not in self._queues:
                raise TransportError(f"unknown endpoint {name!r}")
            self._session_keys[name] = key

    def session_key(self, name: str) -> bytes | None:
        with self._lock:
            return self._session_keys.get(name)

    # ------------------------------------------------------------------
    def send_shareable(self, sender: str, recipient: str, topic: str,
                       shareable: Shareable) -> None:
        """Serialize, sign with the sender's session key and enqueue."""
        key = self.session_key(sender)
        if key is None:
            raise TransportError(f"endpoint {sender!r} has no session key (not registered)")
        body = _encode_shareable(shareable)
        message = Message(sender=sender, recipient=recipient, topic=topic, body=body,
                          headers={ReservedKey.CLIENT_NAME: sender})
        message.signature = hmac_sign(message.signed_payload(), key)
        with self._lock:
            if recipient not in self._queues:
                raise TransportError(f"unknown recipient {recipient!r}")
            self._queues[recipient].put(message)
            self.delivered_count += 1
            self.delivered_bytes += len(body)

    def receive(self, name: str, timeout: float | None = 10.0) -> tuple[str, str, Shareable]:
        """Dequeue, verify signature, deserialize.

        Returns ``(sender, topic, shareable)``.
        """
        with self._lock:
            if name not in self._queues:
                raise TransportError(f"unknown endpoint {name!r}")
            q = self._queues[name]
        try:
            message = q.get(timeout=timeout)
        except queue.Empty as error:
            raise TransportError(f"no message for {name!r} within {timeout}s") from error
        key = self.session_key(message.sender)
        if key is None or not hmac_verify(message.signed_payload(), message.signature, key):
            raise TransportError(
                f"signature check failed for message {message.topic!r} from {message.sender!r}")
        return message.sender, message.topic, _decode_shareable(message.body)

    def pending(self, name: str) -> int:
        with self._lock:
            return self._queues[name].qsize() if name in self._queues else 0
