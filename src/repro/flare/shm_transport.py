"""Shared-memory transport: fork-inherited queues + mmap'd tensor segments.

The fabric behind the persistent worker pool
(``SimulatorRunner(transport="shm")``): the parent process creates one
:class:`ShmMessageBus` *before* forking its client workers, so every process
shares the same :mod:`multiprocessing` queues (the control plane) and the
same ``/dev/shm`` segment directory (the data plane).

An envelope's metadata — sender, recipient, topic, signature, headers —
always travels through the recipient's queue.  The body goes one of two
ways:

- small bodies (<= ``inline_limit``, default 4 KiB: acks, heartbeats, stop
  fan-outs) ride inline in the queue record and get pickled like any other
  control traffic;
- tensor-sized bodies are written once into an mmap'd file under the
  segment directory and the queue record carries only ``(name, pad, len)``.

The pad is chosen so the DXO blob *inside* the body — the body is
``u32le header_len | shareable headers | DXO`` — starts at a 64-byte-aligned
segment offset.  mmap bases are page-aligned, so the RTC1 codec's own
64-byte internal alignment then holds in mapped memory too, and the
receiver's ``decode_tensors`` views are aligned exactly as they were in the
sender.  The receiver maps the segment read-only, unlinks it immediately
(the mapping keeps the pages alive; the directory stays empty) and hands
``receive`` a :class:`memoryview` — signature verification, shareable
decode and tensor decode all run in place over shared pages.  Per message
the tensor block is copied exactly once, from the sender's arrays into the
segment; the receiving process copies nothing.

Fault injection arms at the sender's dispatch (the same seam as the other
fabrics), so chaos plans make identical per-message decisions on shm.

One caveat inherited from ``fork``: each process owns a private copy of the
python-level bus state (session keys, dedup windows, metrics) from the
moment of the fork, exactly as if it were a separate node — only the queues
and the segment directory are shared.  Children must install their own
session keys after forking, mirroring the socket spoke.
"""

from __future__ import annotations

import itertools
import mmap
import multiprocessing
import os
import queue as queue_module
import shutil
import tempfile
import time
from typing import TYPE_CHECKING

from .codec import ALIGNMENT
from .faults import FaultInjector
from .transport import BaseTransport, Message, TransportError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultPlan

__all__ = ["ShmMessageBus", "DEFAULT_INLINE_LIMIT"]

# Bodies at or below this many bytes are pickled through the queue instead
# of earning a segment file: the mmap round-trip (create/truncate/map/unlink)
# costs more than copying a few KiB.
DEFAULT_INLINE_LIMIT = 4096


def _default_segment_root() -> str | None:
    """Prefer tmpfs so segments never touch a disk."""
    return "/dev/shm" if os.path.isdir("/dev/shm") else None


class ShmMessageBus(BaseTransport):
    """One transport fabric shared by a parent and its forked workers.

    Create the bus and :meth:`register_endpoint` **every** participant in
    the parent before forking — the per-endpoint queues must exist at fork
    time to be inherited.  After the fork each process sends and receives
    through its inherited copy; re-registering an endpoint in a child is an
    idempotent no-op on the shared queue.
    """

    def __init__(self, *, fault_plan: "FaultPlan | None" = None,
                 inline_limit: int = DEFAULT_INLINE_LIMIT,
                 segment_root: str | None = None,
                 start_method: str = "fork") -> None:
        super().__init__()
        self._injector = (FaultInjector(fault_plan, self.metrics)
                          if fault_plan is not None else None)
        self.fault_plan = fault_plan
        self.inline_limit = inline_limit
        self._ctx = multiprocessing.get_context(start_method)
        self._queues: dict[str, "multiprocessing.queues.Queue"] = {}
        self._dir = tempfile.mkdtemp(prefix="repro-shm-",
                                     dir=(segment_root
                                          if segment_root is not None
                                          else _default_segment_root()))
        self._owner_pid = os.getpid()
        self._seq = itertools.count()
        self._closed = False
        self._segments_written = self.metrics.counter("transport.shm_segments")
        self._segment_bytes = self.metrics.counter("transport.shm_segment_bytes")
        self._inline_bodies = self.metrics.counter("transport.shm_inline")

    @property
    def segment_dir(self) -> str:
        return self._dir

    # ------------------------------------------------------------------
    # fabric hooks
    # ------------------------------------------------------------------
    def _on_endpoint_registered(self, name: str) -> None:
        with self._lock:
            if name not in self._queues:
                if os.getpid() != self._owner_pid:
                    # a child can only use queues that existed at fork time;
                    # a brand-new queue would be invisible to everyone else
                    raise TransportError(
                        f"endpoint {name!r} was not registered before the "
                        "fork; register every participant in the parent")
                self._queues[name] = self._ctx.Queue()

    def _dispatch(self, message: Message) -> None:
        if self._closed:
            raise TransportError("shm bus is closed")
        copies = ([message] if self._injector is None
                  else self._injector.apply(message))
        for copy in copies:
            self._deliver(copy)

    def _deliver(self, message: Message) -> None:
        with self._lock:
            q = self._queues.get(message.recipient)
        if q is None:
            raise TransportError(f"unknown recipient {message.recipient!r}")
        body = message.body
        if len(body) <= self.inline_limit:
            self._inline_bodies.inc()
            record = (message.sender, message.recipient, message.topic,
                      message.signature, message.headers, bytes(body), None)
        else:
            record = (message.sender, message.recipient, message.topic,
                      message.signature, message.headers, None,
                      self._write_segment(body))
        q.put(record)
        self._count_delivery(message)

    def _next_message(self, name: str, remaining: float | None) -> Message | None:
        with self._lock:
            q = self._queues.get(name)
        if q is None:
            raise TransportError(f"unknown endpoint {name!r}")
        try:
            record = q.get(timeout=remaining)
        except queue_module.Empty:
            return None
        sender, recipient, topic, signature, headers, inline, segment = record
        body = inline if segment is None else self._read_segment(*segment)
        return Message(sender=sender, recipient=recipient, topic=topic,
                       body=body, signature=signature, headers=headers)

    def pending(self, name: str) -> int:
        with self._lock:
            q = self._queues.get(name)
        try:
            return q.qsize() if q is not None else 0
        except NotImplementedError:  # pragma: no cover - macOS qsize
            return 0

    # ------------------------------------------------------------------
    # segments
    # ------------------------------------------------------------------
    @staticmethod
    def _body_pad(body) -> int:
        """Segment offset that lands the body's DXO block on 64 bytes."""
        shareable_header_len = int.from_bytes(bytes(body[:4]), "little")
        return -(4 + shareable_header_len) % ALIGNMENT

    def _write_segment(self, body) -> tuple[str, int, int]:
        """Copy ``body`` into a fresh mmap'd file; returns (name, pad, len)."""
        pad = self._body_pad(body)
        total = pad + len(body)
        name = f"{os.getpid()}-{next(self._seq)}.seg"
        path = os.path.join(self._dir, name)
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        try:
            os.ftruncate(fd, total)
            with mmap.mmap(fd, total) as mapped:
                mapped[pad:total] = body
        except BaseException:
            os.close(fd)
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise
        os.close(fd)
        self._segments_written.inc()
        self._segment_bytes.inc(total)
        return name, pad, len(body)

    def _read_segment(self, name: str, pad: int, length: int) -> memoryview:
        """Map a segment read-only and unlink it; returns the body view.

        The returned memoryview (and every numpy view decoded from it)
        keeps the mapping — hence the pages — alive; once the last view is
        garbage-collected the segment memory is released.  Unlinking here
        means a crashed or slow consumer can never strand files: the
        directory only ever holds in-flight segments.
        """
        path = os.path.join(self._dir, name)
        fd = os.open(path, os.O_RDONLY)
        try:
            mapped = mmap.mmap(fd, pad + length, access=mmap.ACCESS_READ)
        finally:
            os.close(fd)
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - raced by close()
                pass
        return memoryview(mapped)[pad:pad + length]

    # ------------------------------------------------------------------
    def wait_for_endpoints(self, names: list[str], timeout: float = 30.0) -> None:
        """Block until every name has a queue (shm: registered pre-fork)."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                missing = [name for name in names if name not in self._queues]
            if not missing:
                return
            if time.monotonic() > deadline:
                raise TransportError(
                    f"endpoints never registered within {timeout}s: "
                    f"{', '.join(missing)}")
            time.sleep(0.01)

    def close(self) -> None:
        """Mark the bus closed; the creating process removes the segment dir."""
        if self._closed:
            return
        self._closed = True
        if os.getpid() == self._owner_pid:
            shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "ShmMessageBus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
