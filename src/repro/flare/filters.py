"""Privacy and compression filters applied to DXOs in transit.

NVFlare lets jobs declare filter chains on task data and task results; the
standard privacy filters are reproduced here: variable exclusion, Gaussian
noise (differential-privacy style), percentile clipping (NVFlare's
``PercentilePrivacy``) and global-norm clipping.  Filters transform *weight
diffs or weights leaving a client*, which is where the privacy boundary sits.

Alongside them lives the wire-compression family (cf. "Empowering Federated
Learning for Massive Models with NVIDIA FLARE", arXiv:2402.07792): delta
encoding against the round's received global model, float16 quantization
with server-side dequantize-on-aggregate, and top-k sparsification of
weight diffs.  :class:`CompressionConfig` composes them into matching
client/server chains; ``SimulatorRunner(compression="delta+fp16")`` wires
the whole thing up.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass

import numpy as np

from .constants import DataKind, ReservedKey
from .dxo import DXO, MetaKey
from .events import FLComponent
from .fl_context import FLContext

__all__ = ["DXOFilter", "ExcludeVars", "GaussianPrivacy", "PercentilePrivacy",
           "NormClipPrivacy", "FilterChain",
           "DeltaEncode", "DeltaDecode", "Float16Quantize", "Float16Dequantize",
           "TopKSparsify", "TopKDensify", "CompressionConfig"]


class DXOFilter(FLComponent):
    """Transform a DXO; return the (possibly replaced) DXO."""

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        raise NotImplementedError


class FilterChain(DXOFilter):
    """Apply a sequence of filters in order."""

    def __init__(self, filters: list[DXOFilter], name: str | None = None) -> None:
        super().__init__(name=name)
        self.filters = list(filters)

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        for item in self.filters:
            dxo = item.process(dxo, fl_ctx)
        return dxo


class ExcludeVars(DXOFilter):
    """Drop parameters whose names match any of the glob patterns.

    Typical use: keep site-specific heads local (``"head.*"``).
    """

    def __init__(self, patterns: list[str], name: str | None = None) -> None:
        super().__init__(name=name)
        if not patterns:
            raise ValueError("ExcludeVars needs at least one pattern")
        self.patterns = list(patterns)

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        kept = {key: value for key, value in dxo.data.items()
                if not any(fnmatch.fnmatch(key, pattern) for pattern in self.patterns)}
        dropped = len(dxo.data) - len(kept)
        if dropped:
            self.log_info("excluded %d variable(s)", dropped)
        return DXO(data_kind=dxo.data_kind, data=kept, meta=dict(dxo.meta))


class GaussianPrivacy(DXOFilter):
    """Add zero-mean Gaussian noise scaled to each tensor's value range."""

    def __init__(self, sigma0: float = 0.1, seed: int = 0, name: str | None = None) -> None:
        super().__init__(name=name)
        if sigma0 < 0:
            raise ValueError("sigma0 must be non-negative")
        self.sigma0 = sigma0
        self._rng = np.random.default_rng(seed)

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        if self.sigma0 == 0 or dxo.data_kind not in (DataKind.WEIGHTS, DataKind.WEIGHT_DIFF):
            return dxo
        noisy: dict[str, np.ndarray] = {}
        for key, value in dxo.data.items():
            value = np.asarray(value)
            spread = float(np.max(np.abs(value))) if value.size else 0.0
            noise = self._rng.normal(0.0, self.sigma0 * max(spread, 1e-12), size=value.shape)
            noisy[key] = (value + noise).astype(value.dtype)
        return DXO(data_kind=dxo.data_kind, data=noisy, meta=dict(dxo.meta))


class PercentilePrivacy(DXOFilter):
    """Clamp each tensor to the [percentile, 100-percentile] magnitude band.

    The NVFlare ``PercentilePrivacy`` filter: outlying updates — the most
    identifying ones — are truncated.
    """

    def __init__(self, percentile: float = 10.0, name: str | None = None) -> None:
        super().__init__(name=name)
        if not 0.0 <= percentile < 50.0:
            raise ValueError("percentile must be in [0, 50)")
        self.percentile = percentile

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        if dxo.data_kind not in (DataKind.WEIGHTS, DataKind.WEIGHT_DIFF):
            return dxo
        clipped: dict[str, np.ndarray] = {}
        for key, value in dxo.data.items():
            value = np.asarray(value)
            if value.size < 2 or value.dtype.kind not in "iuf":
                clipped[key] = value
                continue
            low = np.percentile(value, self.percentile)
            high = np.percentile(value, 100.0 - self.percentile)
            clipped[key] = np.clip(value, low, high).astype(value.dtype)
        return DXO(data_kind=dxo.data_kind, data=clipped, meta=dict(dxo.meta))


class NormClipPrivacy(DXOFilter):
    """Scale the whole update so its global L2 norm is at most ``max_norm``."""

    def __init__(self, max_norm: float, name: str | None = None) -> None:
        super().__init__(name=name)
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        self.max_norm = max_norm

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        if dxo.data_kind not in (DataKind.WEIGHTS, DataKind.WEIGHT_DIFF):
            return dxo
        total = 0.0
        for value in dxo.data.values():
            total += float(np.sum(np.asarray(value, dtype=np.float64) ** 2))
        norm = np.sqrt(total)
        if norm <= self.max_norm or norm == 0:
            return dxo
        scale = self.max_norm / norm
        scaled = {key: (np.asarray(value) * scale).astype(np.asarray(value).dtype)
                  for key, value in dxo.data.items()}
        return DXO(data_kind=dxo.data_kind, data=scaled, meta=dict(dxo.meta))


# ---------------------------------------------------------------------------
# wire-compression filters
# ---------------------------------------------------------------------------
_TOPK_IDX = "@topk_idx"
_TOPK_VAL = "@topk_val"


def diff_tensors(value, reference) -> np.ndarray:
    """``value - reference`` that also works for bool tensors (which have no
    subtraction): those diff as int8 in {-1, 0, 1} and the apply side casts
    the sum back to the base dtype."""
    value = np.asarray(value)
    reference = np.asarray(reference)
    if value.dtype.kind == "b":
        return value.astype(np.int8) - reference.astype(np.int8)
    return value - reference


class DeltaEncode(DXOFilter):
    """Turn a client's WEIGHTS result into a WEIGHT_DIFF against the round's
    received global model.

    The client stashes the (decompressed) task payload under
    ``ReservedKey.GLOBAL_MODEL`` in its FLContext before training; this
    filter subtracts it on the way out, so only the local update — small in
    magnitude, friendlier to quantization and sparsification — crosses the
    wire.  Keys absent from the base (e.g. dropped by :class:`ExcludeVars`
    upstream) are dropped with a warning, matching the learners' own
    ``send_diff`` behaviour.  Results that are already diffs, metrics, or
    rounds with no recorded base pass through untouched.
    """

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        if dxo.data_kind != DataKind.WEIGHTS:
            return dxo
        base = fl_ctx.get_prop(ReservedKey.GLOBAL_MODEL)
        if not base:
            self.log_warning("no received global model recorded; sending full weights")
            return dxo
        diff: dict[str, np.ndarray] = {}
        dropped = 0
        for key, value in dxo.data.items():
            value = np.asarray(value)
            reference = base.get(key)
            if reference is None or np.asarray(reference).shape != value.shape:
                dropped += 1
                continue
            diff[key] = diff_tensors(value, reference)
        if dropped:
            self.log_warning("delta-encode dropped %d variable(s) with no matching base",
                             dropped)
        return DXO(data_kind=DataKind.WEIGHT_DIFF, data=diff, meta=dict(dxo.meta))


class DeltaDecode(DXOFilter):
    """Client-side reconstruction of delta-broadcast global models.

    The controller broadcasts the full global model once, then versioned
    WEIGHT_DIFF payloads against the last model this client acknowledged
    (see ``ScatterAndGather``'s downlink bookkeeping).  One instance per
    client: it caches the reconstructed model between rounds.  A diff whose
    base version does not match the cache (e.g. a delayed, reordered task
    off a faulty bus) raises :class:`ValueError`, which the client surfaces
    as ``BAD_TASK_DATA`` — the controller then falls back to a full
    broadcast for this site.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._cache: dict[str, np.ndarray] | None = None
        self._version: int | None = None

    @property
    def cached_version(self) -> int | None:
        return self._version

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        version = dxo.get_meta_prop(MetaKey.MODEL_VERSION)
        if dxo.data_kind == DataKind.WEIGHTS:
            if version is not None:
                # own the arrays: decoded payloads are views into the blob
                self._cache = {key: np.array(value, copy=True)
                               for key, value in dxo.data.items()}
                self._version = int(version)
            return dxo
        base_version = dxo.get_meta_prop(MetaKey.BASE_VERSION)
        if dxo.data_kind != DataKind.WEIGHT_DIFF or base_version is None:
            return dxo
        if self._cache is None or self._version != int(base_version):
            raise ValueError(
                f"delta task against model version {base_version} but this "
                f"client holds {self._version}; need a full broadcast")
        if set(dxo.data) != set(self._cache):
            raise ValueError("delta task names different parameters than the "
                             "cached global model")
        # cast back to the cached dtype: diffs may arrive wider (float64
        # aggregates, int8 bool-diffs) and must not promote the model
        restored = {key: (self._cache[key] + np.asarray(value))
                    .astype(self._cache[key].dtype, copy=False)
                    for key, value in dxo.data.items()}
        self._cache = restored
        self._version = int(version) if version is not None else self._version
        meta = {key: value for key, value in dxo.meta.items()
                if key not in (MetaKey.MODEL_VERSION, MetaKey.BASE_VERSION)}
        meta[MetaKey.MODEL_VERSION] = self._version
        return DXO(data_kind=DataKind.WEIGHTS, data=restored, meta=meta)


class Float16Quantize(DXOFilter):
    """Cast float32/float64 tensors to float16 for transport.

    Original dtypes are recorded in ``MetaKey.FP16_DTYPES`` so
    :class:`Float16Dequantize` restores them exactly on the other side
    (value error is bounded by fp16 rounding: ~1e-3 relative).
    """

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        if dxo.data_kind not in (DataKind.WEIGHTS, DataKind.WEIGHT_DIFF):
            return dxo
        quantized: dict[str, np.ndarray] = {}
        original_dtypes: dict[str, str] = {}
        for key, value in dxo.data.items():
            value = np.asarray(value)
            if value.dtype in (np.float32, np.float64):
                original_dtypes[key] = value.dtype.str
                value = value.astype(np.float16)
            quantized[key] = value
        if not original_dtypes:
            return dxo
        meta = dict(dxo.meta)
        meta[MetaKey.FP16_DTYPES] = {**meta.get(MetaKey.FP16_DTYPES, {}),
                                     **original_dtypes}
        return DXO(data_kind=dxo.data_kind, data=quantized, meta=meta)


class Float16Dequantize(DXOFilter):
    """Restore tensors quantized by :class:`Float16Quantize` to their
    original dtype (an exact upcast) before aggregation or training."""

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        recorded = dxo.get_meta_prop(MetaKey.FP16_DTYPES)
        if not recorded:
            return dxo
        restored: dict[str, np.ndarray] = {}
        for key, value in dxo.data.items():
            if key in recorded:
                value = np.asarray(value).astype(np.dtype(recorded[key]))
            restored[key] = value
        meta = {key: value for key, value in dxo.meta.items()
                if key != MetaKey.FP16_DTYPES}
        return DXO(data_kind=dxo.data_kind, data=restored, meta=meta)


class TopKSparsify(DXOFilter):
    """Keep only the ``ratio`` largest-magnitude entries of each weight diff.

    Each sparsified tensor is replaced by an index/value pair
    (``<key>@topk_idx`` / ``<key>@topk_val``); shape and dtype land in
    ``MetaKey.TOPK_SPEC`` so :class:`TopKDensify` can zero-fill the rest.
    Only WEIGHT_DIFF payloads are touched — truncating full weights would
    destroy the model — and tensors below ``min_size`` stay dense (the
    index overhead would outweigh the saving).
    """

    def __init__(self, ratio: float = 0.1, min_size: int = 256,
                 name: str | None = None) -> None:
        super().__init__(name=name)
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        if min_size < 1:
            raise ValueError("min_size must be positive")
        self.ratio = ratio
        self.min_size = min_size

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        if dxo.data_kind != DataKind.WEIGHT_DIFF:
            return dxo
        sparse: dict[str, np.ndarray] = {}
        spec: dict[str, dict] = {}
        for key, value in dxo.data.items():
            value = np.asarray(value)
            if value.size < self.min_size or value.dtype.kind != "f":
                sparse[key] = value
                continue
            k = max(1, int(round(value.size * self.ratio)))
            flat = value.reshape(-1)
            indices = np.argpartition(np.abs(flat), flat.size - k)[flat.size - k:]
            indices = np.sort(indices).astype(np.uint32 if flat.size < 2 ** 32
                                              else np.int64)
            sparse[key + _TOPK_IDX] = indices
            sparse[key + _TOPK_VAL] = flat[indices]
            spec[key] = {"shape": list(value.shape), "dtype": value.dtype.str}
        if not spec:
            return dxo
        meta = dict(dxo.meta)
        meta[MetaKey.TOPK_SPEC] = {**meta.get(MetaKey.TOPK_SPEC, {}), **spec}
        return DXO(data_kind=dxo.data_kind, data=sparse, meta=meta)


class TopKDensify(DXOFilter):
    """Restore tensors sparsified by :class:`TopKSparsify` to dense arrays
    (kept entries exact, everything else zero)."""

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        spec = dxo.get_meta_prop(MetaKey.TOPK_SPEC)
        if not spec:
            return dxo
        dense: dict[str, np.ndarray] = {}
        for key, value in dxo.data.items():
            if key.endswith(_TOPK_IDX) or key.endswith(_TOPK_VAL):
                continue
            dense[key] = value
        for key, entry in spec.items():
            indices = dxo.data.get(key + _TOPK_IDX)
            values = dxo.data.get(key + _TOPK_VAL)
            if indices is None or values is None:
                raise ValueError(f"top-k payload for {key!r} is missing its "
                                 "index or value tensor")
            restored = np.zeros(int(np.prod(entry["shape"], dtype=np.int64)),
                                dtype=np.dtype(entry["dtype"]))
            restored[np.asarray(indices).astype(np.int64)] = \
                np.asarray(values).astype(restored.dtype)
            dense[key] = restored.reshape(entry["shape"])
        meta = {key: value for key, value in dxo.meta.items()
                if key != MetaKey.TOPK_SPEC}
        return DXO(data_kind=dxo.data_kind, data=dense, meta=meta)


@dataclass(frozen=True)
class CompressionConfig:
    """One knob for the whole wire-compression chain.

    ``delta``
        Ship updates as WEIGHT_DIFF: clients diff against the received
        global model, and (unless ``downlink_delta`` is off) the controller
        broadcasts versioned diffs of the global model to every site that
        acknowledged the previous one.
    ``float16``
        Quantize floating tensors to fp16 on the wire, both directions;
        the receiving side dequantizes before use.  When combined with
        delta the controller also rounds its canonical global model
        through fp16 so server and clients agree on the base bit-exactly.
    ``top_k``
        Optionally keep only this fraction of each uplink weight diff
        (largest magnitudes); the server zero-fills before aggregating.
    ``deflate``
        Add the codec's lossless shuffle+deflate transform on top.

    Build from a spec string: ``CompressionConfig.from_spec("delta+fp16")``,
    tokens ``delta``, ``fp16``, ``topk`` / ``topk:0.05``, ``deflate``,
    ``no-downlink-delta``.
    """

    delta: bool = True
    float16: bool = True
    top_k: float | None = None
    downlink_delta: bool = True
    deflate: bool = False

    @classmethod
    def from_spec(cls, spec: "str | CompressionConfig | None") -> "CompressionConfig | None":
        if spec is None or isinstance(spec, cls):
            return spec
        delta = float16 = False
        top_k: float | None = None
        downlink_delta, deflate = True, False
        for token in str(spec).lower().split("+"):
            token = token.strip()
            if token == "delta":
                delta = True
            elif token in ("fp16", "float16"):
                float16 = True
            elif token.startswith("topk"):
                _, _, ratio = token.partition(":")
                top_k = float(ratio) if ratio else 0.1
            elif token == "deflate":
                deflate = True
            elif token == "no-downlink-delta":
                downlink_delta = False
            elif token:
                raise ValueError(f"unknown compression token {token!r} in {spec!r}")
        if not (delta or float16 or top_k or deflate):
            raise ValueError(f"compression spec {spec!r} enables nothing")
        return cls(delta=delta, float16=float16, top_k=top_k,
                   downlink_delta=downlink_delta, deflate=deflate)

    @property
    def wire_codec(self) -> str:
        return "raw+deflate" if self.deflate else "raw"

    # ------------------------------------------------------------------
    # matching filter chains (fresh instances per call: DeltaDecode is
    # stateful and must not be shared between clients)
    # ------------------------------------------------------------------
    def client_task_filters(self) -> list[DXOFilter]:
        """Applied by a client to incoming task data (downlink decode)."""
        chain: list[DXOFilter] = []
        if self.float16:
            chain.append(Float16Dequantize())
        if self.delta and self.downlink_delta:
            if self.top_k:
                # the controller sparsifies downlink deltas with error
                # feedback; restore them to dense before reconstruction
                chain.append(TopKDensify())
            chain.append(DeltaDecode())
        return chain

    def client_result_filters(self) -> list[DXOFilter]:
        """Applied by a client to outgoing results (uplink encode)."""
        chain: list[DXOFilter] = []
        if self.delta:
            chain.append(DeltaEncode())
        if self.top_k:
            chain.append(TopKSparsify(ratio=self.top_k))
        if self.float16:
            chain.append(Float16Quantize())
        return chain

    def server_result_filters(self) -> list[DXOFilter]:
        """Applied by the controller to each reply before aggregation."""
        chain: list[DXOFilter] = []
        if self.float16:
            chain.append(Float16Dequantize())
        if self.top_k:
            chain.append(TopKDensify())
        return chain

    def downlink_task_filters(self) -> list[DXOFilter]:
        """Applied by the controller to broadcast payloads (downlink encode)."""
        return [Float16Quantize()] if self.float16 else []

    def adapt_aggregator(self, aggregator) -> None:
        """Point a WEIGHTS-expecting aggregator at WEIGHT_DIFF when delta
        encoding rewrites the uplink data kind."""
        if self.delta and getattr(aggregator, "expected_data_kind", None) == DataKind.WEIGHTS:
            aggregator.expected_data_kind = DataKind.WEIGHT_DIFF
