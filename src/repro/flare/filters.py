"""Privacy and hygiene filters applied to DXOs in transit.

NVFlare lets jobs declare filter chains on task data and task results; the
standard privacy filters are reproduced here: variable exclusion, Gaussian
noise (differential-privacy style), percentile clipping (NVFlare's
``PercentilePrivacy``) and global-norm clipping.  Filters transform *weight
diffs or weights leaving a client*, which is where the privacy boundary sits.
"""

from __future__ import annotations

import fnmatch

import numpy as np

from .constants import DataKind
from .dxo import DXO
from .events import FLComponent
from .fl_context import FLContext

__all__ = ["DXOFilter", "ExcludeVars", "GaussianPrivacy", "PercentilePrivacy",
           "NormClipPrivacy", "FilterChain"]


class DXOFilter(FLComponent):
    """Transform a DXO; return the (possibly replaced) DXO."""

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        raise NotImplementedError


class FilterChain(DXOFilter):
    """Apply a sequence of filters in order."""

    def __init__(self, filters: list[DXOFilter], name: str | None = None) -> None:
        super().__init__(name=name)
        self.filters = list(filters)

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        for item in self.filters:
            dxo = item.process(dxo, fl_ctx)
        return dxo


class ExcludeVars(DXOFilter):
    """Drop parameters whose names match any of the glob patterns.

    Typical use: keep site-specific heads local (``"head.*"``).
    """

    def __init__(self, patterns: list[str], name: str | None = None) -> None:
        super().__init__(name=name)
        if not patterns:
            raise ValueError("ExcludeVars needs at least one pattern")
        self.patterns = list(patterns)

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        kept = {key: value for key, value in dxo.data.items()
                if not any(fnmatch.fnmatch(key, pattern) for pattern in self.patterns)}
        dropped = len(dxo.data) - len(kept)
        if dropped:
            self.log_info("excluded %d variable(s)", dropped)
        return DXO(data_kind=dxo.data_kind, data=kept, meta=dict(dxo.meta))


class GaussianPrivacy(DXOFilter):
    """Add zero-mean Gaussian noise scaled to each tensor's value range."""

    def __init__(self, sigma0: float = 0.1, seed: int = 0, name: str | None = None) -> None:
        super().__init__(name=name)
        if sigma0 < 0:
            raise ValueError("sigma0 must be non-negative")
        self.sigma0 = sigma0
        self._rng = np.random.default_rng(seed)

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        if self.sigma0 == 0 or dxo.data_kind not in (DataKind.WEIGHTS, DataKind.WEIGHT_DIFF):
            return dxo
        noisy: dict[str, np.ndarray] = {}
        for key, value in dxo.data.items():
            value = np.asarray(value)
            spread = float(np.max(np.abs(value))) if value.size else 0.0
            noise = self._rng.normal(0.0, self.sigma0 * max(spread, 1e-12), size=value.shape)
            noisy[key] = (value + noise).astype(value.dtype)
        return DXO(data_kind=dxo.data_kind, data=noisy, meta=dict(dxo.meta))


class PercentilePrivacy(DXOFilter):
    """Clamp each tensor to the [percentile, 100-percentile] magnitude band.

    The NVFlare ``PercentilePrivacy`` filter: outlying updates — the most
    identifying ones — are truncated.
    """

    def __init__(self, percentile: float = 10.0, name: str | None = None) -> None:
        super().__init__(name=name)
        if not 0.0 <= percentile < 50.0:
            raise ValueError("percentile must be in [0, 50)")
        self.percentile = percentile

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        if dxo.data_kind not in (DataKind.WEIGHTS, DataKind.WEIGHT_DIFF):
            return dxo
        clipped: dict[str, np.ndarray] = {}
        for key, value in dxo.data.items():
            value = np.asarray(value)
            if value.size < 2:
                clipped[key] = value
                continue
            low = np.percentile(value, self.percentile)
            high = np.percentile(value, 100.0 - self.percentile)
            clipped[key] = np.clip(value, low, high).astype(value.dtype)
        return DXO(data_kind=dxo.data_kind, data=clipped, meta=dict(dxo.meta))


class NormClipPrivacy(DXOFilter):
    """Scale the whole update so its global L2 norm is at most ``max_norm``."""

    def __init__(self, max_norm: float, name: str | None = None) -> None:
        super().__init__(name=name)
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        self.max_norm = max_norm

    def process(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        if dxo.data_kind not in (DataKind.WEIGHTS, DataKind.WEIGHT_DIFF):
            return dxo
        total = 0.0
        for value in dxo.data.values():
            total += float(np.sum(np.asarray(value, dtype=np.float64) ** 2))
        norm = np.sqrt(total)
        if norm <= self.max_norm or norm == 0:
            return dxo
        scale = self.max_norm / norm
        scaled = {key: (np.asarray(value) * scale).astype(np.asarray(value).dtype)
                  for key, value in dxo.data.items()}
        return DXO(data_kind=dxo.data_kind, data=scaled, meta=dict(dxo.meta))
