"""Job configuration: the declarative recipe a simulator run executes.

Mirrors an NVFlare job folder (config_fed_server.json / config_fed_client
.json): which workflow, how many rounds, which aggregator, which filters —
plus a learner factory that plays the role of the client executor config.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .aggregators import Aggregator, InTimeAccumulateWeightedAggregator
from .constants import DataKind
from .filters import CompressionConfig, DXOFilter
from .learner import Learner
from .sampling import ClientSampler

__all__ = ["FLJob"]

LearnerFactory = Callable[[str], Learner]
Evaluator = Callable[[dict[str, np.ndarray]], dict[str, float]]


@dataclass
class FLJob:
    """Everything needed to run one federated job.

    Parameters
    ----------
    name:
        Job identifier (used for the run directory).
    initial_weights:
        The round-0 global model state dict.
    learner_factory:
        ``client_name -> Learner``; called once per site at registration.
    num_rounds:
        E communication rounds.
    evaluator:
        Optional server-side validation of each aggregated model.
    aggregator_factory:
        Builds the server aggregator (default: weighted FedAvg on WEIGHTS).
    task_result_filters / server_result_filters:
        Client-side and server-side DXO filter chains.
    min_clients:
        Minimum usable results per round (the quorum).
    result_timeout:
        Seconds the server waits for a round's results before aggregating
        whatever arrived.
    max_failed_rounds:
        Consecutive under-quorum rounds tolerated before the run aborts.
    compression:
        Wire-compression chain for the whole job: a
        :class:`CompressionConfig`, a spec string like ``"delta+fp16"``, or
        ``None`` (full weights both ways).  ``SimulatorRunner`` installs the
        matching client and server filter chains and switches the wire
        codec accordingly; its own ``compression=`` argument overrides this.
    transport:
        Which fabric carries the job's messages: ``"memory"`` (threaded
        clients on the in-process bus), ``"socket"`` (one OS process per
        client over TCP loopback), ``"shm"`` (one OS process per client
        over fork-inherited shared memory — the persistent worker pool),
        or ``None`` to let ``SimulatorRunner`` decide (its own
        ``transport=`` argument overrides this).
    mode:
        ``"sync"`` runs the round-barrier :class:`ScatterAndGather`
        workflow; ``"async"`` runs the FedBuff-style buffered
        :class:`AsyncScatterAndGather`, where ``num_rounds`` counts global
        commits and the ``buffer_size`` / ``concurrency`` /
        ``staleness_alpha`` / ``max_staleness`` knobs below apply.
        Async mode is incompatible with ``compression``.
    clients_per_round:
        Sync mode: how many sites to task per round (``None`` = all).
    sampler:
        Cohort-selection policy: a :class:`~repro.flare.sampling
        .ClientSampler` instance or a spec string (``"uniform"``,
        ``"weighted"``, ``"stratified[:n]"``); ``None`` = seeded uniform.
    site_sizes:
        Per-site data sizes for the weighted/stratified samplers (sites
        not listed count as size 1).
    sampling_seed:
        Seed for spec-string samplers (ignored when ``sampler`` is an
        instance, which carries its own seed).
    buffer_size / concurrency / staleness_alpha / max_staleness:
        Async-mode knobs, passed to :class:`AsyncScatterAndGather`.
    """

    name: str
    initial_weights: dict[str, np.ndarray]
    learner_factory: LearnerFactory
    num_rounds: int = 10
    evaluator: Evaluator | None = None
    aggregator_factory: Callable[[], Aggregator] = field(
        default=lambda: InTimeAccumulateWeightedAggregator(
            expected_data_kind=DataKind.WEIGHTS))
    task_result_filters: list[DXOFilter] = field(default_factory=list)
    server_result_filters: list[DXOFilter] = field(default_factory=list)
    min_clients: int | None = None
    result_timeout: float = 600.0
    max_failed_rounds: int = 0
    compression: CompressionConfig | str | None = None
    transport: str | None = None
    mode: str = "sync"
    clients_per_round: int | None = None
    sampler: ClientSampler | str | None = None
    site_sizes: dict[str, float] | None = None
    sampling_seed: int = 0
    buffer_size: int = 4
    concurrency: int | None = None
    staleness_alpha: float = 0.5
    max_staleness: int | None = None

    def __post_init__(self) -> None:
        self.compression = CompressionConfig.from_spec(self.compression)
        if self.transport not in (None, "memory", "socket", "shm"):
            raise ValueError("transport must be 'memory', 'socket' or "
                             f"'shm', got {self.transport!r}")
        if self.mode not in ("sync", "async"):
            raise ValueError(f"mode must be 'sync' or 'async', got {self.mode!r}")
        if self.mode == "async" and self.compression is not None:
            raise ValueError("async mode is incompatible with wire compression "
                             "(the buffered fold has no per-round delta baseline)")
        if self.buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if self.num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if not self.initial_weights:
            raise ValueError("initial_weights must be non-empty")
        if self.result_timeout <= 0:
            raise ValueError("result_timeout must be positive")
        if self.max_failed_rounds < 0:
            raise ValueError("max_failed_rounds must be non-negative")
