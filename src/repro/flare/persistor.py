"""Model persistor: checkpoints the global model each round, tracks the best.

Matches the paper's Fig. 3 log stage "Start/End persist model on server."
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..autograd.serialization import load_state_dict, save_state_dict
from .events import FLComponent
from .fl_context import FLContext

__all__ = ["ModelPersistor"]


class ModelPersistor(FLComponent):
    """Writes global-model checkpoints under a run directory."""

    def __init__(self, run_dir: str | Path, name: str | None = None) -> None:
        super().__init__(name=name)
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.best_metric: float | None = None
        self.best_path: Path | None = None
        self.last_path: Path | None = None

    def save(self, weights: dict[str, np.ndarray], fl_ctx: FLContext,
             metric: float | None = None) -> Path:
        """Persist the latest model; also update the best checkpoint."""
        round_number = fl_ctx.get_prop("current_round", 0)
        self.log_info("Start persist model on server.")
        self.last_path = save_state_dict(weights, self.run_dir / "FL_global_model")
        if metric is not None and (self.best_metric is None or metric > self.best_metric):
            self.best_metric = metric
            self.best_path = save_state_dict(weights, self.run_dir / "best_FL_global_model")
            self.log_info("new best global model at round %s: metric=%.4f",
                          round_number, metric)
        self.log_info("End persist model on server.")
        return self.last_path

    def load_last(self) -> dict[str, np.ndarray]:
        if self.last_path is None:
            raise FileNotFoundError("no checkpoint saved yet")
        return dict(load_state_dict(self.last_path))

    def load_best(self) -> dict[str, np.ndarray]:
        path = self.best_path or self.last_path
        if path is None:
            raise FileNotFoundError("no checkpoint saved yet")
        return dict(load_state_dict(path))
