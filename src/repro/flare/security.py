"""Security substrate: RSA identities, certificates and message signing.

NVFlare provisioning issues every participant a certificate signed by the
project root CA; the server authenticates joining clients against it and the
paper's Fig. 3 shows the resulting "Token & SSH Protocols" handshake.  No
crypto library is available offline, so this module implements the minimum
from first principles:

- probabilistic prime generation (Miller-Rabin),
- textbook RSA sign/verify over SHA-256 digests,
- a tiny certificate format (JSON payload + CA signature),
- HMAC-SHA256 session signing for post-handshake traffic.

This is an *educational* implementation — deterministic padding, no
side-channel hardening — which is exactly the right trade-off for a
simulator whose goal is to exercise the protocol shape.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RSAKeyPair",
    "generate_keypair",
    "sign",
    "verify",
    "Certificate",
    "CertificateAuthority",
    "hmac_sign",
    "hmac_sign_parts",
    "hmac_verify",
    "hmac_verify_parts",
]

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]


def _is_probable_prime(n: int, rng: np.random.Generator, rounds: int = 40) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + int(rng.integers(0, 1 << 62)) % (n - 4)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: np.random.Generator) -> int:
    """A random prime with exactly ``bits`` bits."""
    while True:
        words = [int(rng.integers(0, 1 << 32)) for _ in range((bits + 31) // 32)]
        candidate = 0
        for word in words:
            candidate = (candidate << 32) | word
        candidate |= (1 << (bits - 1)) | 1  # top bit + odd
        candidate &= (1 << bits) - 1
        if _is_probable_prime(candidate, rng):
            return candidate


def _modinv(a: int, m: int) -> int:
    g, x = _extended_gcd(a, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    old_r, r = a, b
    old_x, x = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
    return old_r, old_x


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA key pair; ``(n, e)`` is public, ``d`` private."""

    n: int
    e: int
    d: int

    @property
    def public(self) -> tuple[int, int]:
        return (self.n, self.e)


def generate_keypair(bits: int = 1024, seed: int | None = None) -> RSAKeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus."""
    if bits < 128:
        raise ValueError("modulus below 128 bits cannot hold a SHA-256 digest")
    rng = np.random.default_rng(seed)
    e = 65537
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        if n.bit_length() < bits - 1:
            continue
        return RSAKeyPair(n=n, e=e, d=_modinv(e, phi))


def _digest_int(message: bytes, modulus: int) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big") % modulus


def sign(message: bytes, key: RSAKeyPair) -> int:
    """RSA signature over the SHA-256 digest of ``message``."""
    return pow(_digest_int(message, key.n), key.d, key.n)


def verify(message: bytes, signature: int, public: tuple[int, int]) -> bool:
    """Check an RSA signature against a public key."""
    n, e = public
    return pow(signature, e, n) == _digest_int(message, n)


# ---------------------------------------------------------------------------
# certificates
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Certificate:
    """A CA-signed binding of (name, org, role) to a public key."""

    subject: str
    org: str
    role: str
    public_key: tuple[int, int]
    signature: int  # by the CA over payload_bytes()

    def payload_bytes(self) -> bytes:
        return json.dumps({
            "subject": self.subject, "org": self.org, "role": self.role,
            "n": str(self.public_key[0]), "e": self.public_key[1],
        }, sort_keys=True).encode("utf-8")


class CertificateAuthority:
    """The project root CA: issues and verifies participant certificates."""

    def __init__(self, name: str = "root-ca", bits: int = 1024,
                 seed: int | None = None) -> None:
        self.name = name
        self._key = generate_keypair(bits=bits, seed=seed)

    @property
    def public_key(self) -> tuple[int, int]:
        return self._key.public

    def issue(self, subject: str, org: str, role: str,
              public_key: tuple[int, int]) -> Certificate:
        unsigned = Certificate(subject=subject, org=org, role=role,
                               public_key=public_key, signature=0)
        signature = sign(unsigned.payload_bytes(), self._key)
        return Certificate(subject=subject, org=org, role=role,
                           public_key=public_key, signature=signature)

    def verify_certificate(self, cert: Certificate) -> bool:
        return verify(cert.payload_bytes(), cert.signature, self.public_key)


# ---------------------------------------------------------------------------
# session-layer signing
# ---------------------------------------------------------------------------
def hmac_sign(payload: bytes, session_key: bytes) -> str:
    """HMAC-SHA256 tag used on every post-handshake message."""
    return hmac.new(session_key, payload, hashlib.sha256).hexdigest()


def hmac_sign_parts(parts, session_key: bytes) -> str:
    """HMAC-SHA256 over concatenated buffer ``parts`` without joining them.

    Equivalent to ``hmac_sign(b"".join(parts), key)`` but feeds each part —
    bytes or memoryview — into the digest incrementally, so a message body
    living in shared memory is hashed in place instead of being copied into
    a throwaway concatenation.
    """
    mac = hmac.new(session_key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(part)
    return mac.hexdigest()


def hmac_verify(payload: bytes, tag: str, session_key: bytes) -> bool:
    return hmac.compare_digest(hmac_sign(payload, session_key), tag)


def hmac_verify_parts(parts, tag: str, session_key: bytes) -> bool:
    return hmac.compare_digest(hmac_sign_parts(parts, session_key), tag)
