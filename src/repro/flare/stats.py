"""Run statistics: per-round and per-client metrics plus timings.

The source of the numbers the paper reports: Table III accuracies, Fig. 2
loss curves and the "12.7 sec/local epoch" observation all come out of a
structure like this.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..obs.health import Alert

__all__ = ["ClientRoundRecord", "RoundRecord", "RunStats"]


@dataclass
class ClientRoundRecord:
    """One client's contribution to one round."""

    client: str
    round_number: int
    train_loss: float
    valid_acc: float
    num_steps: int
    seconds: float
    # Async aggregation only: how many commits the global model advanced
    # between this update's dispatch and its fold (0 in synchronous rounds).
    staleness: int = 0


@dataclass
class RoundRecord:
    """Aggregated view of one federated round."""

    round_number: int
    client_records: list[ClientRoundRecord] = field(default_factory=list)
    global_metrics: dict[str, float] = field(default_factory=dict)
    seconds: float = 0.0
    # Encoded bytes this round put on the bus (broadcasts + results).
    bytes_on_wire: int = 0
    # Sites that were tasked but contributed no usable update (crashed,
    # unreachable, timed out or returned a non-OK code).
    dropped_clients: list[str] = field(default_factory=list)
    # False when the round finished under quorum and aggregation was skipped.
    quorum_met: bool = True
    # Sites excluded from aggregation this round by the health monitor's
    # quarantine policy (they still trained and were still diagnosed).
    quarantined_clients: list[str] = field(default_factory=list)


@dataclass
class RunStats:
    """Everything measured during a run."""

    rounds: list[RoundRecord] = field(default_factory=list)
    messages_delivered: int = 0
    bytes_delivered: int = 0
    # Resend attempts made by all participants (server broadcasts + client
    # result submissions) over the whole run.
    retries: int = 0
    # Receives skipped by message-id dedup (resends and replayed duplicates).
    duplicates_dropped: int = 0
    # Wire-codec accounting for the run: tensor payload bytes before
    # encoding vs bytes actually produced for the wire (all codecs, both
    # directions).  With compression on, encoded < raw.
    wire_bytes_raw: int = 0
    wire_bytes_encoded: int = 0
    # High-water mark of simultaneously-materialized decoded client updates
    # (in-flight folds + aggregator stashes) — the massive-cohort memory
    # guarantee asserts this stays O(buffer/arity), never O(cohort).
    peak_materialized_updates: int = 0
    # High-water mark of the parent process's resident set (bytes) as seen
    # by the resource monitor (repro.obs.sysmon); 0 when sysmon was off.
    # A registry dimension: ``runs diff`` compares it across runs.
    peak_rss_bytes: int = 0
    # Paths of the telemetry artifacts a TelemetrySession wrote for this run
    # (keys "metrics"/"trace"/"profile"/"health"), empty when telemetry was
    # off.
    telemetry: dict[str, str] = field(default_factory=dict)
    # Severity-ranked anomaly verdicts from the health monitor, in round
    # order (empty when health monitoring was off).
    alerts: list[Alert] = field(default_factory=list)

    def add_round(self, record: RoundRecord) -> None:
        self.rounds.append(record)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def dropped_clients(self) -> list[str]:
        """Every site that missed at least one round, sorted."""
        return sorted({client for record in self.rounds
                       for client in record.dropped_clients})

    @property
    def quarantined_clients(self) -> list[str]:
        """Every site the health monitor quarantined at least once, sorted."""
        return sorted({client for record in self.rounds
                       for client in record.quarantined_clients})

    @property
    def failed_rounds(self) -> int:
        """Rounds that finished under quorum (aggregation skipped)."""
        return sum(1 for record in self.rounds if not record.quorum_met)

    def _metric_history(self, key: str) -> list[float]:
        """Per-round values of ``key``; KeyError (naming the recorded keys)
        when no round ever reported it."""
        history = [r.global_metrics[key] for r in self.rounds
                   if key in r.global_metrics]
        if not history:
            available = sorted({k for r in self.rounds for k in r.global_metrics})
            raise KeyError(f"no global metric {key!r} recorded "
                           f"(available: {available or 'none'})")
        return history

    def global_metric_history(self, key: str) -> list[float]:
        """The per-round trajectory of a server-side metric."""
        return self._metric_history(key)

    def best_global_metric(self, key: str, mode: str = "max") -> float:
        """The best value of ``key`` across rounds.

        ``mode`` says which direction is better: ``"max"`` for scores like
        accuracy/AUC, ``"min"`` for losses and perplexities.
        """
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        history = self._metric_history(key)
        return max(history) if mode == "max" else min(history)

    def final_global_metric(self, key: str) -> float:
        return self._metric_history(key)[-1]

    def mean_seconds_per_local_epoch(self) -> float:
        """Average wall-clock per client local-train call (cf. "12.7 sec")."""
        seconds = [c.seconds for r in self.rounds for c in r.client_records]
        return float(np.mean(seconds)) if seconds else 0.0

    def client_metric_history(self, client: str) -> list[ClientRoundRecord]:
        return [c for r in self.rounds for c in r.client_records if c.client == client]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dump of everything measured."""
        payload = {
            "messages_delivered": self.messages_delivered,
            "bytes_delivered": self.bytes_delivered,
            "retries": self.retries,
            "duplicates_dropped": self.duplicates_dropped,
            "wire_bytes_raw": self.wire_bytes_raw,
            "wire_bytes_encoded": self.wire_bytes_encoded,
            "peak_materialized_updates": self.peak_materialized_updates,
            "peak_rss_bytes": self.peak_rss_bytes,
            "dropped_clients": self.dropped_clients,
            "failed_rounds": self.failed_rounds,
            "rounds": [asdict(record) for record in self.rounds],
        }
        if self.telemetry:
            payload["telemetry"] = dict(self.telemetry)
        if self.alerts:
            payload["alerts"] = [alert.to_dict() for alert in self.alerts]
        return payload

    def save_json(self, path: str | Path) -> Path:
        """Write the stats to ``path`` as pretty-printed JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, default=float))
        return path

    @classmethod
    def from_dict(cls, payload: dict) -> "RunStats":
        stats = cls(messages_delivered=payload.get("messages_delivered", 0),
                    bytes_delivered=payload.get("bytes_delivered", 0),
                    retries=payload.get("retries", 0),
                    duplicates_dropped=payload.get("duplicates_dropped", 0),
                    wire_bytes_raw=payload.get("wire_bytes_raw", 0),
                    wire_bytes_encoded=payload.get("wire_bytes_encoded", 0),
                    peak_materialized_updates=payload.get(
                        "peak_materialized_updates", 0),
                    peak_rss_bytes=payload.get("peak_rss_bytes", 0),
                    telemetry=dict(payload.get("telemetry", {})),
                    alerts=[Alert.from_dict(a)
                            for a in payload.get("alerts", [])])
        for round_payload in payload.get("rounds", []):
            clients = [ClientRoundRecord(**c)
                       for c in round_payload.get("client_records", [])]
            stats.add_round(RoundRecord(
                round_number=round_payload["round_number"],
                client_records=clients,
                global_metrics=dict(round_payload.get("global_metrics", {})),
                seconds=round_payload.get("seconds", 0.0),
                bytes_on_wire=round_payload.get("bytes_on_wire", 0),
                dropped_clients=list(round_payload.get("dropped_clients", [])),
                quorum_met=round_payload.get("quorum_met", True),
                quarantined_clients=list(
                    round_payload.get("quarantined_clients", []))))
        return stats
