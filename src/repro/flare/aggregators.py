"""Server-side aggregators.

``InTimeAccumulateWeightedAggregator`` is NVFlare's default (and the one the
paper's ScatterAndGather uses): client contributions are accumulated as they
arrive, weighted by the number of local steps/samples, and the weighted mean
is produced at the end of the round — i.e. FedAvg.  A FedOpt-style server
optimiser is included as an ablation.
"""

from __future__ import annotations

import numpy as np

from .constants import DataKind
from .dxo import DXO, MetaKey
from .events import FLComponent
from .fl_context import FLContext

__all__ = ["Aggregator", "InTimeAccumulateWeightedAggregator", "FedOptAggregator",
           "CoordinateMedianAggregator", "TrimmedMeanAggregator",
           "TreeAggregator", "MaterializationTracker"]


class MaterializationTracker:
    """Counts decoded client updates that are alive at the same instant.

    The massive-cohort memory guarantee ("a 1,000-client round never holds
    more than k decoded updates") is asserted against this counter: the
    controller acquires around its decode-and-fold window, and stash-based
    aggregators account every update (or partial) they keep alive beyond
    that window.  ``peak`` is the high-water mark for the run.
    """

    def __init__(self) -> None:
        self.live = 0
        self.peak = 0

    def acquire(self, n: int = 1) -> None:
        self.live += n
        if self.live > self.peak:
            self.peak = self.live

    def release(self, n: int = 1) -> None:
        self.live = max(0, self.live - n)


class Aggregator(FLComponent):
    """Accumulate client DXOs during a round, then emit the aggregate.

    ``tracker`` is optionally installed by the controller; aggregators that
    *stash* whole updates (rather than folding them into running sums) must
    account the stashed copies through it so the bounded-materialization
    guarantee stays honest.
    """

    tracker: MaterializationTracker | None = None

    def accept(self, dxo: DXO, contributor: str, fl_ctx: FLContext) -> bool:
        raise NotImplementedError

    def aggregate(self, fl_ctx: FLContext) -> DXO:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def _track(self, n: int = 1) -> None:
        if self.tracker is not None and n:
            self.tracker.acquire(n)

    def _untrack(self, n: int = 1) -> None:
        if self.tracker is not None and n:
            self.tracker.release(n)


class InTimeAccumulateWeightedAggregator(Aggregator):
    """Weighted running mean of client weight (or weight-diff) dictionaries.

    Weights default to each contribution's ``NUM_STEPS_CURRENT_ROUND`` meta
    (sample/step counts), reducing to plain FedAvg over examples.
    """

    def __init__(self, expected_data_kind: str = DataKind.WEIGHTS,
                 name: str | None = None) -> None:
        super().__init__(name=name)
        if expected_data_kind not in (DataKind.WEIGHTS, DataKind.WEIGHT_DIFF):
            raise ValueError(f"cannot aggregate data kind {expected_data_kind!r}")
        self.expected_data_kind = expected_data_kind
        self._sums: dict[str, np.ndarray] | None = None
        self._total_weight = 0.0
        self._contributors: list[str] = []

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._sums = None
        self._total_weight = 0.0
        self._contributors = []

    @property
    def contributors(self) -> list[str]:
        return list(self._contributors)

    def accept(self, dxo: DXO, contributor: str, fl_ctx: FLContext) -> bool:
        if dxo.data_kind != self.expected_data_kind:
            self.log_error("rejecting %s from %s: expected %s",
                           dxo.data_kind, contributor, self.expected_data_kind)
            return False
        if contributor in self._contributors:
            self.log_warning("duplicate contribution from %s ignored", contributor)
            return False
        weight = float(dxo.get_meta_prop(MetaKey.NUM_STEPS_CURRENT_ROUND, 1.0))
        if weight <= 0:
            self.log_error("non-positive weight %.3f from %s rejected", weight, contributor)
            return False
        if self._sums is None:
            self._sums = {key: np.zeros_like(np.asarray(value, dtype=np.float64))
                          for key, value in dxo.data.items()}
        if set(self._sums) != set(dxo.data):
            self.log_error("parameter-name mismatch from %s rejected", contributor)
            return False
        for key, value in dxo.data.items():
            self._sums[key] += weight * np.asarray(value, dtype=np.float64)
        self._total_weight += weight
        self._contributors.append(contributor)
        round_number = fl_ctx.get_prop("current_round", 0)
        self.log_info("Contribution from %s ACCEPTED by the aggregator at round %s.",
                      contributor, round_number)
        return True

    def aggregate(self, fl_ctx: FLContext) -> DXO:
        if self._sums is None or self._total_weight <= 0:
            raise RuntimeError("nothing to aggregate")
        self.log_info("aggregating %d update(s) at round %s",
                      len(self._contributors), fl_ctx.get_prop("current_round", 0))
        mean = {key: (value / self._total_weight).astype(np.float32)
                for key, value in self._sums.items()}
        return DXO(data_kind=self.expected_data_kind, data=mean,
                   meta={"contributors": list(self._contributors)})


class FedOptAggregator(InTimeAccumulateWeightedAggregator):
    """Server-side adaptive step on the averaged weight diff (FedOpt/FedAdam).

    Expects WEIGHT_DIFF contributions; maintains Adam-style moments over the
    averaged diff and emits a WEIGHT_DIFF scaled by the adaptive step, so the
    shareable generator can apply it exactly like plain FedAvg output.
    """

    def __init__(self, server_lr: float = 1.0, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 name: str | None = None) -> None:
        super().__init__(expected_data_kind=DataKind.WEIGHT_DIFF, name=name)
        if server_lr <= 0:
            raise ValueError("server_lr must be positive")
        self.server_lr = server_lr
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._step = 0

    def aggregate(self, fl_ctx: FLContext) -> DXO:
        averaged = super().aggregate(fl_ctx)
        self._step += 1
        adjusted: dict[str, np.ndarray] = {}
        for key, diff in averaged.data.items():
            diff64 = np.asarray(diff, dtype=np.float64)
            m = self._m.setdefault(key, np.zeros_like(diff64))
            v = self._v.setdefault(key, np.zeros_like(diff64))
            m[...] = self.beta1 * m + (1 - self.beta1) * diff64
            v[...] = self.beta2 * v + (1 - self.beta2) * diff64 * diff64
            m_hat = m / (1 - self.beta1 ** self._step)
            v_hat = v / (1 - self.beta2 ** self._step)
            adjusted[key] = (self.server_lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(np.float32)
        return DXO(data_kind=DataKind.WEIGHT_DIFF, data=adjusted, meta=averaged.meta)


class CoordinateMedianAggregator(Aggregator):
    """Coordinate-wise median of client updates (Byzantine-robust).

    Unlike the weighted mean, a minority of arbitrarily corrupted client
    updates cannot move the aggregate far — useful when some sites may ship
    broken or adversarial weights.  Contribution weights are ignored.
    """

    def __init__(self, expected_data_kind: str = DataKind.WEIGHTS,
                 name: str | None = None) -> None:
        super().__init__(name=name)
        if expected_data_kind not in (DataKind.WEIGHTS, DataKind.WEIGHT_DIFF):
            raise ValueError(f"cannot aggregate data kind {expected_data_kind!r}")
        self.expected_data_kind = expected_data_kind
        self._stash: list[dict[str, np.ndarray]] = []
        self._contributors: list[str] = []

    def reset(self) -> None:
        self._untrack(len(self._stash))
        self._stash = []
        self._contributors = []

    @property
    def contributors(self) -> list[str]:
        return list(self._contributors)

    def accept(self, dxo: DXO, contributor: str, fl_ctx: FLContext) -> bool:
        if dxo.data_kind != self.expected_data_kind:
            self.log_error("rejecting %s from %s", dxo.data_kind, contributor)
            return False
        if contributor in self._contributors:
            self.log_warning("duplicate contribution from %s ignored", contributor)
            return False
        if self._stash and set(self._stash[0]) != set(dxo.data):
            self.log_error("parameter-name mismatch from %s rejected", contributor)
            return False
        self._stash.append({key: np.asarray(value, dtype=np.float64)
                            for key, value in dxo.data.items()})
        self._track()  # the stashed copy outlives the caller's decode window
        self._contributors.append(contributor)
        self.log_info("Contribution from %s ACCEPTED by the aggregator at round %s.",
                      contributor, fl_ctx.get_prop("current_round", 0))
        return True

    def _combine(self, stacked: np.ndarray) -> np.ndarray:
        return np.median(stacked, axis=0)

    def aggregate(self, fl_ctx: FLContext) -> DXO:
        if not self._stash:
            raise RuntimeError("nothing to aggregate")
        self.log_info("aggregating %d update(s) at round %s",
                      len(self._stash), fl_ctx.get_prop("current_round", 0))
        combined = {
            key: self._combine(np.stack([entry[key] for entry in self._stash]))
            .astype(np.float32)
            for key in self._stash[0]
        }
        return DXO(data_kind=self.expected_data_kind, data=combined,
                   meta={"contributors": list(self._contributors)})


class TrimmedMeanAggregator(CoordinateMedianAggregator):
    """Coordinate-wise trimmed mean: drop the k highest and k lowest values.

    ``trim`` is the number of extremes removed per side; with ``trim=0`` this
    reduces to an unweighted mean.  Requires at least ``2*trim + 1`` clients.
    """

    def __init__(self, trim: int = 1, expected_data_kind: str = DataKind.WEIGHTS,
                 name: str | None = None) -> None:
        super().__init__(expected_data_kind=expected_data_kind, name=name)
        if trim < 0:
            raise ValueError("trim must be non-negative")
        self.trim = trim

    def _combine(self, stacked: np.ndarray) -> np.ndarray:
        n = stacked.shape[0]
        if n <= 2 * self.trim:
            raise RuntimeError(
                f"trimmed mean needs > {2 * self.trim} contributions, got {n}")
        if self.trim == 0:
            return stacked.mean(axis=0)
        ordered = np.sort(stacked, axis=0)
        return ordered[self.trim:n - self.trim].mean(axis=0)


class _TreeLevel:
    """One level of the reduction tree: a node aggregator plus fill state."""

    __slots__ = ("agg", "count", "weight")

    def __init__(self, agg: Aggregator) -> None:
        self.agg = agg
        self.count = 0
        self.weight = 0.0


class TreeAggregator(Aggregator):
    """Arity-``k`` hierarchical reduction over any node aggregator.

    A flat fan-in over ``n`` clients either folds serially through one
    accumulator or (for stash-based aggregators like the coordinate median)
    materializes all ``n`` decoded updates at once.  The tree composes the
    existing :class:`Aggregator` family into nodes of at most ``arity``
    children: whenever a node fills, it is folded into a *partial* DXO —
    weighted by the subtree's total contribution weight, so weighted means
    compose exactly — and pushed one level up.  At any instant only the
    currently-filling node per level holds data, so peak materialization is
    O(``arity`` · log\\ :sub:`arity` ``n``) instead of O(``n``), and each
    ``aggregate()`` call touches O(``arity``) inputs instead of O(``n``).

    ``node_factory`` builds every tree node (default: the weighted-FedAvg
    accumulator, for which the tree result equals the flat result up to
    float association).  For order-statistic nodes (median/trimmed mean)
    the tree computes a median-of-medians style *approximation* — document
    the trade before swapping it in.
    """

    def __init__(self, node_factory=None, arity: int = 16,
                 expected_data_kind: str = DataKind.WEIGHTS,
                 name: str | None = None) -> None:
        super().__init__(name=name)
        if arity < 2:
            raise ValueError("arity must be at least 2")
        self.arity = arity
        self.expected_data_kind = expected_data_kind
        self.node_factory = node_factory or (
            lambda: InTimeAccumulateWeightedAggregator(
                expected_data_kind=expected_data_kind))
        self._levels: list[_TreeLevel] = []
        self._contributors: list[str] = []
        self._folds = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        for level in self._levels:
            level.agg.reset()
        self._levels = []
        self._contributors = []
        self._folds = 0

    @property
    def contributors(self) -> list[str]:
        return list(self._contributors)

    @property
    def depth(self) -> int:
        """Levels currently allocated (≈ ceil(log_arity(n)) after n accepts)."""
        return len(self._levels)

    def _level(self, index: int) -> _TreeLevel:
        while len(self._levels) <= index:
            node = self.node_factory()
            node.tracker = self.tracker
            self._levels.append(_TreeLevel(node))
        return self._levels[index]

    # ------------------------------------------------------------------
    def accept(self, dxo: DXO, contributor: str, fl_ctx: FLContext) -> bool:
        if contributor in self._contributors:
            self.log_warning("duplicate contribution from %s ignored", contributor)
            return False
        weight = float(dxo.get_meta_prop(MetaKey.NUM_STEPS_CURRENT_ROUND, 1.0))
        leaf = self._level(0)
        if not leaf.agg.accept(dxo, contributor, fl_ctx):
            return False
        leaf.count += 1
        leaf.weight += max(weight, 0.0)
        self._contributors.append(contributor)
        if leaf.count >= self.arity:
            self._fold(0, fl_ctx)
        return True

    def _fold(self, index: int, fl_ctx: FLContext) -> None:
        """Collapse level ``index`` into a partial and push it one level up."""
        level = self._levels[index]
        partial = level.agg.aggregate(fl_ctx)
        # the partial stands in for its whole subtree at the parent: weight
        # it by the subtree's total so the weighted mean composes exactly
        partial.set_meta_prop(MetaKey.NUM_STEPS_CURRENT_ROUND,
                              level.weight if level.weight > 0 else level.count)
        subtree_weight = level.weight
        level.agg.reset()
        level.count = 0
        level.weight = 0.0
        self._folds += 1
        parent = self._level(index + 1)
        if not parent.agg.accept(partial, f"tree:l{index}:{self._folds}", fl_ctx):
            raise RuntimeError(
                f"tree level {index + 1} rejected a partial aggregate")
        parent.count += 1
        parent.weight += subtree_weight
        if parent.count >= self.arity:
            self._fold(index + 1, fl_ctx)

    def aggregate(self, fl_ctx: FLContext) -> DXO:
        if not any(level.count for level in self._levels):
            raise RuntimeError("nothing to aggregate")
        # flush upward: every level that has company above it folds into the
        # next level, leaving exactly one node holding the whole tree
        index = 0
        while index < len(self._levels):
            level = self._levels[index]
            above = any(entry.count for entry in self._levels[index + 1:])
            if level.count and above:
                self._fold(index, fl_ctx)
            index += 1
        top = max(i for i, level in enumerate(self._levels) if level.count)
        self.log_info("tree-aggregating %d update(s) through %d level(s) "
                      "(arity %d) at round %s", len(self._contributors),
                      top + 1, self.arity, fl_ctx.get_prop("current_round", 0))
        result = self._levels[top].agg.aggregate(fl_ctx)
        result.meta["contributors"] = list(self._contributors)
        return result
