"""ProcessClientRunner: one OS process per federated client, over sockets.

The deployment shape the paper actually runs — every clinical site is its
own NVFlare process talking to the server over the network — reproduced
with :mod:`multiprocessing` and the :class:`~repro.flare.socket_transport
.SocketMessageBus`.  The parent process hosts the server (hub node +
:class:`~repro.flare.controller.ScatterAndGather`); each client process
hosts a spoke node plus a :class:`~repro.flare.client.FederatedClient`
serving the task loop until the server's ``__stop__`` fan-out.

Control plane vs data plane: the certificate/nonce registration handshake
(the Fig. 3 "Token & SSH Protocols" stage) runs in the parent *before* the
fork — it is the provisioning/admission step, and running it in-process
keeps the RSA material out of the child argument surface.  The child gets
only its startup kit, its join token and the server's session key, from
which both ends derive the HMAC channel; every task/result/heartbeat byte
after that crosses a real TCP socket.

The default start method is ``fork`` (the only one that does not require
picklable learner factories); jobs whose factories pickle cleanly may pass
``start_method="spawn"``.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .client import FederatedClient, session_key_from_token
from .constants import ReservedKey
from .filters import CompressionConfig
from .provision import StartupKit
from .security import sign
from .socket_transport import SocketMessageBus
from .transport import ReceiveTimeout, SignatureError, TransportError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultPlan
    from .learner import Learner
    from .server import FLServer

__all__ = ["ProcessClientRunner", "ClientProcessConfig", "client_process_main"]


@dataclass
class ClientProcessConfig:
    """Everything one client process needs to join and serve."""

    kit: StartupKit
    token: str
    server_name: str
    server_key: bytes
    address: tuple[str, int]
    fault_plan: "FaultPlan | None" = None
    compression: CompressionConfig | None = None
    extra_result_filters: list = field(default_factory=list)
    heartbeat_interval: float | None = 2.0
    poll_timeout: float = 1.0


def client_process_main(config: ClientProcessConfig,
                        learner_factory: Callable[[str], "Learner"],
                        gate=None) -> None:
    """Entry point of one client process: connect, serve tasks, exit on stop.

    Mirrors ``FederatedClient.serve_in_thread`` on a spoke node: idle
    receive timeouts keep the loop polling, corrupted frames (bad HMAC) are
    dropped without costing the process, and transport outages ride on the
    spoke's reconnect-with-backoff until the server's stop message lands.
    """
    name = config.kit.participant.name
    bus = SocketMessageBus.connect(config.address,
                                   fault_plan=config.fault_plan,
                                   heartbeat_interval=config.heartbeat_interval)
    try:
        task_data_filters: list = []
        task_result_filters: list = list(config.extra_result_filters)
        if config.compression is not None:
            task_data_filters = config.compression.client_task_filters()
            task_result_filters += config.compression.client_result_filters()
        client = FederatedClient(config.kit, learner_factory(name), bus,
                                 task_result_filters=task_result_filters,
                                 task_data_filters=task_data_filters)
        client.token = config.token
        client.server_name = config.server_name
        bus.install_session_key(name, session_key_from_token(config.token))
        bus.register_peer(config.server_name)
        bus.install_session_key(config.server_name, config.server_key)
        client.fl_ctx.set_prop(ReservedKey.TOKEN, config.token)
        client.learner.initialize(client.fl_ctx)
        client.task_semaphore = gate
        try:
            while True:
                try:
                    if not client.poll_once(timeout=config.poll_timeout):
                        break
                except ReceiveTimeout:
                    continue  # idle; keep serving
                except SignatureError as error:
                    client.log_warning("rejected corrupted/forged task: %s", error)
                except TransportError as error:
                    client.log_warning("transport hiccup: %s", error)
                    time.sleep(config.poll_timeout)
        finally:
            client.learner.finalize(client.fl_ctx)
    finally:
        bus.close()


class ProcessClientRunner:
    """Launches and supervises one process per client site.

    Usage, given a hub-mode :class:`SocketMessageBus` and a registered
    :class:`FLServer` on it::

        runner = ProcessClientRunner(job.learner_factory, kits, server)
        tokens = runner.launch(client_names)
        ...  # run the controller against the hub
        server.stop_clients(client_names)
        runner.join()

    ``launch`` performs the registration handshake for every site in the
    parent (installing the client session keys on the hub), forks the
    client processes, and blocks until each spoke's endpoint announcement
    reaches the hub — so the first broadcast never races the connects.
    """

    def __init__(self, learner_factory: Callable[[str], "Learner"],
                 kits: dict[str, StartupKit], server: "FLServer", *,
                 compression: CompressionConfig | None = None,
                 extra_result_filters: list | None = None,
                 fault_plan: "FaultPlan | None" = None,
                 max_parallel: int | None = None,
                 heartbeat_interval: float | None = 2.0,
                 poll_timeout: float = 1.0,
                 start_method: str = "fork",
                 connect_timeout: float = 30.0) -> None:
        hub = server.bus
        if not isinstance(hub, SocketMessageBus):
            raise TypeError("ProcessClientRunner needs the server on a "
                            "SocketMessageBus hub; got "
                            f"{type(hub).__name__}")
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} unavailable on this platform "
                f"(have: {multiprocessing.get_all_start_methods()})")
        self.learner_factory = learner_factory
        self.kits = kits
        self.server = server
        self.hub = hub
        self.compression = compression
        self.extra_result_filters = list(extra_result_filters or [])
        self.fault_plan = fault_plan
        self.max_parallel = max_parallel
        self.heartbeat_interval = heartbeat_interval
        self.poll_timeout = poll_timeout
        self.connect_timeout = connect_timeout
        self._ctx = multiprocessing.get_context(start_method)
        self._processes: dict[str, multiprocessing.process.BaseProcess] = {}
        self.tokens: dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(self, name: str) -> str:
        """Run the token handshake for ``name`` in the parent; returns the token."""
        kit = self.kits[name]
        nonce = self.server.issue_nonce(name)
        proof = sign(nonce, kit.keypair)
        token = self.server.register_client(kit.certificate, nonce, proof)
        self.tokens[name] = token
        self.server.log_info(
            "Successfully registered client:%s for project simulator_server. Token:%s",
            name, token)
        return token

    def launch(self, client_names: list[str]) -> dict[str, str]:
        """Handshake, fork and wait for every client to come online."""
        server_key = self.hub.session_key(self.server.name)
        if server_key is None:
            raise TransportError("server has no session key on the hub")
        address = self.hub.address
        # One shared cross-process gate bounds how many sites train at once,
        # mirroring the threaded simulator's max_parallel semaphore.
        gate = (self._ctx.Semaphore(self.max_parallel)
                if self.max_parallel is not None else None)
        for name in client_names:
            token = self.tokens.get(name) or self.register(name)
            config = ClientProcessConfig(
                kit=self.kits[name], token=token, server_name=self.server.name,
                server_key=server_key, address=address,
                fault_plan=self.fault_plan, compression=self.compression,
                extra_result_filters=self.extra_result_filters,
                heartbeat_interval=self.heartbeat_interval,
                poll_timeout=self.poll_timeout)
            process = self._ctx.Process(
                target=client_process_main,
                args=(config, self.learner_factory, gate),
                name=f"fl-client-{name}", daemon=True)
            process.start()
            self._processes[name] = process
        self.hub.wait_for_endpoints(client_names, timeout=self.connect_timeout)
        return dict(self.tokens)

    # ------------------------------------------------------------------
    def alive(self) -> list[str]:
        return [name for name, process in self._processes.items()
                if process.is_alive()]

    def join(self, timeout: float = 30.0) -> dict[str, int | None]:
        """Join every client process; stragglers are terminated.

        Returns the exit code per site (negative = killed by signal,
        ``None`` should not occur after the join/terminate ladder).
        """
        deadline = time.monotonic() + timeout
        for name, process in self._processes.items():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for name, process in self._processes.items():
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=5.0)
        return {name: process.exitcode
                for name, process in self._processes.items()}

    def terminate(self) -> None:
        """Hard-stop every client process (fault cleanup path)."""
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
        self.join(timeout=5.0)
