"""ProcessClientRunner: one OS process per federated client.

The deployment shape the paper actually runs — every clinical site is its
own NVFlare process talking to the server — reproduced with
:mod:`multiprocessing` over either fabric:

- :class:`~repro.flare.socket_transport.SocketMessageBus` — spokes over TCP
  loopback, the network-realistic path;
- :class:`~repro.flare.shm_transport.ShmMessageBus` — fork-inherited queues
  plus mmap'd tensor segments, the fast path for the persistent worker
  pool (``SimulatorRunner(transport="shm")``).

The parent process hosts the server (hub node +
:class:`~repro.flare.controller.ScatterAndGather`); each client process
hosts a :class:`~repro.flare.client.FederatedClient` serving the task loop
until the server's ``__stop__`` fan-out.  Workers stay warm across rounds:
they are forked once per run and keep their learner state, tuned allocator
and BLAS pool for every round they serve.

Control plane vs data plane: the certificate/nonce registration handshake
(the Fig. 3 "Token & SSH Protocols" stage) runs in the parent *before* the
fork — it is the provisioning/admission step, and running it in-process
keeps the RSA material out of the child argument surface.  The child gets
only its startup kit, its join token and the server's session key, from
which both ends derive the HMAC channel; every task/result/heartbeat byte
after that crosses a real TCP socket.

The default start method is ``fork`` (the only one that does not require
picklable learner factories); jobs whose factories pickle cleanly may pass
``start_method="spawn"``.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from .client import FederatedClient, session_key_from_token
from .constants import TELEMETRY_TOPIC, ReservedKey
from .filters import CompressionConfig
from .provision import StartupKit
from .security import sign
from .shareable import Shareable
from .shm_transport import ShmMessageBus
from .socket_transport import SocketMessageBus
from .transport import ReceiveTimeout, SignatureError, Transport, TransportError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultPlan
    from .learner import Learner
    from .server import FLServer

__all__ = ["ProcessClientRunner", "ClientProcessConfig", "WorkerRuntime",
           "TelemetryCollector", "client_process_main", "TELEMETRY_TOPIC"]


@dataclass
class WorkerRuntime:
    """Process-level knobs a forked client worker applies before serving.

    ``fork`` copies the parent's address space but not everything survives
    meaningfully: glibc's ``mallopt`` state is re-applied via the at-fork
    hook, while the numpy default dtype, the array backend and the BLAS
    thread-pool size are plain process state the parent captures here so
    every worker trains under the same configuration.  ``blas_threads``
    should be ``recommended_blas_threads(n_workers)`` — N workers each
    running an M-thread BLAS pool oversubscribe N*M ways otherwise (see
    ``docs/PERFORMANCE.md``).
    """

    default_dtype: str | None = None
    backend: str | None = None
    blas_threads: int | None = None
    telemetry: bool = False
    # Sampling interval of the per-worker resource monitor (None = off).
    # When set (and telemetry is on) every forked worker runs its own
    # repro.obs.sysmon.SysMonitor whose gauges — tagged with the site name
    # — ride the streamed telemetry deltas back to the parent.
    sysmon: float | None = None

    @classmethod
    def capture(cls, workers: int, telemetry: bool = False,
                sysmon: float | None = None) -> "WorkerRuntime":
        """Snapshot the parent's runtime, splitting BLAS threads ``workers`` ways."""
        from ..autograd import get_backend, get_default_dtype
        from ..autograd._blas import recommended_blas_threads

        return cls(default_dtype=np.dtype(get_default_dtype()).name,
                   backend=get_backend(),
                   blas_threads=recommended_blas_threads(workers),
                   telemetry=telemetry,
                   sysmon=sysmon)

    def apply(self) -> None:
        from ..autograd import set_backend, set_default_dtype, tune_malloc
        from ..autograd._blas import set_blas_threads

        tune_malloc()  # idempotent; the at-fork hook normally beat us here
        if self.default_dtype is not None:
            set_default_dtype(self.default_dtype)
        if self.backend is not None:
            set_backend(self.backend)
        if self.blas_threads is not None:
            set_blas_threads(self.blas_threads)


@dataclass
class ClientProcessConfig:
    """Everything one client process needs to join and serve."""

    kit: StartupKit
    token: str
    server_name: str
    server_key: bytes
    address: tuple[str, int] | None = None
    bus: "Transport | None" = None
    runtime: WorkerRuntime | None = None
    fault_plan: "FaultPlan | None" = None
    compression: CompressionConfig | None = None
    extra_result_filters: list = field(default_factory=list)
    heartbeat_interval: float | None = 2.0
    poll_timeout: float = 1.0
    # Distributed tracing: the run-level trace id minted by the parent's
    # TelemetrySession, adopted by the worker's tracer so every process
    # contributes spans to one merged trace.
    trace_id: str | None = None
    # Cadence of the worker's streamed telemetry deltas; each finished task
    # span also kicks an immediate flush, so mid-run progress reaches the
    # parent promptly and a crash loses at most one interval of spans.
    telemetry_flush: float = 0.5


class _WorkerTelemetryExporter:
    """Streams one worker's telemetry to the server while it serves.

    Every ``interval`` seconds (or promptly after a span closes — the
    tracer's flush hook kicks the loop) the exporter ships one delta:
    spans finished since the previous delta plus *cumulative* snapshots of
    the metric registries (the parent keeps only the latest cumulative
    snapshot per worker, so a lost delta costs spans, never double-counts
    a counter).  The final delta (``final=True``) is sent on the way out;
    a crashed worker simply stops mid-stream and the parent marks its
    still-open spans aborted.
    """

    def __init__(self, bus: Transport, name: str, server_name: str,
                 registry, profiler, tracer, interval: float) -> None:
        self.bus = bus
        self.name = name
        self.server_name = server_name
        self.registry = registry
        self.profiler = profiler
        self.tracer = tracer
        self.interval = max(interval, 0.05)
        self._seq = 0
        self._kick = threading.Event()
        self._stop = threading.Event()
        self._send_lock = threading.Lock()
        self._thread: threading.Thread | None = None

    def start(self) -> "_WorkerTelemetryExporter":
        if self.tracer is not None:
            # Only spans wide enough to matter (a task, a training call)
            # kick an immediate flush; sub-50ms spans ride the interval.
            self.tracer.set_flush_hook(self.kick, threshold=0.05)
        self._thread = threading.Thread(target=self._loop,
                                        name=f"telemetry-{self.name}",
                                        daemon=True)
        self._thread.start()
        return self

    def kick(self) -> None:
        self._kick.set()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._kick.wait(self.interval)
            self._kick.clear()
            if self._stop.is_set():
                break
            self.flush(final=False)
            # coalesce kick bursts (one flush covers every span that
            # closed during it, so back-to-back flushes add nothing)
            self._stop.wait(0.05)

    def snapshot(self, final: bool) -> dict:
        from . import codec as wire_codec_module

        delta = {
            "client": self.name,
            "seq": self._seq,
            "final": final,
            "metrics": self.registry.to_dict(),
            "profile": self.profiler.to_dict(),
            "transport": self.bus.metrics.to_dict(),
            "wire": wire_codec_module.wire_metrics.to_dict(),
        }
        if self.tracer is not None:
            delta["process"] = self.tracer.process
            delta["trace_id"] = self.tracer.trace_id
            delta["clock_offset"] = round(self.tracer.clock_offset, 6)
            delta["spans"] = self.tracer.drain()
            delta["open_spans"] = [] if final else self.tracer.open_spans()
        return delta

    def flush(self, final: bool = False) -> None:
        with self._send_lock:
            delta = self.snapshot(final)
            self._seq += 1
            try:
                self.bus.send_shareable(self.name, self.server_name,
                                        TELEMETRY_TOPIC,
                                        Shareable({"telemetry": delta}))
            except TransportError:
                pass  # best-effort: a faulty fabric may eat a delta

    def stop(self) -> None:
        """Stop the loop and ship the final cumulative snapshot."""
        self._stop.set()
        self._kick.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self.tracer is not None:
            self.tracer.set_flush_hook(None)
        self.flush(final=True)


def client_process_main(config: ClientProcessConfig,
                        learner_factory: Callable[[str], "Learner"],
                        gate=None) -> None:
    """Entry point of one client process: connect, serve tasks, exit on stop.

    Mirrors ``FederatedClient.serve_in_thread`` on its own node: idle
    receive timeouts keep the loop polling, corrupted frames (bad HMAC) are
    dropped without costing the process, and transport outages ride on the
    spoke's reconnect-with-backoff until the server's stop message lands.
    """
    name = config.kit.participant.name
    if config.runtime is not None:
        config.runtime.apply()
    registry = profiler = previous_registry = None
    tracer = previous_tracer = None
    sysmon = None
    exporter: _WorkerTelemetryExporter | None = None
    if config.runtime is not None and config.runtime.telemetry:
        from ..obs import metrics as obs_metrics
        from ..obs import trace as obs_trace
        from ..obs.metrics import MetricsRegistry
        from ..obs.profiler import OpProfiler, get_profiler
        from ..obs.trace import Tracer

        # fork copies the parent's installed profiler hook; detach that
        # inherited copy (it records into the parent session's dicts, which
        # no longer exist here in any useful sense) before arming our own
        inherited = get_profiler()
        if inherited is not None:
            inherited.uninstall()
        registry = MetricsRegistry()
        previous_registry = obs_metrics.set_registry(registry)
        profiler = OpProfiler().install()
        # Per-process tracer joined to the parent's trace: same trace_id,
        # site-named span ids, and a clock offset learned from the first
        # task's envelope so exported spans land on the parent's timeline.
        tracer = Tracer(trace_id=config.trace_id, process=name,
                        adopt_clock=True)
        previous_tracer = obs_trace.set_tracer(tracer)
        if config.runtime.sysmon is not None:
            # per-worker resource sampler: its site-tagged gauges live in
            # this registry, so every streamed delta carries them and the
            # parent's merged metrics (and exporter scrape) show RSS/CPU
            # per client process
            from ..obs.sysmon import SysMonitor

            sysmon = SysMonitor(registry=registry, process=name,
                                interval=config.runtime.sysmon).start()
    if config.bus is not None:
        # fork-inherited fabric (shm): the queues already exist; this
        # process just claims its endpoint and installs its keys below
        bus = config.bus
        owns_bus = False
    else:
        bus = SocketMessageBus.connect(config.address,
                                       fault_plan=config.fault_plan,
                                       heartbeat_interval=config.heartbeat_interval)
        owns_bus = True
    try:
        task_data_filters: list = []
        task_result_filters: list = list(config.extra_result_filters)
        if config.compression is not None:
            task_data_filters = config.compression.client_task_filters()
            task_result_filters += config.compression.client_result_filters()
        client = FederatedClient(config.kit, learner_factory(name), bus,
                                 task_result_filters=task_result_filters,
                                 task_data_filters=task_data_filters)
        client.token = config.token
        client.server_name = config.server_name
        bus.install_session_key(name, session_key_from_token(config.token))
        bus.register_peer(config.server_name)
        bus.install_session_key(config.server_name, config.server_key)
        client.fl_ctx.set_prop(ReservedKey.TOKEN, config.token)
        client.learner.initialize(client.fl_ctx)
        client.task_semaphore = gate
        if registry is not None and profiler is not None:
            # keys are installed; start streaming deltas to the server
            exporter = _WorkerTelemetryExporter(
                bus, name, config.server_name, registry, profiler, tracer,
                interval=config.telemetry_flush).start()
        try:
            while True:
                try:
                    if not client.poll_once(timeout=config.poll_timeout):
                        break
                except ReceiveTimeout:
                    continue  # idle; keep serving
                except SignatureError as error:
                    client.log_warning("rejected corrupted/forged task: %s", error)
                except TransportError as error:
                    client.log_warning("transport hiccup: %s", error)
                    time.sleep(config.poll_timeout)
        finally:
            client.learner.finalize(client.fl_ctx)
        if exporter is not None:
            from ..obs import metrics as obs_metrics
            from ..obs import trace as obs_trace

            if sysmon is not None:
                sysmon.stop()  # final sample rides the goodbye delta
            profiler.uninstall()
            obs_metrics.set_registry(previous_registry)
            obs_trace.set_tracer(previous_tracer)
            exporter.stop()  # ships the final cumulative snapshot
    finally:
        if owns_bus:
            bus.close()


class TelemetryCollector:
    """Parent-side sink for the workers' streamed telemetry deltas.

    Ingests every ``__telemetry__`` delta — whether it arrives mid-round
    through :attr:`FLServer.telemetry_sink` or during the final drain —
    and maintains:

    - the **latest cumulative** metric/profile/transport/wire snapshot per
      worker (idempotent under lost or reordered deltas, since each delta
      carries full totals);
    - the merged span stream: span deltas are appended to the parent
      session's live ``trace.jsonl`` as they arrive;
    - crash forensics: the open spans reported by each worker's most
      recent delta.  :meth:`finalize` writes those of any worker that
      never sent its ``final=True`` goodbye as ``status="aborted"``
      records, so a crashed client's task is visible in the merged trace
      instead of silently missing.
    """

    def __init__(self, session=None) -> None:
        self.session = session
        self._lock = threading.Lock()
        self._latest: dict[str, dict] = {}
        self._open: dict[str, list[dict]] = {}
        self._seen_seq: dict[str, int] = {}
        self._finals: set[str] = set()
        self._announced: set[str] = set()
        self._finalized = False

    # ------------------------------------------------------------------
    def ingest(self, delta: dict) -> None:
        """Fold one worker delta in (safe from any thread)."""
        client = delta.get("client")
        if not isinstance(client, str):
            return
        seq = delta.get("seq", 0)
        announce = False
        with self._lock:
            if isinstance(seq, int) and seq <= self._seen_seq.get(client, -1):
                return  # stale or duplicated delta
            self._seen_seq[client] = seq if isinstance(seq, int) else 0
            self._latest[client] = {
                key: delta[key]
                for key in ("client", "metrics", "profile", "transport", "wire")
                if key in delta}
            self._open[client] = list(delta.get("open_spans") or [])
            if delta.get("final"):
                self._finals.add(client)
                self._open[client] = []
            if client not in self._announced:
                self._announced.add(client)
                announce = True
        if self.session is None:
            return
        if announce:
            self.session.append_process({
                "event": "process", "process": delta.get("process", client),
                "client": client, "trace_id": delta.get("trace_id"),
                "clock_offset": delta.get("clock_offset", 0.0)})
        spans = delta.get("spans")
        if spans:
            self.session.append_spans(spans)

    # ------------------------------------------------------------------
    def final_clients(self) -> set[str]:
        with self._lock:
            return set(self._finals)

    def snapshots(self) -> dict[str, dict]:
        """Latest cumulative snapshot per worker (the drain return shape)."""
        with self._lock:
            return {client: dict(snapshot)
                    for client, snapshot in self._latest.items()}

    def finalize(self) -> list[dict]:
        """Mark never-closed spans of non-final workers as aborted.

        Returns the aborted-span records (also appended to the session's
        trace stream when one is attached).  Idempotent.
        """
        with self._lock:
            if self._finalized:
                return []
            self._finalized = True
            aborted = [
                dict(open_span, t_end=None, wall_s=None, status="aborted")
                for client, open_spans in sorted(self._open.items())
                if client not in self._finals
                for open_span in open_spans]
        if aborted and self.session is not None:
            self.session.append_spans(aborted)
        return aborted


class ProcessClientRunner:
    """Launches and supervises one process per client site.

    Usage, given a hub-mode :class:`SocketMessageBus` and a registered
    :class:`FLServer` on it::

        runner = ProcessClientRunner(job.learner_factory, kits, server)
        tokens = runner.launch(client_names)
        ...  # run the controller against the hub
        server.stop_clients(client_names)
        runner.join()

    ``launch`` performs the registration handshake for every site in the
    parent (installing the client session keys on the hub), forks the
    client processes, and blocks until each spoke's endpoint announcement
    reaches the hub — so the first broadcast never races the connects.
    """

    def __init__(self, learner_factory: Callable[[str], "Learner"],
                 kits: dict[str, StartupKit], server: "FLServer", *,
                 compression: CompressionConfig | None = None,
                 extra_result_filters: list | None = None,
                 fault_plan: "FaultPlan | None" = None,
                 max_parallel: int | None = None,
                 heartbeat_interval: float | None = 2.0,
                 poll_timeout: float = 1.0,
                 start_method: str = "fork",
                 connect_timeout: float = 30.0,
                 runtime: WorkerRuntime | None = None,
                 trace_id: str | None = None,
                 telemetry_flush: float = 0.5,
                 collector: TelemetryCollector | None = None) -> None:
        hub = server.bus
        if not isinstance(hub, (SocketMessageBus, ShmMessageBus)):
            raise TypeError("ProcessClientRunner needs the server on a "
                            "SocketMessageBus or ShmMessageBus hub; got "
                            f"{type(hub).__name__}")
        if isinstance(hub, ShmMessageBus) and start_method != "fork":
            raise ValueError("the shm fabric requires start_method='fork' "
                             "(its queues are inherited, not pickled)")
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} unavailable on this platform "
                f"(have: {multiprocessing.get_all_start_methods()})")
        self.learner_factory = learner_factory
        self.kits = kits
        self.server = server
        self.hub = hub
        self.compression = compression
        self.extra_result_filters = list(extra_result_filters or [])
        self.fault_plan = fault_plan
        self.max_parallel = max_parallel
        self.heartbeat_interval = heartbeat_interval
        self.poll_timeout = poll_timeout
        self.connect_timeout = connect_timeout
        self.runtime = runtime
        self.trace_id = trace_id
        self.telemetry_flush = telemetry_flush
        # Shared with the server's telemetry_sink so mid-round deltas and
        # the final drain land in one place; created lazily when absent.
        self.collector = collector
        self._ctx = multiprocessing.get_context(start_method)
        self._processes: dict[str, multiprocessing.process.BaseProcess] = {}
        self.tokens: dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(self, name: str) -> str:
        """Run the token handshake for ``name`` in the parent; returns the token."""
        kit = self.kits[name]
        nonce = self.server.issue_nonce(name)
        proof = sign(nonce, kit.keypair)
        token = self.server.register_client(kit.certificate, nonce, proof)
        self.tokens[name] = token
        self.server.log_info(
            "Successfully registered client:%s for project simulator_server. Token:%s",
            name, token)
        return token

    def launch(self, client_names: list[str]) -> dict[str, str]:
        """Handshake, fork and wait for every client to come online."""
        server_key = self.hub.session_key(self.server.name)
        if server_key is None:
            raise TransportError("server has no session key on the hub")
        shm = isinstance(self.hub, ShmMessageBus)
        if shm:
            # the children's inboxes must exist before the fork — a queue
            # created afterwards would be invisible to every other process
            address = None
            for name in client_names:
                self.hub.register_endpoint(name)
        else:
            address = self.hub.address
        # One shared cross-process gate bounds how many sites train at once,
        # mirroring the threaded simulator's max_parallel semaphore.
        gate = (self._ctx.Semaphore(self.max_parallel)
                if self.max_parallel is not None else None)
        for name in client_names:
            token = self.tokens.get(name) or self.register(name)
            config = ClientProcessConfig(
                kit=self.kits[name], token=token, server_name=self.server.name,
                server_key=server_key, address=address,
                bus=self.hub if shm else None,
                runtime=self.runtime,
                fault_plan=self.fault_plan, compression=self.compression,
                extra_result_filters=self.extra_result_filters,
                heartbeat_interval=self.heartbeat_interval,
                poll_timeout=self.poll_timeout,
                trace_id=self.trace_id,
                telemetry_flush=self.telemetry_flush)
            process = self._ctx.Process(
                target=client_process_main,
                args=(config, self.learner_factory, gate),
                name=f"fl-client-{name}", daemon=True)
            process.start()
            self._processes[name] = process
        self.hub.wait_for_endpoints(client_names, timeout=self.connect_timeout)
        return dict(self.tokens)

    # ------------------------------------------------------------------
    def drain_telemetry(self, timeout: float = 10.0) -> dict[str, dict]:
        """Drain remaining ``__telemetry__`` deltas after the stop fan-out.

        The workers stream deltas throughout the run (routed into the
        collector by ``FLServer.telemetry_sink``); this drains whatever is
        still in flight — most importantly each worker's ``final=True``
        goodbye — until every live worker has reported or the deadline
        expires, then marks the open spans of anyone who never said
        goodbye (a crashed process) as aborted in the merged trace.

        Returns ``{client_name: latest cumulative snapshot}`` — a crashed
        worker keeps the snapshot from its last streamed delta, so
        everything it flushed before dying survives.
        """
        if self.collector is None:
            self.collector = TelemetryCollector()
        collector = self.collector
        expected = set(self._processes)
        deadline = time.monotonic() + timeout
        while expected - collector.final_clients():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            # Workers that already died can never send a final delta; stop
            # waiting once every still-live worker has reported.
            if not (set(self.alive()) & (expected - collector.final_clients())) \
                    and self.hub.pending(self.server.name) == 0:
                break
            try:
                sender, topic, shareable = self.hub.receive(
                    self.server.name, timeout=min(remaining, 0.25),
                    topic=TELEMETRY_TOPIC)
            except ReceiveTimeout:
                continue  # re-check liveness/deadline
            except TransportError:
                break
            except SignatureError:
                continue  # chaos plans may corrupt the goodbye; skip it
            if topic != TELEMETRY_TOPIC:
                continue  # stale round traffic; telemetry is all we want now
            snapshot = shareable.get("telemetry")
            if isinstance(snapshot, dict):
                collector.ingest(snapshot)
        collector.finalize()
        return collector.snapshots()

    # ------------------------------------------------------------------
    def alive(self) -> list[str]:
        return [name for name, process in self._processes.items()
                if process.is_alive()]

    def join(self, timeout: float = 30.0) -> dict[str, int | None]:
        """Join every client process; stragglers are terminated.

        Returns the exit code per site (negative = killed by signal,
        ``None`` should not occur after the join/terminate ladder).
        """
        deadline = time.monotonic() + timeout
        for name, process in self._processes.items():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for name, process in self._processes.items():
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=5.0)
        return {name: process.exitcode
                for name, process in self._processes.items()}

    def terminate(self) -> None:
        """Hard-stop every client process (fault cleanup path)."""
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
        self.join(timeout=5.0)
