"""ProcessClientRunner: one OS process per federated client.

The deployment shape the paper actually runs — every clinical site is its
own NVFlare process talking to the server — reproduced with
:mod:`multiprocessing` over either fabric:

- :class:`~repro.flare.socket_transport.SocketMessageBus` — spokes over TCP
  loopback, the network-realistic path;
- :class:`~repro.flare.shm_transport.ShmMessageBus` — fork-inherited queues
  plus mmap'd tensor segments, the fast path for the persistent worker
  pool (``SimulatorRunner(transport="shm")``).

The parent process hosts the server (hub node +
:class:`~repro.flare.controller.ScatterAndGather`); each client process
hosts a :class:`~repro.flare.client.FederatedClient` serving the task loop
until the server's ``__stop__`` fan-out.  Workers stay warm across rounds:
they are forked once per run and keep their learner state, tuned allocator
and BLAS pool for every round they serve.

Control plane vs data plane: the certificate/nonce registration handshake
(the Fig. 3 "Token & SSH Protocols" stage) runs in the parent *before* the
fork — it is the provisioning/admission step, and running it in-process
keeps the RSA material out of the child argument surface.  The child gets
only its startup kit, its join token and the server's session key, from
which both ends derive the HMAC channel; every task/result/heartbeat byte
after that crosses a real TCP socket.

The default start method is ``fork`` (the only one that does not require
picklable learner factories); jobs whose factories pickle cleanly may pass
``start_method="spawn"``.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from .client import FederatedClient, session_key_from_token
from .constants import ReservedKey
from .filters import CompressionConfig
from .provision import StartupKit
from .security import sign
from .shareable import Shareable
from .shm_transport import ShmMessageBus
from .socket_transport import SocketMessageBus
from .transport import ReceiveTimeout, SignatureError, Transport, TransportError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultPlan
    from .learner import Learner
    from .server import FLServer

__all__ = ["ProcessClientRunner", "ClientProcessConfig", "WorkerRuntime",
           "client_process_main", "TELEMETRY_TOPIC"]

# Topic of the child → server snapshot each worker sends after the stop
# fan-out, carrying its metrics/profile so the parent's report covers the
# work done in every process.
TELEMETRY_TOPIC = "__telemetry__"


@dataclass
class WorkerRuntime:
    """Process-level knobs a forked client worker applies before serving.

    ``fork`` copies the parent's address space but not everything survives
    meaningfully: glibc's ``mallopt`` state is re-applied via the at-fork
    hook, while the numpy default dtype, the array backend and the BLAS
    thread-pool size are plain process state the parent captures here so
    every worker trains under the same configuration.  ``blas_threads``
    should be ``recommended_blas_threads(n_workers)`` — N workers each
    running an M-thread BLAS pool oversubscribe N*M ways otherwise (see
    ``docs/PERFORMANCE.md``).
    """

    default_dtype: str | None = None
    backend: str | None = None
    blas_threads: int | None = None
    telemetry: bool = False

    @classmethod
    def capture(cls, workers: int, telemetry: bool = False) -> "WorkerRuntime":
        """Snapshot the parent's runtime, splitting BLAS threads ``workers`` ways."""
        from ..autograd import get_backend, get_default_dtype
        from ..autograd._blas import recommended_blas_threads

        return cls(default_dtype=np.dtype(get_default_dtype()).name,
                   backend=get_backend(),
                   blas_threads=recommended_blas_threads(workers),
                   telemetry=telemetry)

    def apply(self) -> None:
        from ..autograd import set_backend, set_default_dtype, tune_malloc
        from ..autograd._blas import set_blas_threads

        tune_malloc()  # idempotent; the at-fork hook normally beat us here
        if self.default_dtype is not None:
            set_default_dtype(self.default_dtype)
        if self.backend is not None:
            set_backend(self.backend)
        if self.blas_threads is not None:
            set_blas_threads(self.blas_threads)


@dataclass
class ClientProcessConfig:
    """Everything one client process needs to join and serve."""

    kit: StartupKit
    token: str
    server_name: str
    server_key: bytes
    address: tuple[str, int] | None = None
    bus: "Transport | None" = None
    runtime: WorkerRuntime | None = None
    fault_plan: "FaultPlan | None" = None
    compression: CompressionConfig | None = None
    extra_result_filters: list = field(default_factory=list)
    heartbeat_interval: float | None = 2.0
    poll_timeout: float = 1.0


def _export_telemetry(bus: Transport, name: str, server_name: str,
                      registry, profiler) -> None:
    """Ship this worker's snapshots to the server as one last message."""
    from .. import obs
    from . import codec as wire_codec_module

    snapshot = {
        "client": name,
        "metrics": registry.to_dict(),
        "profile": profiler.to_dict(),
        "transport": bus.metrics.to_dict(),
        "wire": wire_codec_module.wire_metrics.to_dict(),
    }
    try:
        bus.send_shareable(name, server_name, TELEMETRY_TOPIC,
                           Shareable({"telemetry": snapshot}))
    except TransportError:
        pass  # best-effort: a faulty fabric may eat the goodbye


def client_process_main(config: ClientProcessConfig,
                        learner_factory: Callable[[str], "Learner"],
                        gate=None) -> None:
    """Entry point of one client process: connect, serve tasks, exit on stop.

    Mirrors ``FederatedClient.serve_in_thread`` on its own node: idle
    receive timeouts keep the loop polling, corrupted frames (bad HMAC) are
    dropped without costing the process, and transport outages ride on the
    spoke's reconnect-with-backoff until the server's stop message lands.
    """
    name = config.kit.participant.name
    if config.runtime is not None:
        config.runtime.apply()
    registry = profiler = previous_registry = None
    if config.runtime is not None and config.runtime.telemetry:
        from ..obs import metrics as obs_metrics
        from ..obs.metrics import MetricsRegistry
        from ..obs.profiler import OpProfiler, get_profiler

        # fork copies the parent's installed profiler hook; detach that
        # inherited copy (it records into the parent session's dicts, which
        # no longer exist here in any useful sense) before arming our own
        inherited = get_profiler()
        if inherited is not None:
            inherited.uninstall()
        registry = MetricsRegistry()
        previous_registry = obs_metrics.set_registry(registry)
        profiler = OpProfiler().install()
    if config.bus is not None:
        # fork-inherited fabric (shm): the queues already exist; this
        # process just claims its endpoint and installs its keys below
        bus = config.bus
        owns_bus = False
    else:
        bus = SocketMessageBus.connect(config.address,
                                       fault_plan=config.fault_plan,
                                       heartbeat_interval=config.heartbeat_interval)
        owns_bus = True
    try:
        task_data_filters: list = []
        task_result_filters: list = list(config.extra_result_filters)
        if config.compression is not None:
            task_data_filters = config.compression.client_task_filters()
            task_result_filters += config.compression.client_result_filters()
        client = FederatedClient(config.kit, learner_factory(name), bus,
                                 task_result_filters=task_result_filters,
                                 task_data_filters=task_data_filters)
        client.token = config.token
        client.server_name = config.server_name
        bus.install_session_key(name, session_key_from_token(config.token))
        bus.register_peer(config.server_name)
        bus.install_session_key(config.server_name, config.server_key)
        client.fl_ctx.set_prop(ReservedKey.TOKEN, config.token)
        client.learner.initialize(client.fl_ctx)
        client.task_semaphore = gate
        try:
            while True:
                try:
                    if not client.poll_once(timeout=config.poll_timeout):
                        break
                except ReceiveTimeout:
                    continue  # idle; keep serving
                except SignatureError as error:
                    client.log_warning("rejected corrupted/forged task: %s", error)
                except TransportError as error:
                    client.log_warning("transport hiccup: %s", error)
                    time.sleep(config.poll_timeout)
        finally:
            client.learner.finalize(client.fl_ctx)
        if registry is not None and profiler is not None:
            from ..obs import metrics as obs_metrics

            profiler.uninstall()
            obs_metrics.set_registry(previous_registry)
            _export_telemetry(bus, name, config.server_name, registry, profiler)
    finally:
        if owns_bus:
            bus.close()


class ProcessClientRunner:
    """Launches and supervises one process per client site.

    Usage, given a hub-mode :class:`SocketMessageBus` and a registered
    :class:`FLServer` on it::

        runner = ProcessClientRunner(job.learner_factory, kits, server)
        tokens = runner.launch(client_names)
        ...  # run the controller against the hub
        server.stop_clients(client_names)
        runner.join()

    ``launch`` performs the registration handshake for every site in the
    parent (installing the client session keys on the hub), forks the
    client processes, and blocks until each spoke's endpoint announcement
    reaches the hub — so the first broadcast never races the connects.
    """

    def __init__(self, learner_factory: Callable[[str], "Learner"],
                 kits: dict[str, StartupKit], server: "FLServer", *,
                 compression: CompressionConfig | None = None,
                 extra_result_filters: list | None = None,
                 fault_plan: "FaultPlan | None" = None,
                 max_parallel: int | None = None,
                 heartbeat_interval: float | None = 2.0,
                 poll_timeout: float = 1.0,
                 start_method: str = "fork",
                 connect_timeout: float = 30.0,
                 runtime: WorkerRuntime | None = None) -> None:
        hub = server.bus
        if not isinstance(hub, (SocketMessageBus, ShmMessageBus)):
            raise TypeError("ProcessClientRunner needs the server on a "
                            "SocketMessageBus or ShmMessageBus hub; got "
                            f"{type(hub).__name__}")
        if isinstance(hub, ShmMessageBus) and start_method != "fork":
            raise ValueError("the shm fabric requires start_method='fork' "
                             "(its queues are inherited, not pickled)")
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} unavailable on this platform "
                f"(have: {multiprocessing.get_all_start_methods()})")
        self.learner_factory = learner_factory
        self.kits = kits
        self.server = server
        self.hub = hub
        self.compression = compression
        self.extra_result_filters = list(extra_result_filters or [])
        self.fault_plan = fault_plan
        self.max_parallel = max_parallel
        self.heartbeat_interval = heartbeat_interval
        self.poll_timeout = poll_timeout
        self.connect_timeout = connect_timeout
        self.runtime = runtime
        self._ctx = multiprocessing.get_context(start_method)
        self._processes: dict[str, multiprocessing.process.BaseProcess] = {}
        self.tokens: dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(self, name: str) -> str:
        """Run the token handshake for ``name`` in the parent; returns the token."""
        kit = self.kits[name]
        nonce = self.server.issue_nonce(name)
        proof = sign(nonce, kit.keypair)
        token = self.server.register_client(kit.certificate, nonce, proof)
        self.tokens[name] = token
        self.server.log_info(
            "Successfully registered client:%s for project simulator_server. Token:%s",
            name, token)
        return token

    def launch(self, client_names: list[str]) -> dict[str, str]:
        """Handshake, fork and wait for every client to come online."""
        server_key = self.hub.session_key(self.server.name)
        if server_key is None:
            raise TransportError("server has no session key on the hub")
        shm = isinstance(self.hub, ShmMessageBus)
        if shm:
            # the children's inboxes must exist before the fork — a queue
            # created afterwards would be invisible to every other process
            address = None
            for name in client_names:
                self.hub.register_endpoint(name)
        else:
            address = self.hub.address
        # One shared cross-process gate bounds how many sites train at once,
        # mirroring the threaded simulator's max_parallel semaphore.
        gate = (self._ctx.Semaphore(self.max_parallel)
                if self.max_parallel is not None else None)
        for name in client_names:
            token = self.tokens.get(name) or self.register(name)
            config = ClientProcessConfig(
                kit=self.kits[name], token=token, server_name=self.server.name,
                server_key=server_key, address=address,
                bus=self.hub if shm else None,
                runtime=self.runtime,
                fault_plan=self.fault_plan, compression=self.compression,
                extra_result_filters=self.extra_result_filters,
                heartbeat_interval=self.heartbeat_interval,
                poll_timeout=self.poll_timeout)
            process = self._ctx.Process(
                target=client_process_main,
                args=(config, self.learner_factory, gate),
                name=f"fl-client-{name}", daemon=True)
            process.start()
            self._processes[name] = process
        self.hub.wait_for_endpoints(client_names, timeout=self.connect_timeout)
        return dict(self.tokens)

    # ------------------------------------------------------------------
    def drain_telemetry(self, timeout: float = 10.0) -> dict[str, dict]:
        """Collect each worker's ``__telemetry__`` snapshot after the stop.

        Call between ``server.stop_clients(...)`` and :meth:`join`: every
        worker with telemetry armed sends one snapshot on its way out.
        Returns ``{client_name: snapshot}`` for whoever reported before the
        deadline — a crashed worker simply has no entry.
        """
        snapshots: dict[str, dict] = {}
        expected = {name for name, process in self._processes.items()}
        deadline = time.monotonic() + timeout
        while expected - set(snapshots):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                sender, topic, shareable = self.hub.receive(
                    self.server.name, timeout=remaining,
                    topic=TELEMETRY_TOPIC)
            except (ReceiveTimeout, TransportError):
                break
            except SignatureError:
                continue  # chaos plans may corrupt the goodbye; skip it
            if topic != TELEMETRY_TOPIC:
                continue  # stale round traffic; telemetry is all we want now
            snapshot = shareable.get("telemetry")
            if isinstance(snapshot, dict):
                snapshots[sender] = snapshot
        return snapshots

    # ------------------------------------------------------------------
    def alive(self) -> list[str]:
        return [name for name, process in self._processes.items()
                if process.is_alive()]

    def join(self, timeout: float = 30.0) -> dict[str, int | None]:
        """Join every client process; stragglers are terminated.

        Returns the exit code per site (negative = killed by signal,
        ``None`` should not occur after the join/terminate ladder).
        """
        deadline = time.monotonic() + timeout
        for name, process in self._processes.items():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for name, process in self._processes.items():
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=5.0)
        return {name: process.exitcode
                for name, process in self._processes.items()}

    def terminate(self) -> None:
        """Hard-stop every client process (fault cleanup path)."""
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
        self.join(timeout=5.0)
