"""FLServer: client manager (authentication) + the server side of the bus."""

from __future__ import annotations

import time

import numpy as np

from .constants import TELEMETRY_TOPIC, EventType, ReservedKey
from .events import FLComponent, format_names
from .fl_context import FLContext
from .provision import StartupKit, make_join_token
from .security import Certificate, verify
from .shareable import Shareable
from .transport import (
    MessageBus,
    ReceiveTimeout,
    RetryPolicy,
    SignatureError,
    TransportError,
)

__all__ = ["FLServer", "AuthenticationError"]

_STOP_TOPIC = "__stop__"


class AuthenticationError(RuntimeError):
    """Raised when a client fails the registration handshake."""


class FLServer(FLComponent):
    """Holds registered clients, issues tokens and sends/collects tasks."""

    def __init__(self, kit: StartupKit, bus: MessageBus, project_name: str = "",
                 seed: int = 0, retry_policy: RetryPolicy | None = None) -> None:
        super().__init__(name=kit.participant.name)
        self.kit = kit
        self.bus = bus
        self.project_name = project_name or kit.project_name
        self.fl_ctx = FLContext(identity=self.name)
        self.tokens: dict[str, str] = {}
        self.retry_policy = retry_policy or RetryPolicy()
        self.retries = 0
        # Optional callable fed every streamed worker telemetry delta the
        # moment the result loop dequeues one (process-per-client runs
        # interleave them with round traffic on the server inbox).  Without
        # a sink those messages are dropped from the result stream — they
        # must never be mistaken for a round contribution.
        self.telemetry_sink = None
        self._nonces: dict[str, bytes] = {}
        self._rng = np.random.default_rng(seed)
        bus.register_endpoint(self.name)
        # the server trusts itself immediately: install its own session key
        server_token = make_join_token(self._rng)
        from .client import session_key_from_token

        bus.install_session_key(self.name, session_key_from_token(server_token))

    # ------------------------------------------------------------------
    # registration handshake
    # ------------------------------------------------------------------
    def issue_nonce(self, client_name: str) -> bytes:
        """Step 1: hand the joining client a fresh challenge."""
        nonce = self._rng.bytes(32)
        self._nonces[client_name] = nonce
        return nonce

    def register_client(self, certificate: Certificate, nonce: bytes, proof: int) -> str:
        """Steps 2-3: verify certificate + proof-of-key, issue a join token."""
        name = certificate.subject
        expected = self._nonces.pop(name, None)
        if expected is None or expected != nonce:
            raise AuthenticationError(f"no outstanding nonce for {name!r}")
        # certificate must chain to the project CA
        ca_check = verify(certificate.payload_bytes(), certificate.signature,
                          self.kit.ca_public_key)
        if not ca_check:
            raise AuthenticationError(f"certificate of {name!r} not signed by project CA")
        if not verify(nonce, proof, certificate.public_key):
            raise AuthenticationError(f"{name!r} failed proof-of-possession")
        token = make_join_token(self._rng)
        self.tokens[name] = token
        from .client import session_key_from_token

        self.bus.register_endpoint(name)
        self.bus.install_session_key(name, session_key_from_token(token))
        self.log_info(
            "Client: New client %s@127.0.0.1 joined. Sent token: %s. Total clients: %d",
            name, token, len(self.tokens))
        self.fire_event(EventType.CLIENT_REGISTERED, self.fl_ctx)
        return token

    # ------------------------------------------------------------------
    # task fan-out / collection
    # ------------------------------------------------------------------
    def broadcast_task(self, task_name: str, shareable: Shareable,
                       targets: list[str],
                       overrides: dict[str, Shareable] | None = None) -> list[str]:
        """Send one task per target with batched, wave-based retry/backoff.

        ``overrides`` substitutes a different payload for specific targets —
        the wire-efficient controller uses it to send a full model to stale
        sites while everyone else gets a small delta.

        All targets get attempt 0 first; only the failures enter the next
        wave, with a single backoff sleep per wave instead of a serial full
        backoff per flaky target.  At massive-cohort fan-out (1,000 sites)
        that turns a worst case of ``targets * sum(delays)`` sleeping into
        ``max_attempts`` sleeps total.  Each target keeps one message id
        across its attempts, so receivers deduplicate resends exactly as in
        the serial path.

        Returns the targets that stayed unreachable after the retry budget —
        they never got the task and cannot answer, so callers should count
        them out of the expected results instead of waiting on them.
        """
        wave: list[list] = []  # [target, task, msg_id, last_error]
        for target in targets:
            if target not in self.tokens:
                raise AuthenticationError(f"client {target!r} is not registered")
            payload = shareable if overrides is None else overrides.get(target, shareable)
            task = Shareable(payload)  # shallow copy per recipient
            task.set_header(ReservedKey.TASK_NAME, task_name)
            wave.append([target, task, self.bus.next_msg_id(self.name), None])
        for attempt in range(self.retry_policy.max_attempts):
            if not wave:
                break
            if attempt > 0:
                time.sleep(self.retry_policy.delay_for(attempt - 1))
                self.retries += len(wave)
            failed: list[list] = []
            for entry in wave:
                target, task, msg_id, _ = entry
                try:
                    self.bus.send_shareable(self.name, target, task_name, task,
                                            msg_id=msg_id, attempt=attempt)
                except TransportError as error:
                    entry[3] = error
                    self.bus.metrics.counter("transport.send_failures",
                                             topic=task_name).inc()
                    failed.append(entry)
            wave = failed
        unreachable = [entry[0] for entry in wave]
        for target, _, _, error in wave:
            self.log_warning("task %r undeliverable to %s after %d attempt(s): %s",
                             task_name, target, self.retry_policy.max_attempts,
                             error)
        if unreachable:
            self.log_warning("task %r fan-out left %d/%d target(s) unreachable: %s",
                             task_name, len(unreachable), len(targets),
                             format_names(unreachable))
        return unreachable

    def next_result(self, timeout: float = 600.0) -> tuple[str, Shareable] | None:
        """Receive the next verified task result, or ``None`` on timeout.

        The single receive path shared by the synchronous round loop
        (:meth:`iter_results`) and the async controller's streaming fold:
        corrupted messages (HMAC failures) are logged and skipped, and
        streamed worker telemetry deltas are routed to ``telemetry_sink``
        instead of being mistaken for a round contribution.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                sender, topic, shareable = self.bus.receive(self.name,
                                                            timeout=remaining)
            except SignatureError as error:
                self.log_warning("rejected corrupted/forged result: %s", error)
                continue
            except ReceiveTimeout:
                return None
            if topic == TELEMETRY_TOPIC:
                snapshot = shareable.get("telemetry")
                if self.telemetry_sink is not None and isinstance(snapshot, dict):
                    self.telemetry_sink(snapshot)
                continue
            return sender, shareable

    def iter_results(self, expected: int, timeout: float = 600.0):
        """Yield up to ``expected`` task results as they arrive.

        The streaming half of the wire path: each ``(sender, shareable)``
        pair is handed to the caller the moment it is received and verified,
        so the caller can fold it into a running aggregate and drop the blob
        — the server never buffers a round's worth of model payloads.

        Stops early (without raising) when ``timeout`` expires, so results
        received before a late deadline are never lost.  Corrupted messages
        (HMAC failures) are logged and skipped without aborting the wait;
        each yielded Shareable still carries its own per-client return code
        for the caller to judge.
        """
        yielded = 0
        deadline = time.monotonic() + timeout
        while yielded < expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            result = self.next_result(timeout=remaining)
            if result is None:
                break
            yielded += 1
            yield result
        if yielded < expected:
            self.log_warning("collected %d/%d result(s) before the %.1fs deadline",
                             yielded, expected, timeout)

    def collect_results(self, expected: int, timeout: float = 600.0
                        ) -> list[tuple[str, Shareable]]:
        """Buffered variant of :meth:`iter_results` (kept for callers that
        genuinely need the whole round in memory, e.g. cross-site eval)."""
        return list(self.iter_results(expected, timeout=timeout))

    def stop_clients(self, targets: list[str]) -> None:
        """Best-effort shutdown fan-out; unreachable sites are only logged."""
        for target in targets:
            try:
                self.bus.send_shareable(self.name, target, _STOP_TOPIC, Shareable())
            except TransportError as error:
                self.log_warning("stop message to %s lost: %s", target, error)
