"""DXO — the Data Exchange Object.

NVFlare moves model weights and metrics between components inside DXOs: a
``data_kind`` tag, a dict payload, and free-form metadata.  This module also
provides the pickle-free wire codecs used by the transport layer, so
everything that crosses the simulated network is actually serialized and
deserialized.

Two codecs are supported and auto-detected by magic on decode:

``raw`` (default)
    The zero-copy binary tensor codec of :mod:`repro.flare.codec` — JSON
    manifest + aligned little-endian buffers.  Decoded arrays are read-only
    views over the blob.
``npz``
    The original JSON-header + ``np.savez`` block.  Kept as a correctness
    oracle (the raw codec must round-trip bit-identically against it) and
    for on-disk checkpoints; select it per-call (``to_bytes(codec="npz")``)
    or process-wide with :func:`set_wire_codec`.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Mapping

import numpy as np

from . import codec as _codec
from .constants import DataKind

__all__ = ["DXO", "MetaKey", "set_wire_codec", "get_wire_codec"]

_MAGIC = b"DXO1"

_WIRE_CODECS = ("raw", "raw+deflate", "npz")
_default_codec = "raw"


def set_wire_codec(name: str) -> str:
    """Set the process-wide default wire codec; returns the previous one."""
    global _default_codec
    if name not in _WIRE_CODECS:
        raise ValueError(f"unknown wire codec {name!r} (choose from {_WIRE_CODECS})")
    old = _default_codec
    _default_codec = name
    return old


def get_wire_codec() -> str:
    return _default_codec


class MetaKey:
    """Common DXO metadata keys."""

    NUM_STEPS_CURRENT_ROUND = "NUM_STEPS_CURRENT_ROUND"
    INITIAL_METRICS = "INITIAL_METRICS"
    VALIDATION_METRICS = "VALIDATION_METRICS"
    CLIENT_NAME = "CLIENT_NAME"
    CURRENT_ROUND = "CURRENT_ROUND"
    # Wire-compression bookkeeping (see repro.flare.filters)
    MODEL_VERSION = "compression.model_version"
    BASE_VERSION = "compression.base_version"
    FP16_DTYPES = "compression.fp16_dtypes"
    TOPK_SPEC = "compression.topk"


class DXO:
    """A typed payload: ``data_kind`` + dict of arrays/scalars + metadata."""

    def __init__(self, data_kind: str, data: Mapping[str, Any],
                 meta: Mapping[str, Any] | None = None) -> None:
        if not isinstance(data, Mapping):
            raise TypeError("DXO data must be a mapping")
        self.data_kind = data_kind
        self.data: dict[str, Any] = dict(data)
        self.meta: dict[str, Any] = dict(meta or {})

    # ------------------------------------------------------------------
    def get_meta_prop(self, key: str, default: Any = None) -> Any:
        return self.meta.get(key, default)

    def set_meta_prop(self, key: str, value: Any) -> None:
        self.meta[key] = value

    def validate(self) -> None:
        """Sanity-check payload against its declared kind."""
        known = {DataKind.WEIGHTS, DataKind.WEIGHT_DIFF, DataKind.METRICS, DataKind.COLLECTION}
        if self.data_kind not in known:
            raise ValueError(f"unknown data_kind {self.data_kind!r}")
        if self.data_kind in (DataKind.WEIGHTS, DataKind.WEIGHT_DIFF):
            for key, value in self.data.items():
                if not isinstance(value, np.ndarray):
                    raise TypeError(f"{self.data_kind} entry {key!r} is not an ndarray")

    # ------------------------------------------------------------------
    def _split_payload(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        arrays: dict[str, np.ndarray] = {}
        scalars: dict[str, Any] = {}
        for key, value in self.data.items():
            if isinstance(value, np.ndarray):
                arrays[key] = value
            elif isinstance(value, (int, float, str, bool, list, dict, type(None))):
                scalars[key] = value
            elif isinstance(value, (np.integer, np.floating)):
                scalars[key] = value.item()
            else:
                raise TypeError(f"cannot serialize data entry {key!r} of type {type(value)!r}")
        return arrays, scalars

    def to_bytes(self, codec: str | None = None) -> bytes:
        """Serialize with the given codec (default: the process-wide one)."""
        codec = codec or _default_codec
        arrays, scalars = self._split_payload()
        if codec in ("raw", "raw+deflate"):
            extra = {"data_kind": self.data_kind, "meta": self.meta,
                     "scalars": scalars}
            return _codec.encode_tensors(arrays, extra,
                                         deflate=(codec == "raw+deflate"))
        if codec != "npz":
            raise ValueError(f"unknown wire codec {codec!r} (choose from {_WIRE_CODECS})")
        # legacy layout: [magic][u32 json_len][json header][npz tensors]
        header = json.dumps({
            "data_kind": self.data_kind,
            "meta": self.meta,
            "scalars": scalars,
            # insertion order, not sorted: consumers iterate state dicts in
            # order, and both codecs must reconstruct the same ordering
            "array_keys": list(arrays),
        }).encode("utf-8")
        tensor_block = _codec.encode_tensors_npz(arrays) if arrays else b""
        return _MAGIC + struct.pack("<I", len(header)) + header + tensor_block

    @classmethod
    def from_bytes(cls, blob: bytes) -> "DXO":
        """Decode either wire format; raises ``ValueError`` on corrupt blobs.

        A blob off a faulty transport may be truncated or bit-flipped, so
        every length is validated before it is used for slicing: short or
        inconsistent blobs raise a clear :class:`ValueError` instead of a
        cryptic struct/json/zip traceback.
        """
        if len(blob) < 4:
            raise ValueError(f"not a DXO blob: {len(blob)} byte(s) is shorter "
                             "than the 4-byte magic")
        magic = bytes(blob[:4])
        if magic == _codec.MAGIC:
            arrays, extra = _codec.decode_tensors(blob)
            if "data_kind" not in extra:
                raise ValueError("corrupted DXO blob: tensor manifest carries "
                                 "no data_kind")
            data: dict[str, Any] = dict(extra.get("scalars", {}))
            data.update(arrays)
            return cls(data_kind=extra["data_kind"], data=data,
                       meta=extra.get("meta", {}))
        if magic != _MAGIC:
            raise ValueError(f"not a DXO blob (bad magic {magic!r})")
        if len(blob) < 8:
            raise ValueError(f"truncated DXO blob: {len(blob)} byte(s) is "
                             "shorter than the 8-byte header prefix")
        (header_len,) = struct.unpack("<I", blob[4:8])
        if 8 + header_len > len(blob):
            raise ValueError(f"truncated DXO blob: header length {header_len} "
                             f"overruns the {len(blob)}-byte blob")
        try:
            header = json.loads(blob[8:8 + header_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"corrupted DXO blob: header is not valid JSON "
                             f"({error})") from error
        if not isinstance(header, dict) or "data_kind" not in header:
            raise ValueError("corrupted DXO blob: header carries no data_kind")
        data = dict(header.get("scalars", {}))
        tensor_block = blob[8 + header_len:]
        array_keys = header.get("array_keys", [])
        if array_keys:
            arrays = _codec.decode_tensors_npz(tensor_block, keys=list(array_keys))
            data.update(arrays)
        return cls(data_kind=header["data_kind"], data=data, meta=header.get("meta", {}))

    def __repr__(self) -> str:
        return f"DXO(kind={self.data_kind}, keys={sorted(self.data)[:4]}..., meta={sorted(self.meta)})"
