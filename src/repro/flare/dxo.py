"""DXO — the Data Exchange Object.

NVFlare moves model weights and metrics between components inside DXOs: a
``data_kind`` tag, a dict payload, and free-form metadata.  This module also
provides a pickle-free wire codec (JSON header + npz tensor block) used by
the transport layer, so everything that crosses the simulated network is
actually serialized and deserialized.
"""

from __future__ import annotations

import io
import json
import struct
from typing import Any, Mapping

import numpy as np

from .constants import DataKind

__all__ = ["DXO", "MetaKey"]

_MAGIC = b"DXO1"


class MetaKey:
    """Common DXO metadata keys."""

    NUM_STEPS_CURRENT_ROUND = "NUM_STEPS_CURRENT_ROUND"
    INITIAL_METRICS = "INITIAL_METRICS"
    VALIDATION_METRICS = "VALIDATION_METRICS"
    CLIENT_NAME = "CLIENT_NAME"
    CURRENT_ROUND = "CURRENT_ROUND"


class DXO:
    """A typed payload: ``data_kind`` + dict of arrays/scalars + metadata."""

    def __init__(self, data_kind: str, data: Mapping[str, Any],
                 meta: Mapping[str, Any] | None = None) -> None:
        if not isinstance(data, Mapping):
            raise TypeError("DXO data must be a mapping")
        self.data_kind = data_kind
        self.data: dict[str, Any] = dict(data)
        self.meta: dict[str, Any] = dict(meta or {})

    # ------------------------------------------------------------------
    def get_meta_prop(self, key: str, default: Any = None) -> Any:
        return self.meta.get(key, default)

    def set_meta_prop(self, key: str, value: Any) -> None:
        self.meta[key] = value

    def validate(self) -> None:
        """Sanity-check payload against its declared kind."""
        known = {DataKind.WEIGHTS, DataKind.WEIGHT_DIFF, DataKind.METRICS, DataKind.COLLECTION}
        if self.data_kind not in known:
            raise ValueError(f"unknown data_kind {self.data_kind!r}")
        if self.data_kind in (DataKind.WEIGHTS, DataKind.WEIGHT_DIFF):
            for key, value in self.data.items():
                if not isinstance(value, np.ndarray):
                    raise TypeError(f"{self.data_kind} entry {key!r} is not an ndarray")

    # ------------------------------------------------------------------
    # wire codec: [magic][u32 json_len][json header][npz tensors]
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        arrays: dict[str, np.ndarray] = {}
        scalars: dict[str, Any] = {}
        for key, value in self.data.items():
            if isinstance(value, np.ndarray):
                arrays[key] = value
            elif isinstance(value, (int, float, str, bool, list, dict, type(None))):
                scalars[key] = value
            elif isinstance(value, (np.integer, np.floating)):
                scalars[key] = value.item()
            else:
                raise TypeError(f"cannot serialize data entry {key!r} of type {type(value)!r}")
        header = json.dumps({
            "data_kind": self.data_kind,
            "meta": self.meta,
            "scalars": scalars,
            "array_keys": sorted(arrays),
        }).encode("utf-8")
        tensor_block = b""
        if arrays:
            buffer = io.BytesIO()
            # npz forbids "/" etc. in member names only loosely; keys here are
            # model parameter names which np.savez accepts verbatim.
            np.savez(buffer, **arrays)
            tensor_block = buffer.getvalue()
        return _MAGIC + struct.pack("<I", len(header)) + header + tensor_block

    @classmethod
    def from_bytes(cls, blob: bytes) -> "DXO":
        if blob[:4] != _MAGIC:
            raise ValueError("not a DXO blob (bad magic)")
        (header_len,) = struct.unpack("<I", blob[4:8])
        header = json.loads(blob[8:8 + header_len].decode("utf-8"))
        data: dict[str, Any] = dict(header["scalars"])
        tensor_block = blob[8 + header_len:]
        if header["array_keys"]:
            with np.load(io.BytesIO(tensor_block), allow_pickle=False) as archive:
                for key in header["array_keys"]:
                    data[key] = archive[key].copy()
        return cls(data_kind=header["data_kind"], data=data, meta=header["meta"])

    def __repr__(self) -> str:
        return f"DXO(kind={self.data_kind}, keys={sorted(self.data)[:4]}..., meta={sorted(self.meta)})"
