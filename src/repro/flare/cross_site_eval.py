"""Cross-site model evaluation workflow.

After training, the server asks every site to validate the global model (and
optionally each other's submitted models) on its local validation data —
NVFlare's ``CrossSiteModelEval``.  The result is the site × model accuracy
matrix used to judge generalisation across heterogeneous clinics.
"""

from __future__ import annotations

import numpy as np

from .constants import DataKind, ReservedKey, ReturnCode, TaskName
from .dxo import DXO
from .events import FLComponent
from .server import FLServer
from .shareable import from_dxo, to_dxo

__all__ = ["CrossSiteModelEval"]


class CrossSiteModelEval(FLComponent):
    """Broadcast models for validation; collect a site × model metric grid."""

    def __init__(self, server: FLServer, client_names: list[str]) -> None:
        super().__init__(name="CrossSiteModelEval")
        if not client_names:
            raise ValueError("need at least one client")
        self.server = server
        self.client_names = list(client_names)

    def evaluate(self, models: dict[str, dict[str, np.ndarray]]
                 ) -> dict[str, dict[str, dict[str, float]]]:
        """Validate every named model on every site.

        Parameters
        ----------
        models:
            ``model_name -> state_dict`` (e.g. the global model and/or each
            site's best local model).

        Returns
        -------
        ``model_name -> site -> metrics`` nested mapping.
        """
        results: dict[str, dict[str, dict[str, float]]] = {}
        for model_name, weights in models.items():
            self.log_info("cross-site validation of model %r", model_name)
            dxo = DXO(data_kind=DataKind.WEIGHTS,
                      data={key: np.asarray(value) for key, value in weights.items()},
                      meta={"model_name": model_name})
            task = from_dxo(dxo)
            task.set_header(ReservedKey.TASK_NAME, TaskName.VALIDATE)
            unreachable = self.server.broadcast_task(TaskName.VALIDATE, task,
                                                     self.client_names)
            per_site: dict[str, dict[str, float]] = {}
            expected = len(self.client_names) - len(unreachable)
            for sender, reply in self.server.collect_results(expected):
                if reply.return_code != ReturnCode.OK:
                    self.log_warning("site %s failed validation of %r", sender, model_name)
                    continue
                metrics_dxo = to_dxo(reply)
                per_site[sender] = {key: float(value)
                                    for key, value in metrics_dxo.data.items()}
            results[model_name] = per_site
        return results

    @staticmethod
    def as_matrix(results: dict[str, dict[str, dict[str, float]]],
                  metric: str = "valid_acc") -> tuple[list[str], list[str], np.ndarray]:
        """Flatten nested results into (model_names, sites, matrix)."""
        model_names = sorted(results)
        sites = sorted({site for per_site in results.values() for site in per_site})
        matrix = np.full((len(model_names), len(sites)), np.nan)
        for i, model_name in enumerate(model_names):
            for j, site in enumerate(sites):
                value = results[model_name].get(site, {}).get(metric)
                if value is not None:
                    matrix[i, j] = value
        return model_names, sites, matrix
