"""ScatterAndGather: the federated workflow the paper runs.

Each round (paper Sec. III-A): broadcast the global model to every client,
wait for local training results, aggregate the weighted updates, persist the
new global model, validate it, repeat for E communication rounds.  The log
lines emitted here are the ones shown in the paper's Fig. 3.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.health import HealthMonitor
from .aggregators import Aggregator, MaterializationTracker
from .constants import DataKind, EventType, ReservedKey, ReturnCode, TaskName
from .dxo import DXO, MetaKey
from .events import FLComponent, format_names
from .filters import (
    CompressionConfig,
    DXOFilter,
    Float16Dequantize,
    Float16Quantize,
    TopKDensify,
    TopKSparsify,
    diff_tensors,
)
from .persistor import ModelPersistor
from .sampling import ClientSampler, UniformSampler
from .server import FLServer
from .shareable import Shareable, from_dxo, to_dxo
from .shareable_generator import FullModelShareableGenerator
from .stats import ClientRoundRecord, RoundRecord, RunStats

__all__ = ["ScatterAndGather"]

Evaluator = Callable[[dict[str, np.ndarray]], dict[str, float]]

# Byte-scaled histogram buckets (powers of four from 1 KiB to 4 GiB) for the
# per-round wire-traffic distribution; the registry's default buckets are
# seconds-scaled and would lump every round into the overflow bucket.
_BYTE_BUCKETS: tuple[float, ...] = tuple(float(1024 * 4 ** i) for i in range(16))


class ScatterAndGather(FLComponent):
    """The controller coordinating rounds on the server.

    Parameters
    ----------
    server:
        Registered :class:`FLServer` with a live message bus.
    client_names:
        Participating sites (must all be registered).
    initial_weights:
        Round-0 global model.
    aggregator, shareable_generator, persistor:
        Pluggable workflow components, as in an NVFlare job config.
    num_rounds:
        E communication rounds.
    evaluator:
        Optional server-side validation run on each new global model; its
        metrics land in the run stats (key ``valid_acc`` drives best-model
        tracking).
    result_filters:
        Server-side task-result filter chain.
    min_clients:
        Quorum: a round needs at least this many OK results to aggregate.
    max_failed_rounds:
        How many *consecutive* under-quorum rounds to tolerate before
        aborting the run.  The default 0 aborts on the first one (the
        historical behaviour); with N > 0 an under-quorum round keeps the
        previous global model, marks the missing sites as dropped and moves
        on, and only the (N+1)-th consecutive failure raises.
    compression:
        Optional :class:`CompressionConfig` switching on the wire-efficient
        path: the server-side decompression filters are prepended to
        ``result_filters``, the aggregator is pointed at WEIGHT_DIFF when
        delta encoding is on, broadcasts are fp16-quantized, and — with
        downlink deltas enabled — each round ships only a versioned diff of
        the global model to every site that acknowledged the previous one
        (sites with a stale or unknown model version get the full weights).
    health:
        Optional :class:`~repro.obs.health.HealthMonitor` evaluating every
        round as it completes: per-client update diagnostics, anomaly
        alerts (surfaced on ``RunStats.alerts`` and ``health.jsonl``), a
        per-round status line through the console logger, and — when the
        monitor's quarantine policy is armed — exclusion of persistently
        diverging clients from aggregation for a few rounds.
    """

    def __init__(self, server: FLServer, client_names: list[str],
                 initial_weights: dict[str, np.ndarray],
                 aggregator: Aggregator,
                 shareable_generator: FullModelShareableGenerator | None = None,
                 persistor: ModelPersistor | None = None,
                 num_rounds: int = 10,
                 evaluator: Evaluator | None = None,
                 result_filters: list[DXOFilter] | None = None,
                 min_clients: int | None = None,
                 clients_per_round: int | None = None,
                 result_timeout: float = 600.0,
                 max_failed_rounds: int = 0,
                 sampling_seed: int = 0,
                 sampler: ClientSampler | None = None,
                 compression: CompressionConfig | None = None,
                 health: HealthMonitor | None = None) -> None:
        super().__init__(name="ScatterAndGather")
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if not client_names:
            raise ValueError("need at least one client")
        if max_failed_rounds < 0:
            raise ValueError("max_failed_rounds must be non-negative")
        self.server = server
        self.client_names = list(client_names)
        self.global_weights = {key: np.asarray(value).copy()
                               for key, value in initial_weights.items()}
        self.aggregator = aggregator
        self.shareable_generator = shareable_generator or FullModelShareableGenerator()
        self.persistor = persistor
        self.num_rounds = num_rounds
        self.evaluator = evaluator
        self.result_filters = list(result_filters or [])
        if clients_per_round is not None and not 0 < clients_per_round <= len(client_names):
            raise ValueError("clients_per_round must be in [1, len(client_names)]")
        self.clients_per_round = clients_per_round
        self.result_timeout = result_timeout
        # Pluggable per-round cohort selection (repro.flare.sampling); the
        # default reproduces the historical seeded uniform draw.
        self.sampler = sampler if sampler is not None \
            else UniformSampler(seed=sampling_seed)
        default_min = clients_per_round if clients_per_round is not None else len(client_names)
        self.min_clients = min_clients if min_clients is not None else default_min
        if clients_per_round is not None and self.min_clients > clients_per_round:
            raise ValueError(
                f"min_clients={self.min_clients} can never be met when only "
                f"clients_per_round={clients_per_round} site(s) are tasked")
        self.max_failed_rounds = max_failed_rounds
        self._under_quorum_streak = 0
        self.compression = compression
        if compression is not None:
            self.result_filters = (compression.server_result_filters()
                                   + self.result_filters)
            compression.adapt_aggregator(self.aggregator)
        # Downlink-delta bookkeeping: the model (and version) each client is
        # known to hold, plus the last broadcast global to diff against.
        self._downlink_delta = bool(compression is not None and compression.delta
                                    and compression.downlink_delta)
        self._last_broadcast: dict[str, np.ndarray] | None = None
        self._broadcast_version = -1
        self._client_version: dict[str, int] = {}
        # Error feedback for sparsified downlink deltas: the part of each
        # round's delta that top-k truncation did not ship, carried into the
        # next round so every coordinate is eventually delivered.
        self._downlink_residual: dict[str, np.ndarray] = {}
        self.health = health
        self.stats = RunStats()
        # Bounded-materialization instrumentation: every decoded client
        # update is accounted while alive (in-flight fold + any aggregator
        # stash); the run's high-water mark lands on the stats.
        self.materialization = MaterializationTracker()
        self.aggregator.tracker = self.materialization

    # ------------------------------------------------------------------
    def run(self) -> RunStats:
        """Execute all rounds; returns the collected statistics."""
        fl_ctx = self.server.fl_ctx
        self.fire_event(EventType.START_RUN, fl_ctx)
        for round_number in range(self.num_rounds):
            with obs_trace.span("round", round=round_number) as round_span:
                self._run_round(round_number, fl_ctx)
                last = self.stats.rounds[-1] if self.stats.rounds else None
                if last is not None and last.round_number == round_number:
                    round_span.set_attr("quorum_met", last.quorum_met)
                    round_span.set_attr("n_clients", len(last.client_records))
        self.fire_event(EventType.END_RUN, fl_ctx)
        self.stats.messages_delivered = self.server.bus.delivered_count
        self.stats.bytes_delivered = self.server.bus.delivered_bytes
        self.stats.retries = self.server.bus.retry_count
        self.stats.duplicates_dropped = self.server.bus.duplicates_dropped
        self.stats.peak_materialized_updates = self.materialization.peak
        return self.stats

    # ------------------------------------------------------------------
    def _run_round(self, round_number: int, fl_ctx) -> None:
        round_started = time.perf_counter()
        self.log_info("Round %d started.", round_number)
        fl_ctx.set_prop(ReservedKey.CURRENT_ROUND, round_number)
        fl_ctx.set_prop("current_round", round_number)
        self.fire_event(EventType.ROUND_STARTED, fl_ctx)

        if self.clients_per_round is not None and self.clients_per_round < len(self.client_names):
            participants = self.sampler.sample(self.client_names,
                                               self.clients_per_round,
                                               round_number)
            self.log_info("sampled %d/%d clients for round %d: %s",
                          len(participants), len(self.client_names), round_number,
                          format_names(participants))
        else:
            participants = list(self.client_names)

        bytes_before = self.server.bus.delivered_bytes
        task, overrides = self._build_round_tasks(participants, round_number, fl_ctx)
        if self.health is not None:
            # Reference = exactly what this round broadcasts (post fp16/delta
            # canonicalization), so client updates are measured against it.
            self.health.begin_round(round_number, participants,
                                    reference=self.global_weights)
        broadcast_started = time.perf_counter()
        unreachable = self.server.broadcast_task(TaskName.TRAIN, task, participants,
                                                 overrides=overrides)
        if unreachable:
            self.log_warning("round %d: %d site(s) unreachable at broadcast: %s",
                             round_number, len(unreachable),
                             format_names(unreachable))
        self.fire_event(EventType.TASKS_BROADCAST, fl_ctx)

        record = RoundRecord(round_number=round_number)
        self.aggregator.reset()
        accepted = 0
        contributors: set[str] = set()
        expected = len(participants) - len(unreachable)
        # Streaming aggregation: each reply is decoded, filtered and folded
        # into the aggregator's running sums the moment it arrives, then its
        # blob goes out of scope — the server holds O(1) model copies at any
        # time instead of buffering every client's full state dict.
        for sender, reply in self.server.iter_results(expected,
                                                      timeout=self.result_timeout):
            if reply.return_code != ReturnCode.OK:
                if reply.return_code == ReturnCode.EXECUTION_EXCEPTION:
                    # the client decoded (and applied) the task data before
                    # its training failed, so its model cache is current
                    self._client_version[sender] = self._broadcast_version
                self.log_warning("client %s returned %s; skipping its update",
                                 sender, reply.return_code)
                continue
            self._client_version[sender] = self._broadcast_version
            dxo = to_dxo(reply)
            del reply
            self.materialization.acquire()  # decoded update is now live
            for result_filter in self.result_filters:
                with obs_trace.span("filter", stage="server_result",
                                    filter=type(result_filter).__name__,
                                    client=sender):
                    dxo = result_filter.process(dxo, fl_ctx)
            self.log_info("Contribution from %s received.", sender)
            if self.health is not None:
                self.health.record_update(
                    sender, dxo.data, data_kind=dxo.data_kind, meta=dxo.meta,
                    latency_seconds=time.perf_counter() - broadcast_started)
            if self.health is not None and self.health.is_quarantined(
                    sender, round_number):
                # Responded fine but is serving a quarantine window: its
                # diagnostics are recorded, its update is not aggregated and
                # it is not counted toward quorum.
                contributors.add(sender)
                self.log_warning("client %s is quarantined; excluding its "
                                 "update from aggregation", sender)
            elif self.aggregator.accept(dxo, sender, fl_ctx):
                accepted += 1
                contributors.add(sender)
            record.client_records.append(ClientRoundRecord(
                client=sender,
                round_number=round_number,
                train_loss=float(dxo.get_meta_prop("train_loss", float("nan"))),
                valid_acc=float(dxo.get_meta_prop("valid_acc", float("nan"))),
                num_steps=int(dxo.get_meta_prop(MetaKey.NUM_STEPS_CURRENT_ROUND, 0)),
                seconds=float(dxo.get_meta_prop("train_seconds", 0.0)),
            ))
            del dxo
            self.materialization.release()  # folded (or stash-accounted)
        record.dropped_clients = sorted(set(participants) - contributors)
        if record.dropped_clients:
            obs_metrics.counter("federation.dropped_clients").inc(len(record.dropped_clients))
            self.log_warning("round %d: dropped site(s): %s", round_number,
                             format_names(record.dropped_clients))

        obs_metrics.counter("federation.rounds").inc()
        if accepted < self.min_clients:
            obs_metrics.counter("federation.under_quorum_rounds").inc()
            self._under_quorum_streak += 1
            record.quorum_met = False
            record.seconds = time.perf_counter() - round_started
            record.bytes_on_wire = self.server.bus.delivered_bytes - bytes_before
            obs_metrics.histogram("federation.round_seconds").observe(record.seconds)
            obs_metrics.histogram("federation.round_bytes",
                                  buckets=_BYTE_BUCKETS).observe(record.bytes_on_wire)
            self.stats.add_round(record)
            self._finish_health_round(record)
            if self._under_quorum_streak > self.max_failed_rounds:
                raise RuntimeError(
                    f"round {round_number}: only {accepted} usable results "
                    f"(min_clients={self.min_clients}) after "
                    f"{self._under_quorum_streak} consecutive under-quorum round(s)")
            self.log_warning(
                "round %d: under quorum (%d/%d); keeping previous global model "
                "(%d/%d tolerated failures)", round_number, accepted,
                self.min_clients, self._under_quorum_streak, self.max_failed_rounds)
            self.fire_event(EventType.ROUND_DONE, fl_ctx)
            return
        self._under_quorum_streak = 0

        self.fire_event(EventType.BEFORE_AGGREGATION, fl_ctx)
        with obs_trace.span("aggregate", round=round_number):
            aggregation_started = time.perf_counter()
            aggregated = self.aggregator.aggregate(fl_ctx)
            obs_metrics.histogram("federation.aggregation_seconds").observe(
                time.perf_counter() - aggregation_started)
        self.log_info("End aggregation.")
        self.global_weights = self.shareable_generator.dxo_to_learnable(
            aggregated, self.global_weights)
        self.fire_event(EventType.AFTER_AGGREGATION, fl_ctx)

        if self.evaluator is not None:
            record.global_metrics = dict(self.evaluator(self.global_weights))
        if self.persistor is not None:
            self.persistor.save(self.global_weights, fl_ctx,
                                metric=record.global_metrics.get("valid_acc"))
        record.seconds = time.perf_counter() - round_started
        record.bytes_on_wire = self.server.bus.delivered_bytes - bytes_before
        obs_metrics.histogram("federation.round_seconds").observe(record.seconds)
        obs_metrics.histogram("federation.round_bytes",
                              buckets=_BYTE_BUCKETS).observe(record.bytes_on_wire)
        self.stats.add_round(record)
        self._finish_health_round(record)
        self.log_info("Round %d finished.", round_number)
        self.fire_event(EventType.ROUND_DONE, fl_ctx)

    # ------------------------------------------------------------------
    def _finish_health_round(self, record: RoundRecord) -> None:
        """Close the health monitor's round and surface its verdicts."""
        if self.health is None:
            return
        round_health, alerts = self.health.end_round(
            seconds=record.seconds,
            bytes_on_wire=record.bytes_on_wire,
            quorum_met=record.quorum_met,
            global_metrics=record.global_metrics,
            # Under quorum the global model did not move; passing no new
            # global keeps the aggregate-update norm/cosines undefined.
            new_global=self.global_weights if record.quorum_met else None)
        record.quarantined_clients = list(round_health.quarantined)
        self.stats.alerts.extend(alerts)
        self.log_info("%s", self.health.status_line(round_health, alerts))

    # ------------------------------------------------------------------
    # downlink payload construction
    # ------------------------------------------------------------------
    def _build_round_tasks(self, participants: list[str], round_number: int,
                           fl_ctx) -> tuple[Shareable, dict[str, Shareable] | None]:
        """Build the round's task payload(s).

        Without compression this is the historical path: one full-model
        shareable for everyone.  With compression, the broadcast global is
        (optionally) rounded through fp16 — making the canonical model
        bit-identical on both ends of the wire — and, once a baseline has
        been established, sites that acknowledged the previous broadcast
        receive a small versioned WEIGHT_DIFF while stale or unknown sites
        get the full weights.
        """
        if self.compression is None:
            task = self.shareable_generator.learnable_to_shareable(
                self.global_weights, fl_ctx)
            task.set_header(ReservedKey.ROUND_NUMBER, round_number)
            task.set_header(ReservedKey.TOTAL_ROUNDS, self.num_rounds)
            return task, None

        if self.compression.float16:
            # Quantize the canonical global once per round so the base the
            # clients diff against is exactly the model the server holds;
            # idempotent, so unchanged (under-quorum) models are stable.
            self.global_weights = {
                key: value.astype(np.float16).astype(value.dtype)
                if value.dtype in (np.float32, np.float64) else value
                for key, value in ((k, np.asarray(v))
                                   for k, v in self.global_weights.items())}

        version = round_number
        synced: list[str] = []
        if (self._downlink_delta and self._last_broadcast is not None
                and set(self._last_broadcast) == set(self.global_weights)):
            synced = [client for client in participants
                      if self._client_version.get(client) == self._broadcast_version]
        payloads: dict[str, DXO] = {}
        if synced:
            delta = {key: diff_tensors(self.global_weights[key],
                                       self._last_broadcast[key])
                     for key in self.global_weights}
            meta = {MetaKey.MODEL_VERSION: version,
                    MetaKey.BASE_VERSION: self._broadcast_version}
            payloads["delta"] = self._encode_downlink_delta(delta, meta, fl_ctx)
        # built after any error-feedback truncation, so full-broadcast sites
        # receive exactly the model the delta sites reconstruct
        payloads["full"] = DXO(data_kind=DataKind.WEIGHTS,
                               data=self.global_weights,
                               meta={MetaKey.MODEL_VERSION: version})

        encoded: dict[str, Shareable] = {}
        for kind, dxo in payloads.items():
            for task_filter in self.compression.downlink_task_filters():
                with obs_trace.span("filter", stage="downlink",
                                    filter=type(task_filter).__name__):
                    dxo = task_filter.process(dxo, fl_ctx)
            shareable = from_dxo(dxo)
            shareable.set_header(ReservedKey.ROUND_NUMBER, round_number)
            shareable.set_header(ReservedKey.TOTAL_ROUNDS, self.num_rounds)
            encoded[kind] = shareable
        if synced:
            self.log_info(
                "round %d: delta broadcast to %d/%d site(s), full model to the rest",
                round_number, len(synced), len(participants))

        if self._downlink_delta:
            # base for the next round's diff: what this round put on the wire
            # (dxo_to_learnable always builds fresh arrays, so references are
            # stable across the coming aggregation)
            self._last_broadcast = {key: np.asarray(value)
                                    for key, value in self.global_weights.items()}
        self._broadcast_version = version
        overrides = ({client: encoded["delta"] for client in synced}
                     if synced else None)
        return encoded["full"], overrides

    def _encode_downlink_delta(self, delta: dict[str, np.ndarray], meta: dict,
                               fl_ctx) -> DXO:
        """Build the delta payload, keeping server and clients bit-identical.

        The payload — exactly as the clients will reconstruct it after
        dequantization/densification — also becomes the canonical global
        model, rebuilt with the same ``base + shipped`` arithmetic the
        clients run, so every synced site and the server hold the same
        weights bit for bit.  (Even the lossless f32 path needs this:
        ``base + (g - base)`` can differ from ``g`` by an ulp.)  Whatever the
        truncation/rounding did not deliver is carried in
        ``_downlink_residual`` into the next round's delta: no update is
        lost, only deferred.
        """
        for key, remainder in self._downlink_residual.items():
            if key in delta and delta[key].dtype.kind == "f":
                delta[key] = delta[key] + remainder
        if self.compression.top_k:
            dense = DXO(data_kind=DataKind.WEIGHT_DIFF, data=delta,
                        meta=dict(meta))
            payload = TopKSparsify(ratio=self.compression.top_k).process(
                dense, fl_ctx)
            if self.compression.float16:
                # round the shipped values through fp16 up front so the
                # canonical model matches what the wire actually delivers
                payload = Float16Quantize().process(payload, fl_ctx)
                shipped = TopKDensify().process(
                    Float16Dequantize().process(payload, fl_ctx), fl_ctx).data
            else:
                shipped = TopKDensify().process(payload, fl_ctx).data
        elif self.compression.float16:
            # dense fp16 delta: the difference of two fp16-representable
            # models need not be fp16-representable, so pre-round it and
            # account the rounding in the residual
            shipped = {key: value.astype(np.float16).astype(value.dtype)
                       if value.dtype in (np.float32, np.float64) else value
                       for key, value in delta.items()}
            payload = DXO(data_kind=DataKind.WEIGHT_DIFF, data=shipped,
                          meta=dict(meta))
        else:
            shipped = delta
            payload = DXO(data_kind=DataKind.WEIGHT_DIFF, data=delta,
                          meta=dict(meta))
        target = self.global_weights
        # same expression DeltaDecode evaluates, so the result is bit-equal
        self.global_weights = {
            key: (np.asarray(self._last_broadcast[key]) + np.asarray(shipped[key]))
            .astype(np.asarray(target[key]).dtype, copy=False)
            for key in target}
        self._downlink_residual = {
            key: delta[key] - diff_tensors(self.global_weights[key],
                                           self._last_broadcast[key])
            for key in delta if delta[key].dtype.kind == "f"}
        return payload
