"""ScatterAndGather: the federated workflow the paper runs.

Each round (paper Sec. III-A): broadcast the global model to every client,
wait for local training results, aggregate the weighted updates, persist the
new global model, validate it, repeat for E communication rounds.  The log
lines emitted here are the ones shown in the paper's Fig. 3.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .aggregators import Aggregator
from .constants import EventType, ReservedKey, ReturnCode, TaskName
from .dxo import MetaKey
from .events import FLComponent
from .filters import DXOFilter
from .persistor import ModelPersistor
from .server import FLServer
from .shareable import to_dxo
from .shareable_generator import FullModelShareableGenerator
from .stats import ClientRoundRecord, RoundRecord, RunStats

__all__ = ["ScatterAndGather"]

Evaluator = Callable[[dict[str, np.ndarray]], dict[str, float]]


class ScatterAndGather(FLComponent):
    """The controller coordinating rounds on the server.

    Parameters
    ----------
    server:
        Registered :class:`FLServer` with a live message bus.
    client_names:
        Participating sites (must all be registered).
    initial_weights:
        Round-0 global model.
    aggregator, shareable_generator, persistor:
        Pluggable workflow components, as in an NVFlare job config.
    num_rounds:
        E communication rounds.
    evaluator:
        Optional server-side validation run on each new global model; its
        metrics land in the run stats (key ``valid_acc`` drives best-model
        tracking).
    result_filters:
        Server-side task-result filter chain.
    min_clients:
        Quorum: a round needs at least this many OK results to aggregate.
    max_failed_rounds:
        How many *consecutive* under-quorum rounds to tolerate before
        aborting the run.  The default 0 aborts on the first one (the
        historical behaviour); with N > 0 an under-quorum round keeps the
        previous global model, marks the missing sites as dropped and moves
        on, and only the (N+1)-th consecutive failure raises.
    """

    def __init__(self, server: FLServer, client_names: list[str],
                 initial_weights: dict[str, np.ndarray],
                 aggregator: Aggregator,
                 shareable_generator: FullModelShareableGenerator | None = None,
                 persistor: ModelPersistor | None = None,
                 num_rounds: int = 10,
                 evaluator: Evaluator | None = None,
                 result_filters: list[DXOFilter] | None = None,
                 min_clients: int | None = None,
                 clients_per_round: int | None = None,
                 result_timeout: float = 600.0,
                 max_failed_rounds: int = 0,
                 sampling_seed: int = 0) -> None:
        super().__init__(name="ScatterAndGather")
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if not client_names:
            raise ValueError("need at least one client")
        if max_failed_rounds < 0:
            raise ValueError("max_failed_rounds must be non-negative")
        self.server = server
        self.client_names = list(client_names)
        self.global_weights = {key: np.asarray(value).copy()
                               for key, value in initial_weights.items()}
        self.aggregator = aggregator
        self.shareable_generator = shareable_generator or FullModelShareableGenerator()
        self.persistor = persistor
        self.num_rounds = num_rounds
        self.evaluator = evaluator
        self.result_filters = list(result_filters or [])
        if clients_per_round is not None and not 0 < clients_per_round <= len(client_names):
            raise ValueError("clients_per_round must be in [1, len(client_names)]")
        self.clients_per_round = clients_per_round
        self.result_timeout = result_timeout
        self._sampling_rng = np.random.default_rng(sampling_seed)
        default_min = clients_per_round if clients_per_round is not None else len(client_names)
        self.min_clients = min_clients if min_clients is not None else default_min
        self.max_failed_rounds = max_failed_rounds
        self._under_quorum_streak = 0
        self.stats = RunStats()

    # ------------------------------------------------------------------
    def run(self) -> RunStats:
        """Execute all rounds; returns the collected statistics."""
        fl_ctx = self.server.fl_ctx
        self.fire_event(EventType.START_RUN, fl_ctx)
        for round_number in range(self.num_rounds):
            with obs_trace.span("round", round=round_number) as round_span:
                self._run_round(round_number, fl_ctx)
                last = self.stats.rounds[-1] if self.stats.rounds else None
                if last is not None and last.round_number == round_number:
                    round_span.set_attr("quorum_met", last.quorum_met)
                    round_span.set_attr("n_clients", len(last.client_records))
        self.fire_event(EventType.END_RUN, fl_ctx)
        self.stats.messages_delivered = self.server.bus.delivered_count
        self.stats.bytes_delivered = self.server.bus.delivered_bytes
        self.stats.retries = self.server.bus.retry_count
        self.stats.duplicates_dropped = self.server.bus.duplicates_dropped
        return self.stats

    # ------------------------------------------------------------------
    def _run_round(self, round_number: int, fl_ctx) -> None:
        round_started = time.perf_counter()
        self.log_info("Round %d started.", round_number)
        fl_ctx.set_prop(ReservedKey.CURRENT_ROUND, round_number)
        fl_ctx.set_prop("current_round", round_number)
        self.fire_event(EventType.ROUND_STARTED, fl_ctx)

        if self.clients_per_round is not None and self.clients_per_round < len(self.client_names):
            chosen = self._sampling_rng.choice(len(self.client_names),
                                               size=self.clients_per_round,
                                               replace=False)
            participants = [self.client_names[index] for index in sorted(chosen)]
            self.log_info("sampled %d/%d clients for round %d: %s",
                          len(participants), len(self.client_names), round_number,
                          ", ".join(participants))
        else:
            participants = list(self.client_names)

        task = self.shareable_generator.learnable_to_shareable(self.global_weights, fl_ctx)
        task.set_header(ReservedKey.ROUND_NUMBER, round_number)
        task.set_header(ReservedKey.TOTAL_ROUNDS, self.num_rounds)
        unreachable = self.server.broadcast_task(TaskName.TRAIN, task, participants)
        if unreachable:
            self.log_warning("round %d: %d site(s) unreachable at broadcast: %s",
                             round_number, len(unreachable), ", ".join(unreachable))
        self.fire_event(EventType.TASKS_BROADCAST, fl_ctx)

        record = RoundRecord(round_number=round_number)
        self.aggregator.reset()
        accepted = 0
        contributors: set[str] = set()
        expected = len(participants) - len(unreachable)
        replies = self.server.collect_results(expected, timeout=self.result_timeout)
        for sender, reply in replies:
            if reply.return_code != ReturnCode.OK:
                self.log_warning("client %s returned %s; skipping its update",
                                 sender, reply.return_code)
                continue
            dxo = to_dxo(reply)
            for result_filter in self.result_filters:
                dxo = result_filter.process(dxo, fl_ctx)
            self.log_info("Contribution from %s received.", sender)
            if self.aggregator.accept(dxo, sender, fl_ctx):
                accepted += 1
                contributors.add(sender)
            record.client_records.append(ClientRoundRecord(
                client=sender,
                round_number=round_number,
                train_loss=float(dxo.get_meta_prop("train_loss", float("nan"))),
                valid_acc=float(dxo.get_meta_prop("valid_acc", float("nan"))),
                num_steps=int(dxo.get_meta_prop(MetaKey.NUM_STEPS_CURRENT_ROUND, 0)),
                seconds=float(dxo.get_meta_prop("train_seconds", 0.0)),
            ))
        record.dropped_clients = sorted(set(participants) - contributors)
        if record.dropped_clients:
            obs_metrics.counter("federation.dropped_clients").inc(len(record.dropped_clients))
            self.log_warning("round %d: dropped site(s): %s", round_number,
                             ", ".join(record.dropped_clients))

        obs_metrics.counter("federation.rounds").inc()
        if accepted < self.min_clients:
            obs_metrics.counter("federation.under_quorum_rounds").inc()
            self._under_quorum_streak += 1
            record.quorum_met = False
            record.seconds = time.perf_counter() - round_started
            obs_metrics.histogram("federation.round_seconds").observe(record.seconds)
            self.stats.add_round(record)
            if self._under_quorum_streak > self.max_failed_rounds:
                raise RuntimeError(
                    f"round {round_number}: only {accepted} usable results "
                    f"(min_clients={self.min_clients}) after "
                    f"{self._under_quorum_streak} consecutive under-quorum round(s)")
            self.log_warning(
                "round %d: under quorum (%d/%d); keeping previous global model "
                "(%d/%d tolerated failures)", round_number, accepted,
                self.min_clients, self._under_quorum_streak, self.max_failed_rounds)
            self.fire_event(EventType.ROUND_DONE, fl_ctx)
            return
        self._under_quorum_streak = 0

        self.fire_event(EventType.BEFORE_AGGREGATION, fl_ctx)
        with obs_trace.span("aggregate", round=round_number):
            aggregation_started = time.perf_counter()
            aggregated = self.aggregator.aggregate(fl_ctx)
            obs_metrics.histogram("federation.aggregation_seconds").observe(
                time.perf_counter() - aggregation_started)
        self.log_info("End aggregation.")
        self.global_weights = self.shareable_generator.dxo_to_learnable(
            aggregated, self.global_weights)
        self.fire_event(EventType.AFTER_AGGREGATION, fl_ctx)

        if self.evaluator is not None:
            record.global_metrics = dict(self.evaluator(self.global_weights))
        if self.persistor is not None:
            self.persistor.save(self.global_weights, fl_ctx,
                                metric=record.global_metrics.get("valid_acc"))
        record.seconds = time.perf_counter() - round_started
        obs_metrics.histogram("federation.round_seconds").observe(record.seconds)
        self.stats.add_round(record)
        self.log_info("Round %d finished.", round_number)
        self.fire_event(EventType.ROUND_DONE, fl_ctx)
