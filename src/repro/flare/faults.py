"""Deterministic fault injection for both transport fabrics.

Real NVFlare deployments sit on flaky hospital-site networks: messages get
dropped, delayed, duplicated or corrupted, and whole sites crash mid-job.
A seeded :class:`FaultPlan` makes chaos scenarios reproducible bit-for-bit —
every fault decision is a pure hash of ``(seed, kind, sender, recipient,
topic, msg_id, attempt)``, never of wall-clock time or thread scheduling,
so the *same plan makes the same per-message decisions on the in-memory bus
and on the socket transport* (each node applies the plan to the messages it
dispatches, exactly where the in-memory bus applies it).

:class:`FaultyMessageBus` wraps the simulator's in-memory
:class:`MessageBus`; ``SocketMessageBus(fault_plan=...)`` arms the same
:class:`FaultInjector` on the socket path.

Fault semantics (mirroring what a real channel does):

- **drop** — the send raises :class:`TransportError`, as a broken socket
  would; the sender's retry loop (``send_with_retry``) gets a fresh,
  independently-seeded decision per attempt.
- **crash** — every message to or from a crashed site fails; the site
  registered fine but is gone, so the controller marks it dropped.
- **straggler / delay** — delivery is held back by sleeping in the sender's
  thread before the dispatch (no extra timer threads to leak).
- **duplicate** — the envelope is dispatched twice; the receiver's
  message-id dedup makes delivery exactly-once anyway.
- **corrupt** — a body byte is flipped *after* signing, so the receiver's
  HMAC check rejects the message instead of decoding garbage.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry
from .constants import ReservedKey
from .transport import Message, MessageBus, TransportError

__all__ = ["FaultPlan", "FaultInjector", "FaultyMessageBus"]

_FAULT_KINDS = ("drop", "crash", "duplicate", "corrupt", "delay")


@dataclass
class FaultPlan:
    """Seeded description of which faults to inject and how often.

    Schema (all probabilities in ``[0, 1]``):

    - ``seed`` — root of every fault decision; same plan + same message
      stream ⇒ same faults.
    - ``drop_prob`` — chance each send attempt fails outright.
    - ``duplicate_prob`` — chance a delivered message is enqueued twice.
    - ``corrupt_prob`` — chance a delivered body is bit-flipped in flight.
    - ``delay_prob`` / ``max_delay`` — chance a delivery is held back, and
      the upper bound (seconds) of the injected latency.
    - ``crashed_clients`` — sites that are down for the whole run; every
      message to or from them fails.
    - ``stragglers`` — ``site -> seconds`` of fixed extra latency on every
      message that site sends.
    """

    seed: int = 0
    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    corrupt_prob: float = 0.0
    delay_prob: float = 0.0
    max_delay: float = 0.02
    crashed_clients: tuple[str, ...] = ()
    stragglers: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("drop_prob", "duplicate_prob", "corrupt_prob", "delay_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if any(delay < 0 for delay in self.stragglers.values()):
            raise ValueError("straggler delays must be non-negative")
        self.crashed_clients = tuple(self.crashed_clients)

    # ------------------------------------------------------------------
    def unit(self, kind: str, key: str) -> float:
        """Deterministic pseudo-random draw in ``[0, 1)`` for one decision."""
        digest = hashlib.sha256(f"{self.seed}|{kind}|{key}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little") / 2.0 ** 64


class FaultInjector:
    """Applies a :class:`FaultPlan` to messages at dispatch time.

    Transport-agnostic: :class:`FaultyMessageBus` runs it in front of the
    in-memory enqueue, ``SocketMessageBus`` in front of the frame write.
    Injections are tagged counters in the owning bus's registry, so a
    telemetry session exports them alongside delivery totals.
    """

    def __init__(self, plan: FaultPlan, registry: MetricsRegistry) -> None:
        self.plan = plan
        self._counters = {kind: registry.counter("transport.faults", kind=kind)
                          for kind in _FAULT_KINDS}

    def count(self, kind: str) -> int:
        return int(self._counters[kind].value)

    def apply(self, message: Message) -> list[Message]:
        """Fault one dispatch; returns the envelope(s) to actually deliver.

        Raises :class:`TransportError` for drop/crash faults (the sender
        sees a failed write), sleeps in the calling thread for delays,
        flips a signed body byte for corruptions, and returns the message
        twice for duplicates.
        """
        plan = self.plan
        decision_key = "|".join((
            message.sender, message.recipient, message.topic,
            str(message.headers.get(ReservedKey.MSG_ID, "")),
            str(message.headers.get(ReservedKey.ATTEMPT, 0))))

        for endpoint in (message.sender, message.recipient):
            if endpoint in plan.crashed_clients:
                self._counters["crash"].inc()
                raise TransportError(
                    f"injected crash: site {endpoint!r} is down "
                    f"(message {message.topic!r} lost)")

        if plan.drop_prob and plan.unit("drop", decision_key) < plan.drop_prob:
            self._counters["drop"].inc()
            raise TransportError(
                f"injected drop of {message.topic!r} from {message.sender!r} "
                f"to {message.recipient!r}")

        delay = plan.stragglers.get(message.sender, 0.0)
        if plan.delay_prob and plan.unit("delay", decision_key) < plan.delay_prob:
            delay += plan.max_delay * plan.unit("delay-amount", decision_key)
        if delay > 0:
            self._counters["delay"].inc()
            time.sleep(delay)

        if plan.corrupt_prob and plan.unit("corrupt", decision_key) < plan.corrupt_prob:
            self._counters["corrupt"].inc()
            if message.body:
                flip_at = len(message.body) // 2
                message.body = (message.body[:flip_at]
                                + bytes([message.body[flip_at] ^ 0xFF])
                                + message.body[flip_at + 1:])
            else:
                message.signature = "0" * len(message.signature)

        if plan.duplicate_prob and plan.unit("duplicate", decision_key) < plan.duplicate_prob:
            self._counters["duplicate"].inc()
            return [message, message]
        return [message]


class FaultyMessageBus(MessageBus):
    """A :class:`MessageBus` that injects the faults described by a plan.

    Drop/crash faults surface to the *sender* as :class:`TransportError`
    (like a failed socket write), which is what drives the retry/backoff
    layer; duplicate/corrupt/delay faults happen silently in flight, which
    is what drives the receiver-side dedup and HMAC defenses.
    """

    def __init__(self, plan: FaultPlan) -> None:
        super().__init__()
        self.plan = plan
        self._injector = FaultInjector(plan, self.metrics)

    @property
    def injected_drops(self) -> int:
        return self._injector.count("drop")

    @property
    def injected_crash_drops(self) -> int:
        return self._injector.count("crash")

    @property
    def injected_duplicates(self) -> int:
        return self._injector.count("duplicate")

    @property
    def injected_corruptions(self) -> int:
        return self._injector.count("corrupt")

    @property
    def injected_delays(self) -> int:
        return self._injector.count("delay")

    def fault_counts(self) -> dict[str, int]:
        """JSON-safe summary of everything injected so far."""
        return {"drops": self.injected_drops,
                "crash_drops": self.injected_crash_drops,
                "duplicates": self.injected_duplicates,
                "corruptions": self.injected_corruptions,
                "delays": self.injected_delays}

    # ------------------------------------------------------------------
    def _enqueue(self, message: Message) -> None:
        for copy in self._injector.apply(message):
            super()._enqueue(copy)
