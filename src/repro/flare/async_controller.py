"""AsyncScatterAndGather: FedBuff-style buffered asynchronous aggregation.

The synchronous :class:`~repro.flare.controller.ScatterAndGather` runs a
round barrier: every sampled site must answer (or time out) before the
global model moves.  At massive cohort sizes the barrier makes each round as
slow as its slowest site.  This controller removes it, after FedBuff
(Nguyen et al., AISTATS 2022):

- the global model carries a **version** (the number of commits so far);
- at most ``concurrency`` sites hold an outstanding task at any instant,
  each stamped with the version it started from;
- updates are admitted **as they stream in** and folded immediately with a
  staleness-discounted weight ``w / (1 + s)**staleness_alpha`` where ``s``
  is how many commits the global advanced since the update's dispatch;
- every ``buffer_size`` accepted updates the buffer is **committed**: the
  aggregate becomes the new global, the version advances, and freed sites
  are re-tasked with the fresh model.

Quorum machinery is reused from the synchronous path: a commit window that
times out with at least ``min_clients`` accepted updates commits the partial
buffer; with fewer it keeps the previous global and counts against
``max_failed_rounds`` exactly like an under-quorum synchronous round.  The
health monitor's per-update diagnostics and quarantine windows apply
unchanged (a quarantined site's update is recorded but not folded).

Determinism: under the in-memory fabric with ``SimulatorRunner``'s
sequential drive (``threads=False``) every dispatch wave is answered
synchronously and in registration order, and sampling is a pure function of
``(seed, wave)`` — so a same-seed run is bit-reproducible, which the
massive-cohort gate (`scripts/cohort_smoke.py`) asserts.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.health import HealthMonitor
from .aggregators import Aggregator, MaterializationTracker
from .constants import EventType, ReservedKey, ReturnCode, TaskName
from .controller import _BYTE_BUCKETS, Evaluator
from .dxo import MetaKey
from .events import FLComponent, format_names
from .filters import DXOFilter
from .persistor import ModelPersistor
from .sampling import ClientSampler, UniformSampler
from .server import FLServer
from .shareable import to_dxo
from .shareable_generator import FullModelShareableGenerator
from .stats import ClientRoundRecord, RoundRecord, RunStats

__all__ = ["AsyncScatterAndGather", "staleness_discount"]


def staleness_discount(staleness: int, alpha: float) -> float:
    """FedBuff's polynomial staleness penalty: ``1 / (1 + s)**alpha``."""
    return 1.0 / (1.0 + max(0, int(staleness))) ** alpha


class AsyncScatterAndGather(FLComponent):
    """Buffered asynchronous federated aggregation (FedBuff-style).

    Parameters mirror :class:`ScatterAndGather` where shared; the async-only
    knobs are:

    buffer_size:
        Accepted updates per global commit (FedBuff's K).
    concurrency:
        Target number of sites holding an outstanding task at any instant
        (FedBuff's Mc).  Defaults to ``min(2 * buffer_size, n_sites)`` so
        the buffer refills while stale stragglers are still training.
    staleness_alpha:
        Exponent of the staleness discount; 0 disables discounting.
    max_staleness:
        Updates whose dispatch version is more than this many commits old
        are dropped instead of folded (``None`` = accept any staleness).
    num_rounds:
        Number of global commits to run (each commit is recorded as one
        round in the run stats, so downstream tooling needs no changes).
    """

    def __init__(self, server: FLServer, client_names: list[str],
                 initial_weights: dict[str, np.ndarray],
                 aggregator: Aggregator,
                 shareable_generator: FullModelShareableGenerator | None = None,
                 persistor: ModelPersistor | None = None,
                 num_rounds: int = 10,
                 buffer_size: int = 4,
                 concurrency: int | None = None,
                 staleness_alpha: float = 0.5,
                 max_staleness: int | None = None,
                 evaluator: Evaluator | None = None,
                 result_filters: list[DXOFilter] | None = None,
                 min_clients: int | None = None,
                 result_timeout: float = 600.0,
                 max_failed_rounds: int = 0,
                 sampling_seed: int = 0,
                 sampler: ClientSampler | None = None,
                 health: HealthMonitor | None = None) -> None:
        super().__init__(name="AsyncScatterAndGather")
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if not client_names:
            raise ValueError("need at least one client")
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if max_failed_rounds < 0:
            raise ValueError("max_failed_rounds must be non-negative")
        if staleness_alpha < 0:
            raise ValueError("staleness_alpha must be non-negative")
        if max_staleness is not None and max_staleness < 0:
            raise ValueError("max_staleness must be non-negative")
        self.server = server
        self.client_names = list(client_names)
        self.global_weights = {key: np.asarray(value).copy()
                               for key, value in initial_weights.items()}
        self.aggregator = aggregator
        self.shareable_generator = shareable_generator or FullModelShareableGenerator()
        self.persistor = persistor
        self.num_rounds = num_rounds
        self.buffer_size = buffer_size
        if concurrency is None:
            concurrency = min(2 * buffer_size, len(self.client_names))
        if not 0 < concurrency <= len(self.client_names):
            raise ValueError("concurrency must be in [1, len(client_names)]")
        self.concurrency = concurrency
        self.staleness_alpha = staleness_alpha
        self.max_staleness = max_staleness
        self.evaluator = evaluator
        self.result_filters = list(result_filters or [])
        self.min_clients = min_clients if min_clients is not None else buffer_size
        if self.min_clients > buffer_size:
            raise ValueError(
                f"min_clients={self.min_clients} can never be met: a commit "
                f"window closes after buffer_size={buffer_size} update(s)")
        self.result_timeout = result_timeout
        self.max_failed_rounds = max_failed_rounds
        self.sampler = sampler if sampler is not None \
            else UniformSampler(seed=sampling_seed)
        self.health = health
        self.stats = RunStats()
        self.materialization = MaterializationTracker()
        self.aggregator.tracker = self.materialization
        self._under_quorum_streak = 0
        # model version = commits so far; each outstanding task remembers the
        # version (and clock) it was dispatched at
        self._version = 0
        self._dispatched_at: dict[str, int] = {}
        self._dispatch_clock: dict[str, float] = {}
        self._wave = 0
        self._discarded_stale = 0

    # ------------------------------------------------------------------
    def run(self) -> RunStats:
        """Run ``num_rounds`` commits; returns the collected statistics."""
        fl_ctx = self.server.fl_ctx
        self.fire_event(EventType.START_RUN, fl_ctx)
        for window_index in range(self.num_rounds):
            # Same span name as the sync controller so round-oriented
            # consumers (tail, dashboard, trace export) cover both modes;
            # mode="async" plus the commit attrs carry the FedBuff detail.
            with obs_trace.span("round", round=window_index,
                                mode="async") as span:
                accepted = self._run_window(window_index, fl_ctx)
                span.set_attr("version", self._version)
                span.set_attr("accepted", accepted)
                span.set_attr("buffer_size", self.buffer_size)
                last = self.stats.rounds[-1] if self.stats.rounds else None
                if last is not None and last.round_number == window_index:
                    span.set_attr("quorum_met", last.quorum_met)
                    span.set_attr("n_clients", len(last.client_records))
                    staleness = [client_record.staleness
                                 for client_record in last.client_records]
                    if staleness:
                        span.set_attr("staleness_max", max(staleness))
        self._drain_in_flight()
        self.fire_event(EventType.END_RUN, fl_ctx)
        self.stats.messages_delivered = self.server.bus.delivered_count
        self.stats.bytes_delivered = self.server.bus.delivered_bytes
        self.stats.retries = self.server.bus.retry_count
        self.stats.duplicates_dropped = self.server.bus.duplicates_dropped
        self.stats.peak_materialized_updates = self.materialization.peak
        return self.stats

    # ------------------------------------------------------------------
    def _dispatch(self, fl_ctx) -> None:
        """Top idle sites up to the concurrency target with the current global.

        Site choice goes through the sampler (one "wave" per call, so the
        draw is a pure function of ``(seed, wave)``); unreachable sites do
        not count as outstanding.
        """
        idle = [name for name in self.client_names
                if name not in self._dispatched_at]
        want = min(self.concurrency - len(self._dispatched_at), len(idle))
        if want <= 0:
            return
        targets = self.sampler.sample(idle, want, self._wave)
        self._wave += 1
        task = self.shareable_generator.learnable_to_shareable(
            self.global_weights, fl_ctx)
        task.set_header(ReservedKey.ROUND_NUMBER, self._version)
        task.set_header(ReservedKey.TOTAL_ROUNDS, self.num_rounds)
        unreachable = self.server.broadcast_task(TaskName.TRAIN, task, targets)
        now = time.perf_counter()
        for target in targets:
            if target not in unreachable:
                self._dispatched_at[target] = self._version
                self._dispatch_clock[target] = now
        if unreachable:
            self.log_warning("dispatch wave %d: %d site(s) unreachable: %s",
                             self._wave - 1, len(unreachable),
                             format_names(unreachable))
        # the sequential drive (threads=False) runs tasked clients off this
        # event, so every wave must fire it — not just round boundaries
        self.fire_event(EventType.TASKS_BROADCAST, fl_ctx)

    # ------------------------------------------------------------------
    def _run_window(self, window_index: int, fl_ctx) -> int:
        """Fill one commit buffer and (quorum permitting) commit the global.

        Returns the number of accepted updates (the buffer fill count the
        round span reports as ``accepted``).
        """
        window_started = time.perf_counter()
        self.log_info("Commit window %d started (global version %d).",
                      window_index, self._version)
        fl_ctx.set_prop(ReservedKey.CURRENT_ROUND, window_index)
        fl_ctx.set_prop("current_round", window_index)
        self.fire_event(EventType.ROUND_STARTED, fl_ctx)
        bytes_before = self.server.bus.delivered_bytes
        if self.health is not None:
            self.health.begin_round(window_index, list(self.client_names),
                                    reference=self.global_weights)

        record = RoundRecord(round_number=window_index)
        self.aggregator.reset()
        accepted = 0
        contributors: set[str] = set()
        failed: set[str] = set()
        deadline = time.monotonic() + self.result_timeout
        while accepted < self.buffer_size:
            self._dispatch(fl_ctx)
            if not self._dispatched_at:
                # every reachable site is quarantined/unreachable — the
                # window can only close under quorum
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            result = self.server.next_result(timeout=remaining)
            if result is None:
                break
            sender, reply = result
            dispatched_at = self._dispatched_at.pop(sender, self._version)
            latency = time.perf_counter() - self._dispatch_clock.pop(
                sender, window_started)
            staleness = self._version - dispatched_at
            if reply.return_code != ReturnCode.OK:
                failed.add(sender)
                self.log_warning("client %s returned %s; skipping its update",
                                 sender, reply.return_code)
                continue
            dxo = to_dxo(reply)
            del reply
            self.materialization.acquire()  # decoded update is now live
            for result_filter in self.result_filters:
                with obs_trace.span("filter", stage="server_result",
                                    filter=type(result_filter).__name__,
                                    client=sender):
                    dxo = result_filter.process(dxo, fl_ctx)
            steps = int(dxo.get_meta_prop(MetaKey.NUM_STEPS_CURRENT_ROUND, 0))
            if self.health is not None:
                self.health.record_update(
                    sender, dxo.data, data_kind=dxo.data_kind, meta=dxo.meta,
                    latency_seconds=latency)
            obs_metrics.histogram("federation.async_staleness").observe(staleness)
            if self.max_staleness is not None and staleness > self.max_staleness:
                self._discarded_stale += 1
                self.log_warning(
                    "update from %s is %d commit(s) stale (max %d); discarded",
                    sender, staleness, self.max_staleness)
            elif self.health is not None and self.health.is_quarantined(
                    sender, window_index):
                contributors.add(sender)
                self.log_warning("client %s is quarantined; excluding its "
                                 "update from aggregation", sender)
            else:
                weight = float(dxo.get_meta_prop(
                    MetaKey.NUM_STEPS_CURRENT_ROUND, 1.0))
                discount = staleness_discount(staleness, self.staleness_alpha)
                dxo.set_meta_prop(MetaKey.NUM_STEPS_CURRENT_ROUND,
                                  weight * discount)
                if self.aggregator.accept(dxo, sender, fl_ctx):
                    accepted += 1
                    contributors.add(sender)
            record.client_records.append(ClientRoundRecord(
                client=sender,
                round_number=window_index,
                train_loss=float(dxo.get_meta_prop("train_loss", float("nan"))),
                valid_acc=float(dxo.get_meta_prop("valid_acc", float("nan"))),
                num_steps=steps,
                seconds=float(dxo.get_meta_prop("train_seconds", 0.0)),
                staleness=staleness,
            ))
            del dxo
            self.materialization.release()  # folded (or discarded)

        record.dropped_clients = sorted(failed)
        obs_metrics.counter("federation.rounds").inc()
        if accepted < self.min_clients:
            obs_metrics.counter("federation.under_quorum_rounds").inc()
            self._under_quorum_streak += 1
            record.quorum_met = False
            self._close_window(record, window_started, bytes_before)
            if self._under_quorum_streak > self.max_failed_rounds:
                raise RuntimeError(
                    f"commit window {window_index}: only {accepted} usable "
                    f"update(s) (min_clients={self.min_clients}) after "
                    f"{self._under_quorum_streak} consecutive under-quorum "
                    "window(s)")
            self.log_warning(
                "commit window %d: under quorum (%d/%d); keeping global "
                "version %d (%d/%d tolerated failures)", window_index,
                accepted, self.min_clients, self._version,
                self._under_quorum_streak, self.max_failed_rounds)
            self.fire_event(EventType.ROUND_DONE, fl_ctx)
            return accepted
        self._under_quorum_streak = 0

        self.fire_event(EventType.BEFORE_AGGREGATION, fl_ctx)
        with obs_trace.span("aggregate", commit=window_index):
            aggregation_started = time.perf_counter()
            aggregated = self.aggregator.aggregate(fl_ctx)
            obs_metrics.histogram("federation.aggregation_seconds").observe(
                time.perf_counter() - aggregation_started)
        self.global_weights = self.shareable_generator.dxo_to_learnable(
            aggregated, self.global_weights)
        self._version += 1
        self.fire_event(EventType.AFTER_AGGREGATION, fl_ctx)
        self.log_info("Committed global version %d (%d update(s), window %d).",
                      self._version, accepted, window_index)

        if self.evaluator is not None:
            record.global_metrics = dict(self.evaluator(self.global_weights))
        if self.persistor is not None:
            self.persistor.save(self.global_weights, fl_ctx,
                                metric=record.global_metrics.get("valid_acc"))
        self._close_window(record, window_started, bytes_before)
        self.fire_event(EventType.ROUND_DONE, fl_ctx)
        return accepted

    # ------------------------------------------------------------------
    def _close_window(self, record: RoundRecord, window_started: float,
                      bytes_before: int) -> None:
        """Shared window bookkeeping: timings, wire bytes, health verdicts."""
        record.seconds = time.perf_counter() - window_started
        record.bytes_on_wire = self.server.bus.delivered_bytes - bytes_before
        obs_metrics.histogram("federation.round_seconds").observe(record.seconds)
        obs_metrics.histogram("federation.round_bytes",
                              buckets=_BYTE_BUCKETS).observe(record.bytes_on_wire)
        self.stats.add_round(record)
        if self.health is not None:
            round_health, alerts = self.health.end_round(
                seconds=record.seconds,
                bytes_on_wire=record.bytes_on_wire,
                quorum_met=record.quorum_met,
                global_metrics=record.global_metrics,
                new_global=self.global_weights if record.quorum_met else None)
            record.quarantined_clients = list(round_health.quarantined)
            self.stats.alerts.extend(alerts)
            self.log_info("%s", self.health.status_line(round_health, alerts))

    # ------------------------------------------------------------------
    def _drain_in_flight(self) -> None:
        """Collect (and discard) replies from sites still holding a task.

        After the final commit there are up to ``concurrency`` outstanding
        tasks; their replies must be consumed so the server inbox does not
        leak into whatever runs on this bus next.  Under the sequential
        drive every reply is already queued, so the drain is instant.
        """
        drained = 0
        deadline = time.monotonic() + min(self.result_timeout, 5.0)
        while self._dispatched_at:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            result = self.server.next_result(timeout=remaining)
            if result is None:
                break
            sender, _ = result
            self._dispatched_at.pop(sender, None)
            self._dispatch_clock.pop(sender, None)
            drained += 1
        if drained or self._discarded_stale:
            self.log_info("run done: drained %d in-flight result(s), "
                          "discarded %d over-stale update(s)",
                          drained, self._discarded_stale)
