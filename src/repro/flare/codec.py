"""Zero-copy binary tensor codec — the federation's wire format.

The original wire path funnelled every tensor through ``np.savez``: a zip
container with per-member headers, CRC32 passes and several full copies of
each array (array → npy stream → zip member → final bytes).  This codec
replaces it with a flat layout that is written and read without intermediate
copies:

    [magic "RTC1"][u32 manifest_len][JSON manifest][pad][tensor block]

The manifest describes each tensor (name, little-endian dtype, shape, byte
offset, byte length) plus a free-form ``extra`` JSON document for whoever is
framing the blob (the DXO stores its ``data_kind``/``meta``/scalars there).
Tensor data starts at a 64-byte-aligned offset and every tensor is aligned
within the block, so decoding is ``np.frombuffer`` — a view into the blob,
no copy at all — and encoding is a single ``np.copyto`` into a preallocated
``memoryview`` per tensor (the one unavoidable copy onto the wire).

Decoded arrays are **read-only views** over the received blob; callers that
need to mutate must copy (``decode_tensors(..., copy=True)`` does it for
them).  Every consumer in this repo — ``Module.load_state_dict`` writes into
its own parameters, aggregators accumulate into float64 sums, filters build
new arrays — is view-safe.

An optional lossless ``shuffle-deflate`` transform (per-tensor byte shuffle
followed by zlib over the whole block, the HDF5 trick) trades the zero-copy
property of the tensor block for smaller blobs; it is applied on top of the
same layout and recorded in the manifest, so decode is self-describing.

All decode failures raise :class:`ValueError` with a message naming what was
wrong (truncated blob, bad magic, manifest overrun, tensor out of bounds,
unsupported dtype) — corrupted bytes off a faulty transport must never
surface as cryptic ``struct``/``json``/``zlib`` tracebacks.

Byte accounting (``transport.bytes_raw`` vs ``transport.bytes_encoded``) and
encode/decode timings land in an always-on module registry mirrored into the
process-wide :mod:`repro.obs` registry, so a telemetry session sees them
without extra wiring.
"""

from __future__ import annotations

import io
import json
import struct
import time
import zipfile
import zlib
from collections import OrderedDict
from typing import Any, Mapping

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.metrics import MetricsRegistry

__all__ = [
    "MAGIC", "ALIGNMENT", "encode_tensors", "encode_tensors_into",
    "encoded_size", "decode_tensors",
    "encode_tensors_npz", "decode_tensors_npz",
    "wire_metrics", "wire_totals", "reset_wire_metrics",
]

MAGIC = b"RTC1"
ALIGNMENT = 64

# Always-on registry for wire accounting: RunStats and the wire benchmark
# need byte totals whether or not a telemetry session is active (the same
# pattern as MessageBus.metrics).  Totals are cumulative per process; callers
# wanting per-run numbers snapshot with :func:`wire_totals` before and after.
wire_metrics = MetricsRegistry()


def reset_wire_metrics() -> MetricsRegistry:
    """Swap in a fresh wire registry (tests/benchmarks); returns the old one."""
    global wire_metrics
    old = wire_metrics
    wire_metrics = MetricsRegistry()
    return old


def wire_totals() -> dict[str, float]:
    """Snapshot of the cumulative byte counters, keyed by counter name+codec."""
    totals: dict[str, float] = {}
    for entry in wire_metrics.to_dict().get("counters", []):
        tags = entry.get("tags", {})
        key = entry["name"] + (f"{{codec={tags['codec']}}}" if "codec" in tags else "")
        totals[key] = totals.get(key, 0.0) + entry["value"]
    return totals


def _account(direction: str, codec: str, raw: int, encoded: int, seconds: float) -> None:
    for registry in (wire_metrics, obs_metrics.get_registry()):
        registry.counter("transport.bytes_raw", codec=codec).inc(raw)
        registry.counter("transport.bytes_encoded", codec=codec).inc(encoded)
        registry.histogram(f"codec.{direction}_seconds", codec=codec).observe(seconds)
    tracer = obs_trace.get_tracer()
    if tracer is not None:
        # retro-record the already-timed region so the codec pass shows up
        # under whichever span (client_task, aggregate, ...) it ran inside
        tracer.record_complete(f"codec.{direction}", seconds, codec=codec,
                               raw_bytes=raw, encoded_bytes=encoded)


def _pad(offset: int, alignment: int = ALIGNMENT) -> int:
    return -offset % alignment


def _normalize(value: Any) -> np.ndarray:
    """Coerce to a little-endian (or endian-free) C-contiguous ndarray."""
    array = np.asarray(value)
    if array.dtype.hasobject or array.dtype.kind not in "biufc":
        raise ValueError(f"unsupported tensor dtype {array.dtype!r} "
                         "(only numeric/bool arrays cross the wire)")
    if array.dtype.byteorder == ">":
        array = array.astype(array.dtype.newbyteorder("<"))
    # only copy when needed: np.ascontiguousarray would also promote 0-d
    # arrays to 1-d, losing their shape on the wire
    if not array.flags["C_CONTIGUOUS"]:
        array = np.ascontiguousarray(array)
    return array


def _shuffle_bytes(array: np.ndarray) -> bytes:
    """Byte-transpose: group the k-th byte of every element together."""
    itemsize = array.dtype.itemsize
    flat = np.frombuffer(array.tobytes(), dtype=np.uint8)
    if itemsize <= 1 or flat.size == 0:
        return flat.tobytes()
    return flat.reshape(-1, itemsize).T.tobytes()


def _unshuffle_bytes(blob: bytes, itemsize: int) -> bytes:
    flat = np.frombuffer(blob, dtype=np.uint8)
    if itemsize <= 1 or flat.size == 0:
        return bytes(blob)
    return np.ascontiguousarray(flat.reshape(itemsize, -1).T).tobytes()


# ---------------------------------------------------------------------------
# encode
# ---------------------------------------------------------------------------
class _RawPlan:
    """Layout of one raw (non-deflated) blob, computed before any copying.

    Shared by :func:`encode_tensors`, :func:`encode_tensors_into` and
    :func:`encoded_size` so a caller that owns the destination buffer (the
    shared-memory transport writes straight into an mmap) produces bytes
    bit-identical to the allocate-and-return path.
    """

    __slots__ = ("normalized", "specs", "manifest_bytes", "block_start",
                 "total", "raw_payload")

    def __init__(self, arrays: Mapping[str, Any],
                 extra: Mapping[str, Any] | None) -> None:
        self.normalized: "OrderedDict[str, np.ndarray]" = OrderedDict(
            (str(key), _normalize(value)) for key, value in arrays.items())
        self.specs = []
        offset = 0
        for key, array in self.normalized.items():
            offset += _pad(offset)
            self.specs.append({
                "name": key,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
            })
            offset += array.nbytes
        raw_block_len = offset
        self.raw_payload = sum(spec["nbytes"] for spec in self.specs)
        manifest: dict[str, Any] = {
            "v": 1,
            "extra": dict(extra or {}),
            "tensors": self.specs,
            "raw_block_len": raw_block_len,
            "transform": None,
            "block_len": raw_block_len,
        }
        self.manifest_bytes = json.dumps(manifest).encode("utf-8")
        head_len = len(MAGIC) + 4 + len(self.manifest_bytes)
        self.block_start = head_len + _pad(head_len)
        self.total = self.block_start + raw_block_len

    def write(self, view: memoryview) -> int:
        """Write the full blob into ``view``; returns the bytes written."""
        view[:4] = MAGIC
        struct.pack_into("<I", view, 4, len(self.manifest_bytes))
        view[8:8 + len(self.manifest_bytes)] = self.manifest_bytes
        for spec, array in zip(self.specs, self.normalized.values()):
            if not array.nbytes:
                continue
            start = self.block_start + spec["offset"]
            destination = np.frombuffer(view[start:start + spec["nbytes"]],
                                        dtype=array.dtype).reshape(array.shape)
            np.copyto(destination, array)
        return self.total


def encoded_size(arrays: Mapping[str, Any],
                 extra: Mapping[str, Any] | None = None) -> int:
    """Exact byte length :func:`encode_tensors` (raw) would produce."""
    return _RawPlan(arrays, extra).total


def encode_tensors_into(arrays: Mapping[str, Any], buffer,
                        extra: Mapping[str, Any] | None = None) -> int:
    """Encode straight into a caller-owned writable buffer (no allocation).

    ``buffer`` is anything supporting the writable buffer protocol — an
    mmap, a ``bytearray``, a shared-memory block — of at least
    :func:`encoded_size` bytes.  The bytes written are bit-identical to
    ``encode_tensors(arrays, extra)``; returns the length used.  This is
    the zero-extra-copy path the shared-memory transport uses: each tensor
    is copied exactly once, from its source array into the destination.
    """
    started = time.perf_counter()
    plan = _RawPlan(arrays, extra)
    view = memoryview(buffer)
    if len(view) < plan.total:
        raise ValueError(f"destination buffer of {len(view)} byte(s) cannot "
                         f"hold a {plan.total}-byte blob")
    written = plan.write(view[:plan.total])
    _account("encode", "raw", plan.raw_payload, written,
             time.perf_counter() - started)
    return written


def encode_tensors(arrays: Mapping[str, Any], extra: Mapping[str, Any] | None = None,
                   deflate: bool = False) -> bytes:
    """Pack named arrays (plus a JSON ``extra`` document) into one blob.

    With ``deflate=False`` (default) the tensor block is raw aligned bytes
    and each array is copied exactly once, straight into the output buffer.
    With ``deflate=True`` the block is byte-shuffled per tensor and zlib-
    compressed — smaller, but no longer zero-copy.
    """
    started = time.perf_counter()
    plan = _RawPlan(arrays, extra)

    if deflate:
        chunks = []
        position = 0
        for spec, array in zip(plan.specs, plan.normalized.values()):
            chunks.append(b"\x00" * (spec["offset"] - position))
            chunks.append(_shuffle_bytes(array))
            position = spec["offset"] + spec["nbytes"]
        block = zlib.compress(b"".join(chunks), level=6)
        manifest = json.loads(plan.manifest_bytes)
        manifest["transform"] = "shuffle-deflate"
        manifest["block_len"] = len(block)
        manifest_bytes = json.dumps(manifest).encode("utf-8")
        head = MAGIC + struct.pack("<I", len(manifest_bytes)) + manifest_bytes
        blob = head + b"\x00" * _pad(len(head)) + block
        _account("encode", "raw+deflate", plan.raw_payload, len(blob),
                 time.perf_counter() - started)
        return blob

    buffer = bytearray(plan.total)
    plan.write(memoryview(buffer))
    blob = bytes(buffer)
    _account("encode", "raw", plan.raw_payload, len(blob),
             time.perf_counter() - started)
    return blob


# ---------------------------------------------------------------------------
# decode
# ---------------------------------------------------------------------------
def _manifest_error(reason: str) -> ValueError:
    return ValueError(f"corrupted tensor blob: {reason}")


def decode_tensors(blob: bytes, copy: bool = False
                   ) -> tuple["OrderedDict[str, np.ndarray]", dict[str, Any]]:
    """Inverse of :func:`encode_tensors`; returns ``(arrays, extra)``.

    Without ``copy`` the arrays are read-only zero-copy views over ``blob``
    (deflated blobs are decompressed once and viewed).  With ``copy=True``
    each array is an owned, writable copy.
    """
    started = time.perf_counter()
    if len(blob) < 8:
        raise _manifest_error(f"only {len(blob)} byte(s), need at least 8 "
                              "for magic and manifest length")
    if bytes(blob[:4]) != MAGIC:
        raise _manifest_error(f"bad magic {bytes(blob[:4])!r}, expected {MAGIC!r}")
    (manifest_len,) = struct.unpack_from("<I", blob, 4)
    if 8 + manifest_len > len(blob):
        raise _manifest_error(f"manifest length {manifest_len} overruns "
                              f"{len(blob)}-byte blob")
    try:
        manifest = json.loads(bytes(blob[8:8 + manifest_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _manifest_error(f"manifest is not valid JSON ({error})") from error
    if not isinstance(manifest, dict) or "tensors" not in manifest:
        raise _manifest_error("manifest is missing the tensor table")

    head_len = 8 + manifest_len
    block_start = head_len + _pad(head_len)
    block = memoryview(blob)[block_start:]
    transform = manifest.get("transform")
    declared_len = manifest.get("block_len", len(block))
    if declared_len > len(block):
        raise _manifest_error(f"tensor block truncated: manifest declares "
                              f"{declared_len} byte(s), blob carries {len(block)}")
    codec_name = "raw"
    if transform == "shuffle-deflate":
        codec_name = "raw+deflate"
        try:
            raw = zlib.decompress(bytes(block[:declared_len]))
        except zlib.error as error:
            raise _manifest_error(f"deflate block corrupt ({error})") from error
        if len(raw) != manifest.get("raw_block_len", len(raw)):
            raise _manifest_error("deflate block decompressed to the wrong size")
        block = memoryview(raw)
    elif transform is not None:
        raise _manifest_error(f"unknown block transform {transform!r}")

    arrays: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for spec in manifest["tensors"]:
        try:
            name, offset, nbytes = spec["name"], int(spec["offset"]), int(spec["nbytes"])
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(dim) for dim in spec["shape"])
        except (KeyError, TypeError, ValueError) as error:
            raise _manifest_error(f"malformed tensor entry ({error})") from error
        if dtype.hasobject:
            raise _manifest_error(f"tensor {name!r} declares an object dtype")
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if expected != nbytes:
            raise _manifest_error(f"tensor {name!r}: shape {shape} x {dtype.str} "
                                  f"needs {expected} byte(s), manifest says {nbytes}")
        if offset < 0 or offset + nbytes > len(block):
            raise _manifest_error(f"tensor {name!r} at [{offset}, {offset + nbytes}) "
                                  f"overruns the {len(block)}-byte tensor block")
        if transform == "shuffle-deflate":
            raw_bytes = _unshuffle_bytes(bytes(block[offset:offset + nbytes]),
                                         dtype.itemsize)
            array = np.frombuffer(raw_bytes, dtype=dtype).reshape(shape)
        else:
            array = np.frombuffer(block, dtype=dtype,
                                  count=int(np.prod(shape, dtype=np.int64)),
                                  offset=offset).reshape(shape)
        arrays[name] = array.copy() if copy else array
    raw_total = sum(int(spec["nbytes"]) for spec in manifest["tensors"])
    _account("decode", codec_name, raw_total, len(blob), time.perf_counter() - started)
    return arrays, dict(manifest.get("extra", {}))


# ---------------------------------------------------------------------------
# npz legacy codec — kept as a correctness oracle and for on-disk checkpoints
# ---------------------------------------------------------------------------
def encode_tensors_npz(arrays: Mapping[str, Any]) -> bytes:
    """The pre-codec path: arrays → npz bytes (several copies, zip framing)."""
    started = time.perf_counter()
    buffer = io.BytesIO()
    normalized = {key: np.asarray(value) for key, value in arrays.items()}
    np.savez(buffer, **normalized)
    blob = buffer.getvalue()
    _account("encode", "npz", sum(a.nbytes for a in normalized.values()),
             len(blob), time.perf_counter() - started)
    return blob


def decode_tensors_npz(blob: bytes, keys: list[str] | None = None
                       ) -> "OrderedDict[str, np.ndarray]":
    """Decode an npz blob; raises :class:`ValueError` on corrupt input."""
    started = time.perf_counter()
    try:
        with np.load(io.BytesIO(bytes(blob)), allow_pickle=False) as archive:
            # NpzFile materializes a fresh array per access; no extra copy
            # is needed on top (the historical ``.copy()`` double-copied).
            arrays = OrderedDict((key, archive[key])
                                 for key in (keys if keys is not None
                                             else archive.files))
    except (zipfile.BadZipFile, zlib.error, struct.error, OSError, KeyError,
            IndexError, EOFError, ValueError) as error:
        raise ValueError(f"corrupted npz tensor block: {error}") from error
    _account("decode", "npz", sum(a.nbytes for a in arrays.values()),
             len(blob), time.perf_counter() - started)
    return arrays
