"""Socket transport: length-prefixed signed frames over TCP loopback.

The real-deployment counterpart of the in-memory :class:`MessageBus`: one
:class:`SocketMessageBus` *node* per process, hosting that process's
endpoints, all connected hub-and-spoke.  The hub (the server process)
listens; every spoke (client process) opens one uplink, announces its
endpoints, and exchanges envelopes through the hub, which routes by
recipient name.

The bytes on the wire are exactly the envelopes the in-memory bus passes
around — the Shareable's JSON headers plus its RTC1/npz-encoded DXO block,
HMAC-signed under the sender's session key — wrapped in a minimal binary
framing:

.. code-block:: text

    frame   := u32le payload_length | payload       (length caps at 1 GiB)
    payload := u8 frame_type | rest
    DATA    := u32le header_length | header_json | body
    HELLO   := json {"endpoints": [name, ...]}
    PING / PONG / BYE := empty rest

``header_json`` carries sender/recipient/topic/signature plus the envelope
headers (msg id, attempt, send timestamp); ``body`` is the signed Shareable
bytes, passed through untouched.  Signature verification and message-id
dedup happen at the *receiving endpoint's* node, exactly where the
in-memory bus performs them, so the two fabrics share one security model
(pinned by ``tests/flare/test_transport_conformance.py``).

Reliability: spokes reconnect with :class:`RetryPolicy` backoff when the
uplink breaks, resending their endpoint announcement so the hub re-learns
the route; an optional heartbeat thread PINGs the hub so half-open links
are detected between rounds.  Malformed, truncated or oversized frames
raise :class:`TransportError` and cost only the offending connection —
never the node.
"""

from __future__ import annotations

import json
import logging
import socket
import struct
import threading
import time
from typing import TYPE_CHECKING

from .events import get_fl_logger
from .faults import FaultInjector
from .transport import (
    BaseTransport,
    Message,
    RetryPolicy,
    TransportError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import queue

    from .faults import FaultPlan

__all__ = ["SocketMessageBus", "FRAME_DATA", "FRAME_HELLO", "FRAME_PING",
           "FRAME_PONG", "FRAME_BYE", "MAX_FRAME_BYTES", "encode_frame",
           "encode_data_frame", "decode_data_frame", "read_frame"]

FRAME_DATA = 1
FRAME_HELLO = 2
FRAME_PING = 3
FRAME_PONG = 4
FRAME_BYE = 5
_FRAME_TYPES = (FRAME_DATA, FRAME_HELLO, FRAME_PING, FRAME_PONG, FRAME_BYE)

# Hard ceiling on one frame: a corrupted / hostile length prefix must never
# make a reader allocate unbounded memory or wait on gigabytes that will
# never arrive.  1 GiB comfortably clears the largest BERT state dict the
# repro ships while still rejecting garbage prefixes (which are uniform in
# [0, 2^32) and almost always land above it).
MAX_FRAME_BYTES = 1 << 30

_LEN = struct.Struct("<I")


# ---------------------------------------------------------------------------
# frame codec (module-level so the fuzz suite can hit it directly)
# ---------------------------------------------------------------------------
def encode_frame(frame_type: int, rest: bytes = b"") -> bytes:
    """``type || rest`` wrapped in the u32le length prefix."""
    payload = bytes([frame_type]) + rest
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    return _LEN.pack(len(payload)) + payload


def encode_data_frame(message: Message) -> bytes:
    """One signed envelope as a DATA frame."""
    header = json.dumps({
        "sender": message.sender, "recipient": message.recipient,
        "topic": message.topic, "signature": message.signature,
        "headers": message.headers}).encode("utf-8")
    return encode_frame(FRAME_DATA,
                        _LEN.pack(len(header)) + header + message.body)


def decode_data_frame(rest: bytes) -> Message:
    """DATA payload (after the type byte) → :class:`Message`.

    Every malformation — truncated header length, header overrunning the
    payload, non-JSON or non-object headers, missing/foreign-typed fields —
    raises :class:`TransportError`; nothing else escapes.  A bit flip that
    survives decoding still carries a broken HMAC and dies in ``receive``.
    """
    if len(rest) < _LEN.size:
        raise TransportError("truncated data frame: missing header length")
    (header_len,) = _LEN.unpack_from(rest)
    if header_len > len(rest) - _LEN.size:
        raise TransportError(
            f"truncated data frame: header of {header_len} bytes overruns "
            f"the {len(rest)}-byte payload")
    try:
        header = json.loads(rest[_LEN.size:_LEN.size + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(f"undecodable data frame header: {error}") from error
    if not isinstance(header, dict):
        raise TransportError("data frame header is not a JSON object")
    try:
        sender, recipient = header["sender"], header["recipient"]
        topic, signature = header["topic"], header["signature"]
        headers = header.get("headers", {})
    except KeyError as error:
        raise TransportError(f"data frame header missing field {error}") from error
    if not all(isinstance(value, str) for value in (sender, recipient, topic, signature)) \
            or not isinstance(headers, dict):
        raise TransportError("data frame header fields have wrong types")
    return Message(sender=sender, recipient=recipient, topic=topic,
                   body=rest[_LEN.size + header_len:], signature=signature,
                   headers=headers)


def _recv_exact(sock: socket.socket, n: int, at_boundary: bool) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on a clean EOF at a frame boundary.

    EOF *inside* a frame — or inside its length prefix — is a mid-frame
    disconnect and raises :class:`TransportError`.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(n - got, 1 << 16))
        except OSError as error:
            raise TransportError(f"connection lost mid-frame: {error}") from error
        if not chunk:
            if at_boundary and got == 0:
                return None
            raise TransportError(
                f"connection closed mid-frame ({got}/{n} bytes read)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> tuple[int, bytes] | None:
    """Read one frame; ``None`` on clean EOF between frames.

    Raises :class:`TransportError` on truncated prefixes, mid-frame
    disconnects, oversized or zero-length payloads, and unknown frame types.
    """
    prefix = _recv_exact(sock, _LEN.size, at_boundary=True)
    if prefix is None:
        return None
    (length,) = _LEN.unpack(prefix)
    if length == 0:
        raise TransportError("zero-length frame (no type byte)")
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"declared frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap")
    payload = _recv_exact(sock, length, at_boundary=False)
    frame_type = payload[0]
    if frame_type not in _FRAME_TYPES:
        raise TransportError(f"unknown frame type {frame_type}")
    return frame_type, payload[1:]


# ---------------------------------------------------------------------------
# connections
# ---------------------------------------------------------------------------
class _PeerClosed(Exception):
    """The peer announced a clean shutdown (BYE frame)."""


class _Link:
    """One TCP connection with serialized writes and an alive flag."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.alive = True
        self._write_lock = threading.Lock()
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - platform-dependent
            pass

    def send_bytes(self, frame: bytes) -> None:
        with self._write_lock:
            if not self.alive:
                raise TransportError("link is down")
            try:
                self.sock.sendall(frame)
            except OSError as error:
                self.alive = False
                raise TransportError(f"socket write failed: {error}") from error

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


class SocketMessageBus(BaseTransport):
    """A transport node speaking the frame protocol over TCP loopback.

    Hub mode (``listen=True``, the default) binds a listener — the server
    process — and routes frames between every connected spoke.  Spoke mode
    (:meth:`connect`) opens one uplink to the hub and relays every
    non-local envelope through it.

    ``fault_plan`` arms the same seeded :class:`~repro.flare.faults
    .FaultPlan` injection the in-memory :class:`FaultyMessageBus` applies,
    at the same place (the sender's dispatch), so chaos scenarios make the
    same per-message decisions on both fabrics.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 listen: bool = True,
                 connect_to: tuple[str, int] | None = None,
                 fault_plan: "FaultPlan | None" = None,
                 retry_policy: RetryPolicy | None = None,
                 heartbeat_interval: float | None = None,
                 connect_timeout: float = 10.0) -> None:
        super().__init__()
        if listen and connect_to is not None:
            raise ValueError("a node either listens (hub) or connects (spoke)")
        self._log = logging.LoggerAdapter(get_fl_logger(),
                                          {"component": type(self).__name__})
        self._injector = (FaultInjector(fault_plan, self.metrics)
                          if fault_plan is not None else None)
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy or RetryPolicy()
        self.heartbeat_interval = heartbeat_interval
        self.connect_timeout = connect_timeout
        self._queues: dict[str, "queue.Queue[Message]"] = {}
        self._links: dict[str, _Link] = {}  # endpoint name -> claiming link
        self._closed = threading.Event()
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._uplink: _Link | None = None
        self._uplink_lock = threading.Lock()
        self._connect_addr = connect_to
        self._last_pong: float | None = None
        self._routing_drops = self.metrics.counter("transport.routing_drops")
        self._reconnects = self.metrics.counter("transport.reconnects")
        self._frame_errors = self.metrics.counter("transport.frame_errors")
        self._heartbeats = {kind: self.metrics.counter("transport.heartbeats",
                                                       kind=kind)
                            for kind in ("ping", "pong")}
        if listen:
            self._listener = socket.create_server((host, port), backlog=64)
            self._spawn(self._accept_loop, name="bus-accept")
        if connect_to is not None:
            self._ensure_uplink()
            if self.heartbeat_interval is not None:
                self._spawn(self._heartbeat_loop, name="bus-heartbeat")

    # ------------------------------------------------------------------
    @classmethod
    def connect(cls, address: tuple[str, int], **kwargs) -> "SocketMessageBus":
        """A spoke node linked to the hub at ``address``."""
        return cls(listen=False, connect_to=tuple(address), **kwargs)

    @property
    def address(self) -> tuple[str, int]:
        """The hub's bound ``(host, port)``."""
        if self._listener is None:
            raise TransportError("node is not listening")
        host, port = self._listener.getsockname()[:2]
        return host, port

    @property
    def last_pong(self) -> float | None:
        """``time.monotonic()`` of the most recent heartbeat reply."""
        return self._last_pong

    def heartbeat_counts(self) -> dict[str, int]:
        return {kind: int(counter.value)
                for kind, counter in self._heartbeats.items()}

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    # ------------------------------------------------------------------
    # Transport surface
    # ------------------------------------------------------------------
    def _on_endpoint_registered(self, name: str) -> None:
        import queue as queue_module

        announce = False
        with self._lock:
            if name not in self._queues:
                self._queues[name] = queue_module.Queue()
                announce = True
        # A spoke re-announces whenever it starts hosting a new endpoint so
        # the hub learns the route before any traffic needs it.
        if announce and self._connect_addr is not None and self._uplink is not None:
            try:
                self._send_hello(self._uplink)
            except TransportError:
                pass  # the reconnect path re-announces everything

    def pending(self, name: str) -> int:
        with self._lock:
            return self._queues[name].qsize() if name in self._queues else 0

    def _next_message(self, name: str, remaining: float | None) -> Message | None:
        import queue as queue_module

        with self._lock:
            q = self._queues[name]
        try:
            return q.get(timeout=remaining)
        except queue_module.Empty:
            return None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _dispatch(self, message: Message) -> None:
        copies = ([message] if self._injector is None
                  else self._injector.apply(message))
        for copy in copies:
            self._route(copy)

    def _route(self, message: Message) -> None:
        recipient = message.recipient
        with self._lock:
            link = self._links.get(recipient)
            local = link is None and recipient in self._queues
        if link is not None:
            link_frame = encode_data_frame(message)
            self._send_link(link, link_frame, recipient)
            self._count_delivery(message)
        elif local:
            self._deliver_local(message)
        elif self._connect_addr is not None:
            # Spoke: everything non-local goes through the hub, which owns
            # the routing table; deliverability is the hub's judgement.
            self._send_uplink(encode_data_frame(message))
            self._count_delivery(message)
        else:
            raise TransportError(f"unknown recipient {recipient!r}")

    def _deliver_local(self, message: Message) -> None:
        with self._lock:
            q = self._queues.get(message.recipient)
        if q is None:
            self._routing_drops.inc()
            self._log.warning("dropping %r for unknown local endpoint %r",
                              message.topic, message.recipient)
            return
        q.put(message)
        self._count_delivery(message)

    def _send_link(self, link: _Link, frame: bytes, recipient: str) -> None:
        try:
            link.send_bytes(frame)
        except TransportError:
            # the reader notices the dead socket too; drop the claim now so
            # retries fail fast until the spoke reconnects
            self._forget_link(link)
            raise

    def _forget_link(self, link: _Link) -> None:
        with self._lock:
            stale = [name for name, claimed in self._links.items()
                     if claimed is link]
            for name in stale:
                del self._links[name]
        link.close()

    # ------------------------------------------------------------------
    # hub side
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            link = _Link(sock)
            self._spawn(lambda l=link: self._reader_loop(l), name="bus-reader")

    def _claim_endpoints(self, link: _Link, names: list[str]) -> None:
        """Map announced endpoints to their link; flush any queued backlog."""
        backlog: list[Message] = []
        with self._lock:
            for name in names:
                self._links[name] = link
                self._peers.add(name)
                q = self._queues.get(name)
                while q is not None and not q.empty():
                    backlog.append(q.get_nowait())
        for message in backlog:
            try:
                link.send_bytes(encode_data_frame(message))
            except TransportError:
                self._routing_drops.inc()

    def _reader_loop(self, link: _Link) -> None:
        """Drain one connection; a bad frame costs the connection, not the node."""
        try:
            while not self._closed.is_set():
                frame = read_frame(link.sock)
                if frame is None:
                    return
                self._handle_frame(link, *frame)
        except _PeerClosed:
            return
        except TransportError as error:
            if not self._closed.is_set():
                self._frame_errors.inc()
                self._log.warning("connection dropped: %s", error)
        finally:
            self._forget_link(link)

    def _handle_frame(self, link: _Link, frame_type: int, rest: bytes) -> None:
        if frame_type == FRAME_HELLO:
            try:
                hello = json.loads(rest.decode("utf-8"))
                names = list(hello["endpoints"])
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                    TypeError) as error:
                raise TransportError(f"malformed HELLO: {error}") from error
            self._claim_endpoints(link, [str(name) for name in names])
        elif frame_type == FRAME_PING:
            self._heartbeats["pong"].inc()
            link.send_bytes(encode_frame(FRAME_PONG))
        elif frame_type == FRAME_PONG:
            self._last_pong = time.monotonic()
            self._heartbeats["pong"].inc()
        elif frame_type == FRAME_BYE:
            raise _PeerClosed
        else:  # FRAME_DATA
            message = decode_data_frame(rest)
            with self._lock:
                forward = self._links.get(message.recipient)
            if forward is not None and forward is not link:
                try:
                    forward.send_bytes(encode_frame(FRAME_DATA, rest))
                    self._count_delivery(message)
                except TransportError:
                    self._forget_link(forward)
                    self._routing_drops.inc()
            else:
                self._deliver_local(message)

    # ------------------------------------------------------------------
    # spoke side
    # ------------------------------------------------------------------
    def _send_hello(self, link: _Link) -> None:
        with self._lock:
            names = sorted(self._queues)
        link.send_bytes(encode_frame(
            FRAME_HELLO, json.dumps({"endpoints": names}).encode("utf-8")))

    def _ensure_uplink(self) -> _Link:
        with self._uplink_lock:
            if self._uplink is not None and self._uplink.alive:
                return self._uplink
            reconnecting = self._uplink is not None
            last_error: Exception | None = None
            for attempt in range(self.retry_policy.max_attempts):
                if self._closed.is_set():
                    raise TransportError("node is closed")
                try:
                    sock = socket.create_connection(self._connect_addr,
                                                    timeout=self.connect_timeout)
                    sock.settimeout(None)
                    link = _Link(sock)
                    self._send_hello(link)
                    self._uplink = link
                    self._spawn(lambda l=link: self._reader_loop(l),
                                name="bus-uplink-reader")
                    if reconnecting:
                        self._reconnects.inc()
                    return link
                except (OSError, TransportError) as error:
                    last_error = error
                    if attempt + 1 < self.retry_policy.max_attempts:
                        time.sleep(self.retry_policy.delay_for(attempt))
            raise TransportError(
                f"cannot reach hub at {self._connect_addr} after "
                f"{self.retry_policy.max_attempts} attempt(s): {last_error}"
            ) from last_error

    def _send_uplink(self, frame: bytes) -> None:
        link = self._ensure_uplink()
        try:
            link.send_bytes(frame)
        except TransportError:
            link.close()
            # one reconnect-and-resend; send_with_retry owns further retries
            self._ensure_uplink().send_bytes(frame)

    def _heartbeat_loop(self) -> None:
        assert self.heartbeat_interval is not None
        while not self._closed.wait(self.heartbeat_interval):
            try:
                self._send_uplink(encode_frame(FRAME_PING))
                self._heartbeats["ping"].inc()
            except TransportError:
                continue  # the next data send (or beat) retries the uplink

    # ------------------------------------------------------------------
    def wait_for_endpoints(self, names: list[str], timeout: float = 30.0) -> None:
        """Block until every name is routable (local or claimed by a link)."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                missing = [name for name in names
                           if name not in self._links and name not in self._queues]
            if not missing:
                return
            if time.monotonic() > deadline:
                raise TransportError(
                    f"endpoints never connected within {timeout}s: "
                    f"{', '.join(missing)}")
            time.sleep(0.01)

    def close(self) -> None:
        """Tear down the listener, every link and the helper threads."""
        if self._closed.is_set():
            return
        self._closed.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        with self._uplink_lock:
            if self._uplink is not None:
                try:
                    self._uplink.send_bytes(encode_frame(FRAME_BYE))
                except TransportError:
                    pass
                self._uplink.close()
        with self._lock:
            links = set(self._links.values())
            self._links.clear()
        for link in links:
            link.close()
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "SocketMessageBus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
