"""Module system: named parameter trees, training-mode flags, state dicts.

A light equivalent of ``torch.nn.Module`` sufficient for the paper's models.
Sub-modules and parameters are discovered through attribute assignment, so
model code reads exactly like PyTorch code.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]

# Bumped whenever any module registers or removes a parameter/sub-module.
# Per-module parameter caches are validated against it, so structural edits
# anywhere in a tree invalidate every cache without parent back-pointers.
_structure_version = 0


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are automatically registered and show up in
    :meth:`parameters`, :meth:`named_parameters` and :meth:`state_dict`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        global _structure_version
        params = self.__dict__.get("_parameters")
        modules = self.__dict__.get("_modules")
        if params is None or modules is None:
            raise AttributeError("Module.__init__() must be called before assigning attributes")
        changed = params.pop(name, None) is not None
        changed = modules.pop(name, None) is not None or changed
        if isinstance(value, Parameter):
            params[name] = value
            changed = True
        elif isinstance(value, Module):
            modules[name] = value
            changed = True
        if changed:
            _structure_version += 1
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        """Register a child module under an explicit name."""
        global _structure_version
        self._modules[name] = module
        _structure_version += 1
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` over the whole subtree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """All parameters, deduplicated (tied weights appear once).

        The flattened list is cached per module and revalidated against the
        global structure version, so per-step calls (``zero_grad``, optimizer
        loops) skip the tree walk.
        """
        cached = self.__dict__.get("_param_cache")
        if cached is not None and cached[0] == _structure_version:
            return list(cached[1])
        seen: set[int] = set()
        unique: list[Parameter] = []
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                unique.append(param)
        object.__setattr__(self, "_param_cache", (_structure_version, tuple(unique)))
        return unique

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` including this module itself."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module tree."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # training-mode & gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode (training=False everywhere)."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter in the subtree."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Flat name → array copy of every parameter (detached)."""
        return OrderedDict((name, param.data.copy()) for name, param in self.named_parameters())

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        """Load arrays into parameters in place.

        With ``strict=True`` (default), the key sets must match exactly and
        shapes must agree.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name!r}: {value.shape} vs {param.data.shape}")
            param.data[...] = value

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_repr = ", ".join(self._modules)
        return f"{type(self).__name__}({child_repr})"


class ModuleList(Module):
    """A list of sub-modules, registered by index."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        """Add a module to the end of the list (registered by index)."""
        self.add_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
