"""Model checkpoint serialization.

State dicts (flat ``name -> ndarray`` mappings) are stored as ``.npz``
archives.  Parameter names may contain ``.`` which npz handles fine; we also
provide an in-memory bytes codec used by the federated transport layer, so
model weights can cross the (simulated) wire without pickle.
"""

from __future__ import annotations

import io
from collections import OrderedDict
from pathlib import Path

import numpy as np

__all__ = ["save_state_dict", "load_state_dict", "state_dict_to_bytes", "state_dict_from_bytes"]


def save_state_dict(state: dict, path: str | Path) -> Path:
    """Write a state dict to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **{key: np.asarray(value) for key, value in state.items()})
    return path


def load_state_dict(path: str | Path) -> "OrderedDict[str, np.ndarray]":
    """Read a state dict previously written by :func:`save_state_dict`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return OrderedDict((key, archive[key].copy()) for key in archive.files)


def state_dict_to_bytes(state: dict) -> bytes:
    """Serialize a state dict to npz bytes (no pickle)."""
    buffer = io.BytesIO()
    np.savez(buffer, **{key: np.asarray(value) for key, value in state.items()})
    return buffer.getvalue()


def state_dict_from_bytes(blob: bytes) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`state_dict_to_bytes`."""
    with np.load(io.BytesIO(blob), allow_pickle=False) as archive:
        return OrderedDict((key, archive[key].copy()) for key in archive.files)
