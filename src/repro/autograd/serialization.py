"""Model checkpoint serialization.

State dicts (flat ``name -> ndarray`` mappings) are stored **on disk** as
``.npz`` archives — the zip container is a fine checkpoint format and stays
byte-compatible with every run directory written so far.  The **in-memory**
bytes codec used by the federated transport layer is the zero-copy binary
tensor codec of :mod:`repro.flare.codec` (JSON manifest + aligned raw
little-endian buffers); the old npz bytes path remains readable (decode
auto-detects by magic) and selectable as a correctness oracle.

Note on copies: ``np.load`` materializes a fresh array per member access
unless ``mmap_mode`` is requested (we never request it), so the historical
``.copy()`` on every parameter double-copied each tensor on every load; the
loads below return the materialized arrays directly.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path

import numpy as np

__all__ = ["save_state_dict", "load_state_dict", "state_dict_to_bytes", "state_dict_from_bytes"]


def save_state_dict(state: dict, path: str | Path) -> Path:
    """Write a state dict to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **{key: np.asarray(value) for key, value in state.items()})
    return path


def load_state_dict(path: str | Path) -> "OrderedDict[str, np.ndarray]":
    """Read a state dict previously written by :func:`save_state_dict`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        # in-memory (non-mmap) load: each access already yields a fresh
        # owned array, so no defensive copy is needed on top
        return OrderedDict((key, archive[key]) for key in archive.files)


def state_dict_to_bytes(state: dict, codec: str = "raw") -> bytes:
    """Serialize a state dict to wire bytes (no pickle).

    ``codec`` is ``"raw"`` (zero-copy binary, the default), ``"raw+deflate"``
    (raw layout + lossless shuffle/deflate) or ``"npz"`` (the legacy path,
    kept as a correctness oracle).
    """
    # imported lazily: repro.flare depends on this module for checkpoints,
    # so a module-level import back into repro.flare would be cyclic
    from ..flare.codec import encode_tensors, encode_tensors_npz

    if codec in ("raw", "raw+deflate"):
        return encode_tensors(state, deflate=(codec == "raw+deflate"))
    if codec != "npz":
        raise ValueError(f"unknown state-dict codec {codec!r}")
    return encode_tensors_npz(state)


def state_dict_from_bytes(blob: bytes) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`state_dict_to_bytes`; auto-detects the codec.

    Raw-codec blobs decode to read-only zero-copy views over ``blob``;
    callers that mutate parameters in place (``Module.load_state_dict``
    copies into its own buffers, so it is safe) need no copy, anyone else
    should copy explicitly.
    """
    from ..flare.codec import MAGIC, decode_tensors, decode_tensors_npz

    if bytes(blob[:4]) == MAGIC:
        arrays, _extra = decode_tensors(blob)
        return arrays
    return decode_tensors_npz(blob)
