"""Optimisers: SGD (with momentum), Adam and AdamW.

The paper trains every model with Adam at learning rate 1e-2 (Table I); the
other optimisers exist for the ablation benches and for downstream users.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW"]


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: Sequence[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every managed parameter."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update from the parameters' current gradients."""
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Serializable optimiser state (moments, counters, hyperparams)."""
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def state_dict(self) -> dict:
        return {"lr": self.lr, "momentum": self.momentum,
                "weight_decay": self.weight_decay,
                "velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        for velocity, saved in zip(self._velocity, state["velocity"]):
            velocity[...] = saved


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _apply_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def step(self) -> None:
        self._step_count += 1
        bc1 = 1.0 - self.beta1 ** self._step_count
        bc2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = self._apply_decay(param, param.grad)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {"lr": self.lr, "betas": (self.beta1, self.beta2), "eps": self.eps,
                "weight_decay": self.weight_decay, "step_count": self._step_count,
                "m": [m.copy() for m in self._m], "v": [v.copy() for v in self._v]}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self.beta1, self.beta2 = state["betas"]
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self._step_count = int(state["step_count"])
        for m, saved in zip(self._m, state["m"]):
            m[...] = saved
        for v, saved in zip(self._v, state["v"]):
            v[...] = saved


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _apply_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            param.data -= self.lr * self.weight_decay * param.data
        return grad
