"""Gradient clipping utilities (global-norm and per-value clipping)."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["clip_grad_norm", "clip_grad_value", "grad_global_norm"]


def grad_global_norm(params: Iterable[Parameter]) -> float:
    """Return the L2 norm of all gradients concatenated."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad.astype(np.float64) ** 2))
    return math.sqrt(total)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, matching the torch API.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = list(params)
    norm = grad_global_norm(params)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


def clip_grad_value(params: Iterable[Parameter], clip_value: float) -> None:
    """Clamp each gradient element to ``[-clip_value, clip_value]`` in place."""
    if clip_value <= 0:
        raise ValueError("clip_value must be positive")
    for param in params:
        if param.grad is not None:
            np.clip(param.grad, -clip_value, clip_value, out=param.grad)
