"""Functional neural-network operations built on :class:`repro.autograd.Tensor`.

These mirror the parts of ``torch.nn.functional`` used by the paper's models:
softmax / log-softmax, cross-entropy (with ``ignore_index`` for masked-language
-model training), layer norm, GELU, dropout, a fused scaled-dot-product
attention and a fused LSTM step.

Unlike the first-generation implementations (preserved in
:mod:`repro.autograd.reference` for testing), every op here is *fused*: the
forward pass runs in raw numpy and registers a single graph node with a
closed-form backward, instead of composing dozens of primitive ``Tensor`` ops
that each allocate a node, a closure and several temporaries.  On the paper's
workloads this removes the graph-bookkeeping overhead that dominated step
time.
"""

from __future__ import annotations

import math

import numpy as np

from . import backend as _backend
from .backend import _mean_cols, _red_vec, _red_vec_cache, _sum_cols  # noqa: F401
from .tensor import Tensor, get_default_dtype

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "nll_loss",
    "gelu",
    "relu",
    "tanh",
    "sigmoid",
    "dropout",
    "linear",
    "embedding",
    "one_hot",
    "layer_norm",
    "add_layer_norm",
    "embed_layer_norm",
    "scaled_dot_product_attention",
    "multi_head_attention",
    "attention_layer",
    "ffn",
    "ffn_layer",
    "tanh_head",
    "lstm_step",
    "unbind",
]

_GELU_COEFF = math.sqrt(2.0 / math.pi)
_GELU_CUBIC = 0.044715


def _as_tensor(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


# The GEMV reduction helpers (_red_vec/_sum_cols/_mean_cols) live in
# ``backend.py`` and are re-imported above: the softmax kernels need them
# and the layer-norm bodies below still call them directly.


def _softmax_into(owned: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax computed fully in place on ``owned``.

    Only call this on a buffer the caller allocated itself (e.g. fresh GEMM
    output) — the input values are destroyed.  Dispatches through the
    active array backend (:mod:`repro.autograd.backend`).
    """
    return _backend._ACTIVE.softmax_into(owned, axis)


def _stable_softmax(data: np.ndarray, axis: int) -> np.ndarray:
    return _backend._ACTIVE.stable_softmax(data, axis)


def _dropout_keep(rng: np.random.Generator, shape, p: float, dtype) -> np.ndarray:
    """Inverted-dropout keep mask, already scaled by ``1/(1-p)``.

    Draws float32 when the activations are float32 (half the RNG cost of the
    default float64 stream).  Both the fused ops and
    :mod:`repro.autograd.reference` draw through this helper so a shared
    generator yields identical masks from either implementation.
    """
    draw_dtype = np.float32 if np.dtype(dtype) == np.float32 else np.float64
    kept = rng.random(shape, dtype=draw_dtype) >= p
    # one multiply converts bool -> scaled dtype; ~7x cheaper than
    # astype followed by an in-place divide
    return np.multiply(kept, 1.0 / (1.0 - p), dtype=np.dtype(dtype))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis`` (one fused graph node)."""
    x = _as_tensor(x)
    probs = _stable_softmax(x.data, axis)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * probs).sum(axis=axis, keepdims=True)
        x._accumulate(probs * (grad - inner))

    return Tensor._make(probs, (x,), "softmax", backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis`` (one fused graph node)."""
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsumexp

    def backward(grad: np.ndarray) -> None:
        probs = np.exp(out)
        x._accumulate(grad - probs * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), "log_softmax", backward)


def nll_loss(log_probs: Tensor, targets: np.ndarray, ignore_index: int | None = None,
             reduction: str = "mean", class_weights: np.ndarray | None = None) -> Tensor:
    """Negative log likelihood from log-probabilities.

    Parameters
    ----------
    log_probs:
        ``(N, C)`` tensor of log-probabilities.
    targets:
        ``(N,)`` integer class indices.
    ignore_index:
        Target value whose positions contribute zero loss (used for non-masked
        positions in MLM training).
    reduction:
        ``"mean"`` (weighted mean over non-ignored targets, torch semantics),
        ``"sum"`` or ``"none"``.
    class_weights:
        Optional per-class loss weights ``(C,)`` — the standard treatment for
        imbalanced clinical cohorts (e.g. the 21% ADR-positive rate).
    """
    targets = np.asarray(targets, dtype=np.int64).reshape(-1)
    n = targets.shape[0]
    if log_probs.shape[0] != n:
        raise ValueError(f"log_probs batch {log_probs.shape[0]} != targets batch {n}")
    valid, safe_targets = _valid_targets(targets, ignore_index)
    picked = log_probs[(np.arange(n), safe_targets)]
    weight_values = _target_weights(valid, safe_targets, class_weights,
                                    log_probs.dtype, log_probs.shape[-1])
    weights = Tensor(weight_values)
    losses = -picked * weights
    if reduction == "none":
        return losses
    total = losses.sum()
    if reduction == "sum":
        return total
    if reduction == "mean":
        denominator = float(weight_values.sum())
        return total * (1.0 / max(denominator, 1e-12))
    raise ValueError(f"unknown reduction {reduction!r}")


def _valid_targets(targets: np.ndarray, ignore_index: int | None
                   ) -> tuple[np.ndarray, np.ndarray]:
    if ignore_index is not None:
        valid = targets != ignore_index
        safe_targets = np.where(valid, targets, 0)
    else:
        valid = np.ones(targets.shape[0], dtype=bool)
        safe_targets = targets
    return valid, safe_targets


def _target_weights(valid: np.ndarray, safe_targets: np.ndarray,
                    class_weights: np.ndarray | None, dtype, num_classes: int
                    ) -> np.ndarray:
    weight_values = valid.astype(dtype)
    if class_weights is not None:
        class_weights = np.asarray(class_weights, dtype=dtype)
        if class_weights.shape != (num_classes,):
            raise ValueError(
                f"class_weights shape {class_weights.shape} != ({num_classes},)")
        weight_values = weight_values * class_weights[safe_targets]
    return weight_values


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: int | None = None,
                  reduction: str = "mean",
                  class_weights: np.ndarray | None = None) -> Tensor:
    """Softmax cross-entropy between logits and integer targets, fused.

    Goes straight from logits to the loss in one graph node — no materialized
    probability graph.  ``logits`` with more than 2 dimensions are flattened
    to ``(N, C)`` internally (the MLM ``(batch, seq, vocab)`` case) without
    creating reshape nodes.
    """
    logits = _as_tensor(logits)
    raw = logits.data
    if raw.ndim != 2:
        raw = raw.reshape(-1, raw.shape[-1])
    if isinstance(targets, Tensor):
        targets = targets.data
    targets = np.asarray(targets, dtype=np.int64).reshape(-1)
    n, num_classes = raw.shape
    if targets.shape[0] != n:
        raise ValueError(f"logits batch {n} != targets batch {targets.shape[0]}")
    valid, safe_targets = _valid_targets(targets, ignore_index)
    weight_values = _target_weights(valid, safe_targets, class_weights,
                                    raw.dtype, num_classes)

    shifted = raw - raw.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    rows = np.arange(n)
    log_probs_at_target = shifted[rows, safe_targets] - logsumexp[:, 0]
    losses = -log_probs_at_target * weight_values

    if reduction == "none":
        out_data = losses
    elif reduction == "sum":
        out_data = np.asarray(losses.sum(), dtype=raw.dtype)
    elif reduction == "mean":
        denominator = max(float(weight_values.sum()), 1e-12)
        out_data = np.asarray(losses.sum() / denominator, dtype=raw.dtype)
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad: np.ndarray) -> None:
        # d loss_i / d logit_ij = w_i * (p_ij - 1[j == t_i]), scaled per reduction
        if reduction == "none":
            coeff = weight_values * grad
        elif reduction == "sum":
            coeff = weight_values * float(grad)
        else:
            coeff = weight_values * (float(grad) / denominator)
        dlogits = np.exp(shifted - logsumexp)
        dlogits *= coeff[:, None]
        dlogits[rows, safe_targets] -= coeff
        logits._accumulate(dlogits.reshape(logits.data.shape))

    return Tensor._make(out_data, (logits,), "cross_entropy", backward)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     reduction: str = "mean") -> Tensor:
    """Stable sigmoid cross-entropy: ``max(x,0) - x*t + log(1+exp(-|x|))``."""
    logits = _as_tensor(logits)
    x = logits.data
    t = np.asarray(targets, dtype=x.dtype)
    losses = np.maximum(x, 0.0) - x * t + np.log1p(np.exp(-np.abs(x)))
    if reduction == "none":
        out_data = losses
    elif reduction == "sum":
        out_data = np.asarray(losses.sum(), dtype=x.dtype)
    elif reduction == "mean":
        out_data = np.asarray(losses.mean(), dtype=x.dtype)
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad: np.ndarray) -> None:
        dx = 1.0 / (1.0 + np.exp(-x)) - t  # sigmoid(x) - t
        if reduction == "none":
            logits._accumulate(grad * dx)
        elif reduction == "sum":
            logits._accumulate(float(grad) * dx)
        else:
            logits._accumulate((float(grad) / losses.size) * dx)

    return Tensor._make(out_data, (logits,), "bce_logits", backward)


def _gelu_forward(data: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tanh-approximation GELU: ``(out, tanh_term, x_squared)``.

    The kernel body lives on the active array backend
    (:meth:`~repro.autograd.backend.ArrayBackend.gelu_forward`);
    ``x_squared`` is kept so the backward pass skips recomputing it.
    """
    return _backend._ACTIVE.gelu_forward(data)


def _gelu_backward(grad: np.ndarray, data: np.ndarray, t: np.ndarray,
                   sq: np.ndarray) -> np.ndarray:
    """d GELU(x) / dx from the saved tanh and square terms, applied to ``grad``."""
    return _backend._ACTIVE.gelu_backward(grad, data, t, sq)


def gelu(x: Tensor) -> Tensor:
    """GELU activation (tanh approximation, as in the original BERT code)."""
    x = _as_tensor(x)
    data = x.data
    out, t, sq = _gelu_forward(data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(_gelu_backward(grad, data, t, sq))

    return Tensor._make(out, (x,), "gelu", backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis, fused forward/backward.

    ``weight`` and ``bias`` are ``(dim,)`` scale/shift parameters; gradients
    use the closed-form layer-norm backward instead of differentiating
    through the mean/variance composition.
    """
    x = _as_tensor(x)
    data = x.data
    dim = data.shape[-1]
    x2d = data.reshape(-1, dim)
    xhat = x2d - _mean_cols(x2d)
    var = _mean_cols(xhat * xhat)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat *= inv_std
    out2d = xhat * weight.data
    out2d += bias.data
    out = out2d.reshape(data.shape)

    def backward(grad: np.ndarray) -> None:
        g2d = grad.reshape(-1, dim)
        dxhat = g2d * weight.data
        mean_dxhat = _mean_cols(dxhat)
        mean_dxhat_xhat = _mean_cols(dxhat * xhat)
        dxhat -= mean_dxhat
        dxhat -= xhat * mean_dxhat_xhat
        dxhat *= inv_std
        x._accumulate_owned(dxhat.reshape(data.shape))
        weight._accumulate(g2d * xhat)  # _accumulate sums down to (dim,)
        bias._accumulate(g2d)

    return Tensor._make(out, (x, weight, bias), "layer_norm", backward)


def add_layer_norm(x: Tensor, sub: Tensor, weight: Tensor, bias: Tensor,
                   eps: float = 1e-5) -> Tensor:
    """Fused residual-add + layer norm: ``layer_norm(x + sub)`` in one node.

    The transformer post-norm pattern — both residual branches receive the
    identical normalized gradient, so fusing the add costs nothing and saves
    a graph node plus a full-size temporary per call.
    """
    x = _as_tensor(x)
    sub = _as_tensor(sub)
    shape = x.data.shape
    dim = shape[-1]
    total = (x.data + sub.data).reshape(-1, dim)
    xhat = total
    xhat -= _mean_cols(total)  # fresh buffer; reuse for the centered values
    var = _mean_cols(xhat * xhat)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat *= inv_std
    out2d = xhat * weight.data
    out2d += bias.data
    out = out2d.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        g2d = grad.reshape(-1, dim)
        dxhat = g2d * weight.data
        mean_dxhat = _mean_cols(dxhat)
        mean_dxhat_xhat = _mean_cols(dxhat * xhat)
        dxhat -= mean_dxhat
        dxhat -= xhat * mean_dxhat_xhat
        dxhat *= inv_std  # now the gradient of the pre-norm sum
        dsum = dxhat.reshape(shape)
        # plain accumulate (copies) for x first, then sub may adopt the buffer
        x._accumulate(dsum)
        sub._accumulate_owned(dsum)
        weight._accumulate(g2d * xhat)  # _accumulate sums down to (dim,)
        bias._accumulate(g2d)

    return Tensor._make(out, (x, sub, weight, bias), "add_layer_norm", backward)


def embed_layer_norm(token_weight: Tensor, position_weight: Tensor,
                     ids: np.ndarray, ln_weight: Tensor, ln_bias: Tensor,
                     eps: float = 1e-5, dropout_p: float = 0.0,
                     training: bool = False,
                     rng: np.random.Generator | None = None) -> Tensor:
    """Fused BERT embedding block: token lookup + position add + layer norm
    (+ optional embedding dropout) as one graph node.

    Parameters
    ----------
    token_weight:
        ``(vocab, dim)`` embedding table.
    position_weight:
        ``(max_len, dim)`` learned position table; rows ``0..seq-1`` are used.
    ids:
        ``(batch, seq)`` integer token ids.
    ln_weight, ln_bias:
        ``(dim,)`` layer-norm scale/shift.
    dropout_p / training / rng:
        Inverted dropout on the normalised embeddings.
    """
    if not 0.0 <= dropout_p < 1.0:
        raise ValueError(f"dropout_p must be in [0, 1), got {dropout_p}")
    idx = np.asarray(ids, dtype=np.int64)
    if idx.ndim != 2:
        raise ValueError(f"ids must be (batch, seq), got shape {idx.shape}")
    batch, seq = idx.shape
    if idx.size and (idx.min() < 0 or idx.max() >= token_weight.shape[0]):
        raise IndexError(f"token id out of range [0, {token_weight.shape[0]})")
    if seq > position_weight.shape[0]:
        raise ValueError(
            f"sequence length {seq} exceeds max_len {position_weight.shape[0]}")

    dim = token_weight.shape[-1]
    total = (token_weight.data[idx] + position_weight.data[:seq]).reshape(-1, dim)
    xhat = total
    xhat -= _mean_cols(total)  # fresh lookup buffer; reuse for centered values
    var = _mean_cols(xhat * xhat)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat *= inv_std
    out2d = xhat * ln_weight.data
    out2d += ln_bias.data
    if dropout_p > 0.0 and training:
        rng = rng or np.random.default_rng()
        keep = _dropout_keep(rng, out2d.shape, dropout_p, out2d.dtype)
        out2d *= keep
    else:
        keep = None
    out = out2d.reshape(batch, seq, dim)

    parents = (token_weight, position_weight, ln_weight, ln_bias)

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(-1, dim)
        if keep is not None:
            g = g * keep
        ln_weight._accumulate(g * xhat)  # _accumulate sums down to (dim,)
        ln_bias._accumulate(g)
        dxhat = g * ln_weight.data
        mean_dxhat = _mean_cols(dxhat)
        mean_dxhat_xhat = _mean_cols(dxhat * xhat)
        dxhat -= mean_dxhat
        dxhat -= xhat * mean_dxhat_xhat
        dxhat *= inv_std  # now the gradient of the pre-norm embedding sum
        dxhat = dxhat.reshape(batch, seq, dim)
        if token_weight.requires_grad:
            dtable = np.zeros_like(token_weight.data)
            np.add.at(dtable, idx, dxhat)
            token_weight._accumulate_owned(dtable)
        if position_weight.requires_grad:
            dpos = np.zeros_like(position_weight.data)
            dpos[:seq] = dxhat.sum(axis=0)
            position_weight._accumulate_owned(dpos)

    return Tensor._make(out, parents, "embed_layer_norm", backward)


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 attention_mask: np.ndarray | None = None,
                                 dropout_p: float = 0.0, training: bool = False,
                                 rng: np.random.Generator | None = None,
                                 mask_value: float = -1e9) -> Tensor:
    """Fused attention: ``softmax(q @ k^T / sqrt(d) + mask) @ v`` in one node.

    Parameters
    ----------
    q, k, v:
        ``(..., seq_q, d)``, ``(..., seq_k, d)`` and ``(..., seq_k, dv)``
        tensors (leading dims typically ``(batch, heads)``).
    attention_mask:
        Optional boolean array broadcastable to the ``(..., seq_q, seq_k)``
        score shape; True marks *valid* positions.  The mask is broadcast
        lazily — a ``(batch, 1, 1, seq)`` key-padding mask is never
        materialized at full score shape.
    dropout_p / training / rng:
        Inverted dropout on the attention probabilities, active only when
        ``training`` is True.
    """
    if not 0.0 <= dropout_p < 1.0:
        raise ValueError(f"dropout_p must be in [0, 1), got {dropout_p}")
    scale = 1.0 / math.sqrt(q.shape[-1])
    scores = q.data @ np.swapaxes(k.data, -1, -2)
    scores *= scale
    if attention_mask is not None:
        scores = np.where(attention_mask, scores, scores.dtype.type(mask_value))
    probs = _softmax_into(scores)  # scores buffer is owned by this node
    if dropout_p > 0.0 and training:
        rng = rng or np.random.default_rng()
        keep = _dropout_keep(rng, probs.shape, dropout_p, probs.dtype)
        attn = probs * keep
    else:
        keep = None
        attn = probs
    out = attn @ v.data

    def backward(grad: np.ndarray) -> None:
        dattn = grad @ np.swapaxes(v.data, -1, -2)
        v._accumulate(np.swapaxes(attn, -1, -2) @ grad)
        dprobs = dattn if keep is None else dattn * keep
        dscores = probs * (dprobs - (dprobs * probs).sum(axis=-1, keepdims=True))
        dscores *= scale  # masked positions have probs≈0, so their grad is 0
        q._accumulate(dscores @ k.data)
        k._accumulate(np.swapaxes(dscores, -1, -2) @ q.data)

    return Tensor._make(out, (q, k, v), "sdpa", backward)


def multi_head_attention(x: Tensor, q_weight: Tensor, q_bias: Tensor,
                         k_weight: Tensor, k_bias: Tensor,
                         v_weight: Tensor, v_bias: Tensor,
                         out_weight: Tensor, out_bias: Tensor,
                         num_heads: int,
                         attention_mask: np.ndarray | None = None,
                         dropout_p: float = 0.0, training: bool = False,
                         rng: np.random.Generator | None = None,
                         mask_value: float = -1e9,
                         out_dropout_p: float = 0.0,
                         out_rng: np.random.Generator | None = None) -> Tensor:
    """One graph node for a whole multi-head self-attention block.

    Fuses the Q/K/V projections, head split, scaled-dot-product attention
    (mask, softmax, probability dropout), head merge and output projection.
    The unfused path builds ~15 graph nodes per block; on narrow models
    (BERT-mini's hidden width of 50) that bookkeeping dominates the GEMMs.

    Parameters
    ----------
    x:
        ``(batch, seq, dim)`` input.
    q_weight, k_weight, v_weight:
        ``(num_heads * head_dim, dim)`` projection weights (torch layout),
        with matching ``(num_heads * head_dim,)`` biases.
    out_weight, out_bias:
        ``(dim_out, num_heads * head_dim)`` output projection.
    attention_mask:
        Optional boolean array broadcastable to the
        ``(batch, heads, seq, seq)`` score shape; True marks valid positions.
    dropout_p / training / rng:
        Inverted dropout on the attention probabilities.
    out_dropout_p / out_rng:
        Optional inverted dropout on the block output (the dropout a
        transformer encoder layer applies before the residual add), folded
        into the same node.
    """
    if not 0.0 <= dropout_p < 1.0:
        raise ValueError(f"dropout_p must be in [0, 1), got {dropout_p}")
    if not 0.0 <= out_dropout_p < 1.0:
        raise ValueError(f"out_dropout_p must be in [0, 1), got {out_dropout_p}")
    x = _as_tensor(x)
    data = x.data
    batch, seq, dim = data.shape
    inner = q_weight.shape[0]
    if inner % num_heads:
        raise ValueError(f"projection width {inner} not divisible by {num_heads} heads")
    head_dim = inner // num_heads
    scale = 1.0 / math.sqrt(head_dim)
    x2d = data.reshape(batch * seq, dim)

    # one concatenated GEMM for all three projections instead of three
    wqkv = np.concatenate((q_weight.data, k_weight.data, v_weight.data), axis=0)
    bqkv = np.concatenate((q_bias.data, k_bias.data, v_bias.data))
    p2d = x2d @ wqkv.T
    p2d += bqkv
    # (batch*seq, 3*inner) -> (3, batch, heads, seq, head_dim) strided view;
    # each 2-d slice keeps a contiguous innermost axis, so the batched GEMMs
    # below run on BLAS lda-strided inputs without a pack copy
    qkv = p2d.reshape(batch, seq, 3, num_heads, head_dim).transpose(2, 0, 3, 1, 4)
    q, k, v = qkv[0], qkv[1], qkv[2]

    scores = q @ k.transpose(0, 1, 3, 2)
    scores *= scale
    if attention_mask is not None:
        scores = np.where(attention_mask, scores, scores.dtype.type(mask_value))
    probs = _softmax_into(scores)  # scores buffer is owned by this node
    if dropout_p > 0.0 and training:
        rng = rng or np.random.default_rng()
        keep = _dropout_keep(rng, probs.shape, dropout_p, probs.dtype)
        attn = probs * keep
    else:
        keep = None
        attn = probs
    context = attn @ v  # (batch, heads, seq, head_dim)
    ctx2d = np.ascontiguousarray(context.transpose(0, 2, 1, 3)).reshape(batch * seq, inner)
    out2d = ctx2d @ out_weight.data.T
    out2d += out_bias.data
    if out_dropout_p > 0.0 and training:
        out_rng = out_rng or np.random.default_rng()
        out_keep = _dropout_keep(out_rng, out2d.shape, out_dropout_p, out2d.dtype)
        out2d *= out_keep
    else:
        out_keep = None
    out = out2d.reshape(batch, seq, out_weight.shape[0])

    parents = (x, q_weight, q_bias, k_weight, k_bias, v_weight, v_bias,
               out_weight, out_bias)

    def backward(grad: np.ndarray) -> None:
        g2d = grad.reshape(batch * seq, grad.shape[-1])
        if out_keep is not None:
            g2d = g2d * out_keep
        out_weight._accumulate_owned(g2d.T @ ctx2d)
        out_bias._accumulate_owned(g2d.sum(axis=0))
        dcontext = np.ascontiguousarray(
            (g2d @ out_weight.data)
            .reshape(batch, seq, num_heads, head_dim).transpose(0, 2, 1, 3))
        dattn = dcontext @ v.transpose(0, 1, 3, 2)
        if keep is not None:
            dattn *= keep  # fresh GEMM output; becomes dprobs in place
        d2 = dattn.reshape(-1, seq)
        p2 = probs.reshape(-1, seq)
        d2 -= _sum_cols(d2 * p2)
        d2 *= p2
        dscores = dattn  # transformed in place through the softmax
        dscores *= scale  # masked positions have probs≈0, so their grad is 0

        dqkv = np.empty((3, batch, num_heads, seq, head_dim), dtype=p2d.dtype)
        np.matmul(dscores, k, out=dqkv[0])
        np.matmul(dscores.transpose(0, 1, 3, 2), q, out=dqkv[1])
        np.matmul(attn.transpose(0, 1, 3, 2), dcontext, out=dqkv[2])
        # (3, batch, heads, seq, head_dim) -> (batch*seq, 3*inner), matching
        # the concatenated forward layout
        d2d = np.ascontiguousarray(
            dqkv.transpose(1, 3, 0, 2, 4)).reshape(batch * seq, 3 * inner)
        dwqkv = d2d.T @ x2d
        # disjoint slices of freshly-built buffers may all be adopted
        q_weight._accumulate_owned(dwqkv[:inner])
        k_weight._accumulate_owned(dwqkv[inner:2 * inner])
        v_weight._accumulate_owned(dwqkv[2 * inner:])
        dbqkv = d2d.sum(axis=0)
        q_bias._accumulate_owned(dbqkv[:inner])
        k_bias._accumulate_owned(dbqkv[inner:2 * inner])
        v_bias._accumulate_owned(dbqkv[2 * inner:])
        if x.requires_grad:
            x._accumulate_owned((d2d @ wqkv).reshape(batch, seq, dim))

    return Tensor._make(out, parents, "multi_head_attention", backward)


def attention_layer(x: Tensor, q_weight: Tensor, q_bias: Tensor,
                    k_weight: Tensor, k_bias: Tensor,
                    v_weight: Tensor, v_bias: Tensor,
                    out_weight: Tensor, out_bias: Tensor,
                    num_heads: int, norm_weight: Tensor, norm_bias: Tensor,
                    attention_mask: np.ndarray | None = None,
                    dropout_p: float = 0.0, training: bool = False,
                    rng: np.random.Generator | None = None,
                    mask_value: float = -1e9,
                    out_dropout_p: float = 0.0,
                    out_rng: np.random.Generator | None = None,
                    eps: float = 1e-5) -> Tensor:
    """Whole post-norm attention sublayer as one node: ``LN(x + MHA(x))``.

    Same contract as :func:`multi_head_attention` plus the residual add and
    the post-layer-norm (``norm_weight``/``norm_bias``), so a transformer
    encoder layer's first half is a single graph node.
    """
    if not 0.0 <= dropout_p < 1.0:
        raise ValueError(f"dropout_p must be in [0, 1), got {dropout_p}")
    if not 0.0 <= out_dropout_p < 1.0:
        raise ValueError(f"out_dropout_p must be in [0, 1), got {out_dropout_p}")
    x = _as_tensor(x)
    data = x.data
    batch, seq, dim = data.shape
    inner = q_weight.shape[0]
    if inner % num_heads:
        raise ValueError(f"projection width {inner} not divisible by {num_heads} heads")
    head_dim = inner // num_heads
    scale = 1.0 / math.sqrt(head_dim)
    x2d = data.reshape(batch * seq, dim)

    wqkv = np.concatenate((q_weight.data, k_weight.data, v_weight.data), axis=0)
    bqkv = np.concatenate((q_bias.data, k_bias.data, v_bias.data))
    p2d = x2d @ wqkv.T
    p2d += bqkv
    qkv = p2d.reshape(batch, seq, 3, num_heads, head_dim).transpose(2, 0, 3, 1, 4)
    q, k, v = qkv[0], qkv[1], qkv[2]

    scores = q @ k.transpose(0, 1, 3, 2)
    scores *= scale
    if attention_mask is not None:
        scores = np.where(attention_mask, scores, scores.dtype.type(mask_value))
    probs = _softmax_into(scores)
    if dropout_p > 0.0 and training:
        rng = rng or np.random.default_rng()
        keep = _dropout_keep(rng, probs.shape, dropout_p, probs.dtype)
        attn = probs * keep
    else:
        keep = None
        attn = probs
    context = attn @ v
    ctx2d = np.ascontiguousarray(context.transpose(0, 2, 1, 3)).reshape(batch * seq, inner)
    sub2d = ctx2d @ out_weight.data.T
    sub2d += out_bias.data
    if out_dropout_p > 0.0 and training:
        out_rng = out_rng or np.random.default_rng()
        out_keep = _dropout_keep(out_rng, sub2d.shape, out_dropout_p, sub2d.dtype)
        sub2d *= out_keep
    else:
        out_keep = None

    # residual add + post-norm, in place on the fresh projection buffer
    xhat = sub2d
    xhat += x2d
    xhat -= _mean_cols(xhat)
    var = _mean_cols(xhat * xhat)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat *= inv_std
    out2d = xhat * norm_weight.data
    out2d += norm_bias.data
    out = out2d.reshape(batch, seq, dim)

    parents = (x, q_weight, q_bias, k_weight, k_bias, v_weight, v_bias,
               out_weight, out_bias, norm_weight, norm_bias)

    def backward(grad: np.ndarray) -> None:
        g2d = grad.reshape(batch * seq, dim)
        norm_weight._accumulate(g2d * xhat)  # _accumulate sums down to (dim,)
        norm_bias._accumulate(g2d)
        dsum = g2d * norm_weight.data
        mean_dsum = _mean_cols(dsum)
        mean_dsum_xhat = _mean_cols(dsum * xhat)
        dsum -= mean_dsum
        dsum -= xhat * mean_dsum_xhat
        dsum *= inv_std  # gradient of x + attention(x), shape (batch*seq, dim)

        gs2d = dsum if out_keep is None else dsum * out_keep
        out_weight._accumulate_owned(gs2d.T @ ctx2d)
        out_bias._accumulate_owned(gs2d.sum(axis=0))
        dcontext = np.ascontiguousarray(
            (gs2d @ out_weight.data)
            .reshape(batch, seq, num_heads, head_dim).transpose(0, 2, 1, 3))
        dattn = dcontext @ v.transpose(0, 1, 3, 2)
        if keep is not None:
            dattn *= keep  # fresh GEMM output; becomes dprobs in place
        d2 = dattn.reshape(-1, seq)
        p2 = probs.reshape(-1, seq)
        d2 -= _sum_cols(d2 * p2)
        d2 *= p2
        dscores = dattn  # transformed in place through the softmax
        dscores *= scale

        dqkv = np.empty((3, batch, num_heads, seq, head_dim), dtype=p2d.dtype)
        np.matmul(dscores, k, out=dqkv[0])
        np.matmul(dscores.transpose(0, 1, 3, 2), q, out=dqkv[1])
        np.matmul(attn.transpose(0, 1, 3, 2), dcontext, out=dqkv[2])
        d2d = np.ascontiguousarray(
            dqkv.transpose(1, 3, 0, 2, 4)).reshape(batch * seq, 3 * inner)
        dwqkv = d2d.T @ x2d
        q_weight._accumulate_owned(dwqkv[:inner])
        k_weight._accumulate_owned(dwqkv[inner:2 * inner])
        v_weight._accumulate_owned(dwqkv[2 * inner:])
        dbqkv = d2d.sum(axis=0)
        q_bias._accumulate_owned(dbqkv[:inner])
        k_bias._accumulate_owned(dbqkv[inner:2 * inner])
        v_bias._accumulate_owned(dbqkv[2 * inner:])
        if x.requires_grad:
            dx = d2d @ wqkv
            dx += dsum  # residual branch folds in without a second accumulate
            x._accumulate_owned(dx.reshape(batch, seq, dim))

    return Tensor._make(out, parents, "attention_layer", backward)


def ffn(x: Tensor, in_weight: Tensor, in_bias: Tensor,
        out_weight: Tensor, out_bias: Tensor,
        dropout_p: float = 0.0, training: bool = False,
        rng: np.random.Generator | None = None) -> Tensor:
    """Fused transformer feed-forward block: ``linear -> GELU -> linear``.

    One graph node instead of three; both projections run as 2-d GEMMs over
    flattened leading dims and the GELU uses the in-place helpers.  Optional
    inverted dropout on the block output (the dropout an encoder layer
    applies before the residual add) is folded into the same node.
    """
    if not 0.0 <= dropout_p < 1.0:
        raise ValueError(f"dropout_p must be in [0, 1), got {dropout_p}")
    x = _as_tensor(x)
    data = x.data
    lead_shape = data.shape[:-1]
    x2d = data.reshape(-1, data.shape[-1])
    hidden = x2d @ in_weight.data.T
    hidden += in_bias.data
    activated, t, sq = _gelu_forward(hidden)
    out2d = activated @ out_weight.data.T
    out2d += out_bias.data
    if dropout_p > 0.0 and training:
        rng = rng or np.random.default_rng()
        out_keep = _dropout_keep(rng, out2d.shape, dropout_p, out2d.dtype)
        out2d *= out_keep
    else:
        out_keep = None
    out = out2d.reshape(lead_shape + (out_weight.shape[0],))

    parents = (x, in_weight, in_bias, out_weight, out_bias)

    def backward(grad: np.ndarray) -> None:
        g2d = grad.reshape(-1, grad.shape[-1])
        if out_keep is not None:
            g2d = g2d * out_keep
        out_weight._accumulate_owned(g2d.T @ activated)
        out_bias._accumulate_owned(g2d.sum(axis=0))
        dhidden = _gelu_backward(g2d @ out_weight.data, hidden, t, sq)
        in_weight._accumulate_owned(dhidden.T @ x2d)
        in_bias._accumulate_owned(dhidden.sum(axis=0))
        if x.requires_grad:
            x._accumulate_owned((dhidden @ in_weight.data).reshape(data.shape))

    return Tensor._make(out, parents, "ffn", backward)


def ffn_layer(x: Tensor, in_weight: Tensor, in_bias: Tensor,
              out_weight: Tensor, out_bias: Tensor,
              norm_weight: Tensor, norm_bias: Tensor,
              dropout_p: float = 0.0, training: bool = False,
              rng: np.random.Generator | None = None,
              eps: float = 1e-5) -> Tensor:
    """Whole post-norm feed-forward sublayer as one node: ``LN(x + FFN(x))``.

    Same contract as :func:`ffn` plus the residual add and the post-layer-norm,
    so a transformer encoder layer's second half is a single graph node.
    """
    if not 0.0 <= dropout_p < 1.0:
        raise ValueError(f"dropout_p must be in [0, 1), got {dropout_p}")
    x = _as_tensor(x)
    data = x.data
    dim = data.shape[-1]
    x2d = data.reshape(-1, dim)
    hidden = x2d @ in_weight.data.T
    hidden += in_bias.data
    activated, t, sq = _gelu_forward(hidden)
    sub2d = activated @ out_weight.data.T
    sub2d += out_bias.data
    if dropout_p > 0.0 and training:
        rng = rng or np.random.default_rng()
        out_keep = _dropout_keep(rng, sub2d.shape, dropout_p, sub2d.dtype)
        sub2d *= out_keep
    else:
        out_keep = None

    # residual add + post-norm, in place on the fresh projection buffer
    xhat = sub2d
    xhat += x2d
    xhat -= _mean_cols(xhat)
    var = _mean_cols(xhat * xhat)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat *= inv_std
    out2d = xhat * norm_weight.data
    out2d += norm_bias.data
    out = out2d.reshape(data.shape)

    parents = (x, in_weight, in_bias, out_weight, out_bias,
               norm_weight, norm_bias)

    def backward(grad: np.ndarray) -> None:
        g2d = grad.reshape(-1, dim)
        norm_weight._accumulate(g2d * xhat)  # _accumulate sums down to (dim,)
        norm_bias._accumulate(g2d)
        dsum = g2d * norm_weight.data
        mean_dsum = _mean_cols(dsum)
        mean_dsum_xhat = _mean_cols(dsum * xhat)
        dsum -= mean_dsum
        dsum -= xhat * mean_dsum_xhat
        dsum *= inv_std  # gradient of x + ffn(x), shape (batch*seq, dim)

        gs2d = dsum if out_keep is None else dsum * out_keep
        out_weight._accumulate_owned(gs2d.T @ activated)
        out_bias._accumulate_owned(gs2d.sum(axis=0))
        dhidden = _gelu_backward(gs2d @ out_weight.data, hidden, t, sq)
        in_weight._accumulate_owned(dhidden.T @ x2d)
        in_bias._accumulate_owned(dhidden.sum(axis=0))
        if x.requires_grad:
            dx = dhidden @ in_weight.data
            dx += dsum  # residual branch folds in without a second accumulate
            x._accumulate_owned(dx.reshape(data.shape))

    return Tensor._make(out, parents, "ffn_layer", backward)


def tanh_head(x: Tensor, dense_weight: Tensor, dense_bias: Tensor,
              out_weight: Tensor, out_bias: Tensor,
              dropout_p: float = 0.0, training: bool = False,
              rng: np.random.Generator | None = None) -> Tensor:
    """Fused BERT-style classification head: ``linear -> tanh -> dropout ->
    linear`` as one graph node over a pooled ``(batch, dim)`` input."""
    if not 0.0 <= dropout_p < 1.0:
        raise ValueError(f"dropout_p must be in [0, 1), got {dropout_p}")
    x = _as_tensor(x)
    data = x.data
    lead_shape = data.shape[:-1]
    x2d = data.reshape(-1, data.shape[-1])
    hidden = x2d @ dense_weight.data.T
    hidden += dense_bias.data
    t = _backend._ACTIVE.tanh(hidden, out=hidden)
    if dropout_p > 0.0 and training:
        rng = rng or np.random.default_rng()
        keep = _dropout_keep(rng, t.shape, dropout_p, t.dtype)
        activated = t * keep
    else:
        keep = None
        activated = t
    out2d = activated @ out_weight.data.T
    out2d += out_bias.data
    out = out2d.reshape(lead_shape + (out_weight.shape[0],))

    parents = (x, dense_weight, dense_bias, out_weight, out_bias)

    def backward(grad: np.ndarray) -> None:
        g2d = grad.reshape(-1, grad.shape[-1])
        out_weight._accumulate_owned(g2d.T @ activated)
        out_bias._accumulate_owned(g2d.sum(axis=0))
        da = g2d @ out_weight.data
        if keep is not None:
            da *= keep
        sech2 = t * t
        np.subtract(1.0, sech2, out=sech2)
        da *= sech2  # through the tanh
        dense_weight._accumulate_owned(da.T @ x2d)
        dense_bias._accumulate_owned(da.sum(axis=0))
        if x.requires_grad:
            x._accumulate_owned((da @ dense_weight.data).reshape(data.shape))

    return Tensor._make(out, parents, "tanh_head", backward)


def lstm_step(gates_x: Tensor, h_prev: Tensor, c_prev: Tensor, weight_hh: Tensor,
              step_mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
    """One fused LSTM step: all four gates, the cell update and the output
    nonlinearity in a single forward with closed-form backwards.

    Parameters
    ----------
    gates_x:
        ``(batch, 4*hidden)`` input projection ``x_t @ W_ih^T + b`` — hoisted
        out of the time loop by the caller (the cuDNN trick: one
        ``(batch*seq, 4H)`` matmul for the whole sequence).
    h_prev, c_prev:
        ``(batch, hidden)`` previous state.
    weight_hh:
        ``(4*hidden, hidden)`` recurrent weights, gate layout
        ``[input, forget, cell, output]``.
    step_mask:
        Optional boolean ``(batch,)``; rows where False carry the previous
        state through unchanged (padding steps).

    Returns the new ``(h, c)``.  The pair shares one forward computation;
    each output owns a backward closure for its own incoming gradient, so the
    op costs two graph nodes instead of the ~15 a primitive composition
    needs.
    """
    hd = h_prev.shape[-1]
    bk = _backend._ACTIVE
    gates = gates_x.data + h_prev.data @ weight_hh.data.T
    i = bk.sigmoid(gates[:, :hd])
    f = bk.sigmoid(gates[:, hd:2 * hd])
    g = bk.tanh(gates[:, 2 * hd:3 * hd])
    o = bk.sigmoid(gates[:, 3 * hd:])
    c_new = f * c_prev.data + i * g
    t = bk.tanh(c_new)
    h_new = o * t

    if step_mask is not None:
        m = np.asarray(step_mask, dtype=bool).reshape(-1, 1)
        h_data = np.where(m, h_new, h_prev.data)
        c_data = np.where(m, c_new, c_prev.data)
    else:
        m = None
        h_data, c_data = h_new, c_new

    parents = (gates_x, h_prev, c_prev, weight_hh)

    def push(dc: np.ndarray, do: np.ndarray | None,
             dh_pass: np.ndarray | None, dc_pass: np.ndarray | None) -> None:
        """Map an internal cell gradient ``dc`` (+ output-gate grad ``do``)
        onto the four parents, adding any masked passthrough terms."""
        dgates = np.empty_like(gates)
        dgates[:, :hd] = dc * g * i * (1.0 - i)
        dgates[:, hd:2 * hd] = dc * c_prev.data * f * (1.0 - f)
        dgates[:, 2 * hd:3 * hd] = dc * i * (1.0 - g * g)
        dgates[:, 3 * hd:] = 0.0 if do is None else do * o * (1.0 - o)
        gates_x._accumulate(dgates)
        weight_hh._accumulate(dgates.T @ h_prev.data)
        if h_prev.requires_grad:
            dh_prev = dgates @ weight_hh.data
            h_prev._accumulate(dh_prev if dh_pass is None else dh_prev + dh_pass)
        if c_prev.requires_grad:
            dc_prev = dc * f
            c_prev._accumulate(dc_prev if dc_pass is None else dc_prev + dc_pass)

    def backward_h(grad: np.ndarray) -> None:
        if m is not None:
            dh_pass = np.where(m, 0.0, grad)
            grad = np.where(m, grad, 0.0)
        else:
            dh_pass = None
        do = grad * t
        dc = grad * o * (1.0 - t * t)
        push(dc, do, dh_pass, None)

    def backward_c(grad: np.ndarray) -> None:
        if m is not None:
            dc_pass = np.where(m, 0.0, grad)
            grad = np.where(m, grad, 0.0)
        else:
            dc_pass = None
        push(grad, None, None, dc_pass)

    h_out = Tensor._make(h_data, parents, "lstm_step_h", backward_h)
    c_out = Tensor._make(c_data, parents, "lstm_step_c", backward_c)
    return h_out, c_out


def unbind(x: Tensor, axis: int = 1) -> list[Tensor]:
    """Split ``x`` into per-index tensors along ``axis``.

    Unlike ``x[:, t]`` slicing (whose backward allocates a full zeros array
    per step), each slice's backward writes its gradient directly into the
    parent's accumulation buffer — O(slice) per step, which is what makes the
    hoisted LSTM input projection profitable.
    """
    n = x.shape[axis]
    prefix = (slice(None),) * (axis % x.ndim)

    def make(index: int) -> Tensor:
        sl = prefix + (index,)
        data = np.ascontiguousarray(x.data[sl])

        def backward(grad: np.ndarray) -> None:
            if not x.requires_grad:
                return
            if x.grad is None:
                x.grad = np.zeros_like(x.data)
            x.grad[sl] += grad

        return Tensor._make(data, (x,), f"unbind[{index}]", backward)

    return [make(index) for index in range(n)]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit (method alias)."""
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent (method alias)."""
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid (method alias)."""
    return x.sigmoid()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: zero elements with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng or np.random.default_rng()
    keep = _dropout_keep(rng, x.shape, p, x.dtype)
    return x * Tensor(keep)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight.T + bias`` with torch-style ``(out, in)`` weight layout.

    Fused: any leading batch dims are flattened so both the forward and the
    weight-gradient run as single 2-d GEMMs (numpy's batched 3-d matmul
    loops per sample), and the bias add/reduction happens inside the node.
    """
    x = _as_tensor(x)
    data = x.data
    lead_shape = data.shape[:-1]
    x2d = data.reshape(-1, data.shape[-1])
    out2d = x2d @ weight.data.T
    if bias is not None:
        out2d += bias.data
    out = out2d.reshape(lead_shape + (weight.shape[0],))
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        g2d = grad.reshape(-1, grad.shape[-1])
        x._accumulate_owned((g2d @ weight.data).reshape(data.shape))
        weight._accumulate_owned(g2d.T @ x2d)
        if bias is not None:
            bias._accumulate_owned(g2d.sum(axis=0))

    return Tensor._make(out, parents, "linear", backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` (vocab, dim) by integer ``indices``."""
    idx = np.asarray(indices, dtype=np.int64)
    return weight[idx]


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a float one-hot encoding (plain numpy; no gradient)."""
    idx = np.asarray(indices, dtype=np.int64).reshape(-1)
    out = np.zeros((idx.shape[0], num_classes), dtype=get_default_dtype())
    out[np.arange(idx.shape[0]), idx] = 1.0
    return out
