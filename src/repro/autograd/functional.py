"""Functional neural-network operations built on :class:`repro.autograd.Tensor`.

These mirror the parts of ``torch.nn.functional`` used by the paper's models:
softmax / log-softmax, cross-entropy (with ``ignore_index`` for masked-language
-model training), GELU, dropout and a scaled-dot-product attention helper.
"""

from __future__ import annotations

import math

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "nll_loss",
    "gelu",
    "relu",
    "tanh",
    "sigmoid",
    "dropout",
    "linear",
    "embedding",
    "one_hot",
]

_GELU_COEFF = math.sqrt(2.0 / math.pi)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def nll_loss(log_probs: Tensor, targets: np.ndarray, ignore_index: int | None = None,
             reduction: str = "mean", class_weights: np.ndarray | None = None) -> Tensor:
    """Negative log likelihood from log-probabilities.

    Parameters
    ----------
    log_probs:
        ``(N, C)`` tensor of log-probabilities.
    targets:
        ``(N,)`` integer class indices.
    ignore_index:
        Target value whose positions contribute zero loss (used for non-masked
        positions in MLM training).
    reduction:
        ``"mean"`` (weighted mean over non-ignored targets, torch semantics),
        ``"sum"`` or ``"none"``.
    class_weights:
        Optional per-class loss weights ``(C,)`` — the standard treatment for
        imbalanced clinical cohorts (e.g. the 21% ADR-positive rate).
    """
    targets = np.asarray(targets, dtype=np.int64).reshape(-1)
    n = targets.shape[0]
    if log_probs.shape[0] != n:
        raise ValueError(f"log_probs batch {log_probs.shape[0]} != targets batch {n}")
    if ignore_index is not None:
        valid = targets != ignore_index
        safe_targets = np.where(valid, targets, 0)
    else:
        valid = np.ones(n, dtype=bool)
        safe_targets = targets
    picked = log_probs[(np.arange(n), safe_targets)]
    weight_values = valid.astype(log_probs.dtype)
    if class_weights is not None:
        class_weights = np.asarray(class_weights, dtype=log_probs.dtype)
        if class_weights.shape != (log_probs.shape[-1],):
            raise ValueError(
                f"class_weights shape {class_weights.shape} != ({log_probs.shape[-1]},)")
        weight_values = weight_values * class_weights[safe_targets]
    weights = Tensor(weight_values)
    losses = -picked * weights
    if reduction == "none":
        return losses
    total = losses.sum()
    if reduction == "sum":
        return total
    if reduction == "mean":
        denominator = float(weight_values.sum())
        return total * (1.0 / max(denominator, 1e-12))
    raise ValueError(f"unknown reduction {reduction!r}")


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: int | None = None,
                  reduction: str = "mean",
                  class_weights: np.ndarray | None = None) -> Tensor:
    """Softmax cross-entropy between ``(N, C)`` logits and integer targets."""
    if logits.ndim != 2:
        logits = logits.reshape(-1, logits.shape[-1])
    return nll_loss(log_softmax(logits, axis=-1), targets, ignore_index=ignore_index,
                    reduction=reduction, class_weights=class_weights)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     reduction: str = "mean") -> Tensor:
    """Stable sigmoid cross-entropy: ``max(x,0) - x*t + log(1+exp(-|x|))``."""
    t = Tensor(np.asarray(targets, dtype=logits.dtype))
    relu_x = logits.relu()
    # |x| expressed as relu(x) + relu(-x) keeps the gradient path intact.
    abs_x = logits.relu() + (-logits).relu()
    softplus = (Tensor(np.ones_like(logits.data)) + (-abs_x).exp()).log()
    losses = relu_x - logits * t + softplus
    if reduction == "none":
        return losses
    if reduction == "sum":
        return losses.sum()
    return losses.mean()


def gelu(x: Tensor) -> Tensor:
    """GELU activation (tanh approximation, as in the original BERT code)."""
    inner = (x + x * x * x * 0.044715) * _GELU_COEFF
    return x * (inner.tanh() + 1.0) * 0.5


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit (method alias)."""
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent (method alias)."""
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid (method alias)."""
    return x.sigmoid()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: zero elements with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng or np.random.default_rng()
    keep = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(keep)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight.T + bias`` with torch-style ``(out, in)`` weight layout."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` (vocab, dim) by integer ``indices``."""
    idx = np.asarray(indices, dtype=np.int64)
    return weight[idx]


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a float one-hot encoding (plain numpy; no gradient)."""
    idx = np.asarray(indices, dtype=np.int64).reshape(-1)
    out = np.zeros((idx.shape[0], num_classes), dtype=np.float64)
    out[np.arange(idx.shape[0]), idx] = 1.0
    return out
