"""Numerical gradient checking used by the test suite.

Central-difference derivatives are compared against autograd gradients; every
layer in :mod:`repro.nn` is validated this way, which is the correctness
anchor for the whole training stack.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_grad", "check_gradients"]


def numerical_grad(fn: Callable[[], Tensor], wrt: Tensor, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``wrt.data``.

    ``fn`` must re-run the forward pass reading the *current* contents of
    ``wrt.data`` and return a scalar Tensor.
    """
    flat = wrt.data.reshape(-1)
    grad = np.zeros_like(flat)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = float(fn().data)
        flat[index] = original - eps
        minus = float(fn().data)
        flat[index] = original
        grad[index] = (plus - minus) / (2.0 * eps)
    return grad.reshape(wrt.data.shape)


def check_gradients(fn: Callable[[], Tensor], params: list[Tensor], *,
                    eps: float = 1e-5, atol: float = 1e-4, rtol: float = 1e-3) -> None:
    """Assert autograd gradients of ``fn`` match numerics for every param.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for param in params:
        param.grad = None
    loss = fn()
    loss.backward()
    for position, param in enumerate(params):
        expected = numerical_grad(fn, param, eps=eps)
        actual = param.grad if param.grad is not None else np.zeros_like(param.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(actual - expected)))
            raise AssertionError(
                f"gradient mismatch for param #{position} (shape {param.data.shape}): "
                f"max abs error {worst:.3e}"
            )
