"""Learning-rate schedulers: constant, step decay, cosine, linear warmup.

BERT pretraining conventionally uses linear warmup; the paper's fine-tuning
runs use a constant learning rate of 1e-2 (Table I).  Schedulers mutate the
optimiser's ``lr`` attribute in place on each :meth:`step`.
"""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "ConstantLR", "StepLR", "CosineAnnealingLR", "WarmupLinearLR"]


class LRScheduler:
    """Base scheduler: tracks an epoch counter and rewrites ``optimizer.lr``."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:
        """Learning rate for the current ``last_epoch``."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.last_epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRScheduler):
    """Keep the learning rate fixed (the paper's fine-tuning setting)."""

    def get_lr(self) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.last_epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + math.cos(math.pi * progress))


class WarmupLinearLR(LRScheduler):
    """Linear warmup to the base rate, then linear decay to zero.

    The schedule used by the original BERT pretraining recipe.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int) -> None:
        super().__init__(optimizer)
        if total_steps <= 0 or warmup_steps < 0 or warmup_steps > total_steps:
            raise ValueError("need 0 <= warmup_steps <= total_steps and total_steps > 0")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def get_lr(self) -> float:
        step = min(self.last_epoch, self.total_steps)
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        remaining = self.total_steps - step
        denom = max(self.total_steps - self.warmup_steps, 1)
        return self.base_lr * remaining / denom
