"""glibc allocator tuning for large numpy temporaries.

Training steps allocate and free many multi-hundred-KB arrays (activations,
gradients, dropout masks).  glibc's default ``M_MMAP_THRESHOLD`` (128 KB,
dynamic) services those with ``mmap``/``munmap`` pairs, so every step pays
page-fault and zeroing costs for buffers that are immediately reallocated.
Raising the mmap and trim thresholds keeps those blocks on the heap where
they are reused, which measurably speeds up the fused training path
(~15-20% on the BERT-mini train step).

Set ``REPRO_NO_MALLOC_TUNE=1`` to skip the tuning (e.g. for memory-footprint
profiling).  Non-Linux / non-glibc platforms are silently left untouched.
"""

from __future__ import annotations

import os
import sys

__all__ = ["tune_malloc"]

_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3
_THRESHOLD_BYTES = 1 << 26  # 64 MB: well above any per-op buffer we allocate

_applied = False
_at_fork_registered = False


def _reapply_after_fork() -> None:
    """Re-run the tuning in a freshly-forked child.

    glibc nominally copies ``mallopt`` state across ``fork``, but the
    process-per-client runner must not depend on that: the child resets the
    applied flag and tunes again, so a worker forked before (or regardless
    of) the parent's call still trains with the thresholds raised.
    """
    global _applied
    _applied = False
    tune_malloc()


def tune_malloc() -> bool:
    """Raise glibc's mmap/trim thresholds; returns True if applied."""
    global _applied, _at_fork_registered
    if _applied:
        return True
    if os.environ.get("REPRO_NO_MALLOC_TUNE"):
        return False
    if not sys.platform.startswith("linux"):
        return False
    try:
        import ctypes

        libc = ctypes.CDLL("libc.so.6")
        ok = bool(libc.mallopt(_M_MMAP_THRESHOLD, _THRESHOLD_BYTES))
        ok = bool(libc.mallopt(_M_TRIM_THRESHOLD, _THRESHOLD_BYTES)) and ok
        _applied = ok
        if ok and not _at_fork_registered:
            os.register_at_fork(after_in_child=_reapply_after_fork)
            _at_fork_registered = True
        return ok
    except Exception:
        return False
