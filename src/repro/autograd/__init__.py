"""``repro.autograd`` — the from-scratch deep-learning substrate.

Stands in for PyTorch in this reproduction: a reverse-mode autodiff
:class:`Tensor`, a :class:`Module` system, optimisers, LR schedulers,
gradient clipping and checkpoint serialization.
"""

from ._malloc import tune_malloc

tune_malloc()  # keep large numpy temporaries on the heap (see _malloc.py)

from . import functional, init, reference
from ._blas import blas_thread_info, get_blas_threads, set_blas_threads
from .backend import (
    ArrayBackend,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from .clip import clip_grad_norm, clip_grad_value, grad_global_norm
from .module import Module, ModuleList, Parameter
from .numerical import check_gradients, numerical_grad
from .optim import SGD, Adam, AdamW, Optimizer
from .schedulers import (
    ConstantLR,
    CosineAnnealingLR,
    LRScheduler,
    StepLR,
    WarmupLinearLR,
)
from .serialization import (
    load_state_dict,
    save_state_dict,
    state_dict_from_bytes,
    state_dict_to_bytes,
)
from .tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    ones,
    set_default_dtype,
    tensor,
    zeros,
)

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones",
    "get_default_dtype", "set_default_dtype", "default_dtype",
    "Module", "ModuleList", "Parameter",
    "Optimizer", "SGD", "Adam", "AdamW",
    "LRScheduler", "ConstantLR", "StepLR", "CosineAnnealingLR", "WarmupLinearLR",
    "clip_grad_norm", "clip_grad_value", "grad_global_norm",
    "save_state_dict", "load_state_dict", "state_dict_to_bytes", "state_dict_from_bytes",
    "check_gradients", "numerical_grad",
    "functional", "init", "reference", "tune_malloc",
    "ArrayBackend", "active_backend", "available_backends", "get_backend",
    "register_backend", "set_backend", "use_backend",
    "blas_thread_info", "get_blas_threads", "set_blas_threads",
]
