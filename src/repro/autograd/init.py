"""Weight initialisation schemes (Xavier/Glorot, Kaiming/He, normal, uniform).

All initialisers take an explicit ``numpy.random.Generator`` so model
construction is reproducible end to end — a requirement for comparing
centralized / standalone / federated runs on equal footing.
"""

from __future__ import annotations

import math

import numpy as np

DEFAULT_DTYPE = np.float32

__all__ = [
    "DEFAULT_DTYPE",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "normal",
    "uniform",
    "zeros",
    "ones",
]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        raise ValueError(f"fan in/out undefined for shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(±gain·sqrt(6/(fan_in+fan_out)))."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: N(0, gain²·2/(fan_in+fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(DEFAULT_DTYPE)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, a: float = math.sqrt(5)) -> np.ndarray:
    """He uniform with leaky-relu gain (torch's Linear default)."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02, mean: float = 0.0) -> np.ndarray:
    """Gaussian init (BERT's 0.02-std default)."""
    return rng.normal(mean, std, size=shape).astype(DEFAULT_DTYPE)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Uniform init on [low, high)."""
    return rng.uniform(low, high, size=shape).astype(DEFAULT_DTYPE)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros init (biases)."""
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-ones init (norm scales)."""
    return np.ones(shape, dtype=DEFAULT_DTYPE)
