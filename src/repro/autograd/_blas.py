"""ctypes control of the BLAS thread pool numpy is linked against.

The big GEMMs in the fused kernels run inside whatever BLAS numpy was built
on (OpenBLAS for the wheels this repro pins).  That library owns its own
thread pool, sized at load time from the machine's core count — which is
exactly wrong once the simulator forks one worker process per client: N
workers x M BLAS threads oversubscribes N*M ways and every GEMM slows down.

``threadpoolctl`` is the usual answer but is not a dependency of this repo,
so this module speaks to the loaded BLAS directly: it finds the shared
object already mapped into the process (``/proc/self/maps``), loads it with
:mod:`ctypes` (a second ``dlopen`` of a loaded library just bumps its
refcount) and calls its thread-count entry points.  Everything degrades to
a no-op — ``None`` returns — when the platform or the BLAS flavour does not
cooperate; callers must treat thread pinning as best-effort.

Used by the ``blas`` array backend (:mod:`repro.autograd.backend`) and by
the process-per-client runner, which pins children to
``max(1, cores // workers)`` threads (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import os
import sys
import threading

__all__ = ["set_blas_threads", "get_blas_threads", "blas_thread_info",
           "recommended_blas_threads"]

# Symbol spellings across BLAS flavours.  The 64-bit-index OpenBLAS builds
# scipy/numpy wheels use suffix their exports (``openblas_set_num_threads64_``).
_SET_SYMBOLS = (
    "scipy_openblas_set_num_threads64_",   # scipy-openblas wheels (numpy >= 2)
    "openblas_set_num_threads64_",
    "openblas_set_num_threads",
    "goto_set_num_threads",
    "bli_thread_set_num_threads",
    "MKL_Set_Num_Threads",
)
_GET_SYMBOLS = (
    "scipy_openblas_get_num_threads64_",
    "openblas_get_num_threads64_",
    "openblas_get_num_threads",
    "bli_thread_get_num_threads",
    "mkl_get_max_threads",
)

_lock = threading.Lock()
_searched = False
_set_fn = None
_get_fn = None
_library_path: str | None = None


def _mapped_blas_libraries() -> list[str]:
    """Shared objects already mapped into this process that look like a BLAS."""
    paths: list[str] = []
    try:
        with open("/proc/self/maps") as handle:
            for line in handle:
                parts = line.split()
                if not parts:
                    continue
                path = parts[-1]
                if not path.startswith("/"):
                    continue
                base = os.path.basename(path).lower()
                if ("blas" in base or "mkl" in base or "blis" in base) \
                        and path not in paths:
                    paths.append(path)
    except OSError:
        pass
    return paths


def _resolve() -> None:
    """Locate the thread-count entry points once; cache the outcome."""
    global _searched, _set_fn, _get_fn, _library_path
    if _searched:
        return
    with _lock:
        if _searched:
            return
        _searched = True
        if not sys.platform.startswith("linux"):
            return
        try:
            import ctypes

            import numpy  # noqa: F401  (ensures the BLAS is mapped)
        except Exception:  # pragma: no cover - numpy is a hard dependency
            return
        for path in _mapped_blas_libraries():
            try:
                lib = ctypes.CDLL(path)
            except OSError:
                continue
            set_fn = next((getattr(lib, name) for name in _SET_SYMBOLS
                           if hasattr(lib, name)), None)
            if set_fn is None:
                continue
            get_fn = next((getattr(lib, name) for name in _GET_SYMBOLS
                           if hasattr(lib, name)), None)
            set_fn.argtypes = [ctypes.c_int]
            set_fn.restype = None
            if get_fn is not None:
                get_fn.argtypes = []
                get_fn.restype = ctypes.c_int
            _set_fn, _get_fn, _library_path = set_fn, get_fn, path
            return


def get_blas_threads() -> int | None:
    """The BLAS pool's current thread count, or ``None`` when unknowable."""
    _resolve()
    if _get_fn is None:
        return None
    try:
        return int(_get_fn())
    except Exception:  # pragma: no cover - defensive
        return None


def set_blas_threads(n: int) -> int | None:
    """Resize the BLAS thread pool to ``n``; returns the previous count.

    Best-effort: returns ``None`` (and changes nothing) when the loaded
    BLAS exposes no thread-count entry point.  ``n`` is clamped to >= 1.
    """
    if n < 1:
        n = 1
    _resolve()
    if _set_fn is None:
        return None
    previous = get_blas_threads()
    try:
        _set_fn(int(n))
    except Exception:  # pragma: no cover - defensive
        return None
    return previous


def blas_thread_info() -> dict:
    """Diagnostics: which library/symbols were found and the current count."""
    _resolve()
    return {
        "library": _library_path,
        "controllable": _set_fn is not None,
        "threads": get_blas_threads(),
    }


def recommended_blas_threads(workers: int) -> int:
    """Per-worker BLAS threads that avoid oversubscription.

    With ``workers`` processes training concurrently the pools must share
    the machine: ``max(1, cores // workers)``.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cores = os.cpu_count() or 1
    return max(1, cores // max(1, workers))
