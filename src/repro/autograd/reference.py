"""Unfused reference implementations of the fused ops in ``functional``.

These are the original first-generation compositions built from primitive
:class:`Tensor` ops (one graph node per ``exp``/``sum``/``mul``/...).  They
are kept as the correctness oracle for the fused kernels: every fused op in
:mod:`repro.autograd.functional` must produce the same outputs and the same
gradients as its composition here, and the test suite enforces that.

Each function mirrors the fused op's signature exactly, so a test can swap
one layer of the stack onto the reference implementations (e.g. via
monkeypatching ``repro.autograd.functional``) and re-run a fixed-seed
training run for bitwise-level comparison.

Do not use these in the training path — they are 2-10x slower; that gap is
tracked by ``benchmarks/test_fused_ops_microbench.py``.
"""

from __future__ import annotations

import math

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "gelu",
    "layer_norm",
    "add_layer_norm",
    "embed_layer_norm",
    "scaled_dot_product_attention",
    "multi_head_attention",
    "attention_layer",
    "ffn",
    "ffn_layer",
    "tanh_head",
    "lstm_step",
    "unbind",
]

_GELU_COEFF = math.sqrt(2.0 / math.pi)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax composed from primitive ops."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax composed from primitive ops."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: int | None = None,
                  reduction: str = "mean",
                  class_weights: np.ndarray | None = None) -> Tensor:
    """Cross-entropy as ``nll_loss(log_softmax(...))`` with a full graph."""
    from .functional import nll_loss

    if logits.ndim != 2:
        logits = logits.reshape(-1, logits.shape[-1])
    if isinstance(targets, Tensor):
        targets = targets.data
    return nll_loss(log_softmax(logits, axis=-1), targets, ignore_index=ignore_index,
                    reduction=reduction, class_weights=class_weights)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     reduction: str = "mean") -> Tensor:
    """Stable sigmoid cross-entropy: ``max(x,0) - x*t + log(1+exp(-|x|))``."""
    t = Tensor(np.asarray(targets, dtype=logits.dtype))
    relu_x = logits.relu()
    # |x| expressed as relu(x) + relu(-x) keeps the gradient path intact.
    abs_x = logits.relu() + (-logits).relu()
    softplus = (Tensor(np.ones_like(logits.data)) + (-abs_x).exp()).log()
    losses = relu_x - logits * t + softplus
    if reduction == "none":
        return losses
    if reduction == "sum":
        return losses.sum()
    return losses.mean()


def gelu(x: Tensor) -> Tensor:
    """GELU (tanh approximation) composed from primitive ops."""
    inner = (x + x * x * x * 0.044715) * _GELU_COEFF
    return x * (inner.tanh() + 1.0) * 0.5


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer norm differentiated through the mean/variance composition."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalised = centered * ((variance + eps) ** -0.5)
    return normalised * weight + bias


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 attention_mask: np.ndarray | None = None,
                                 dropout_p: float = 0.0, training: bool = False,
                                 rng: np.random.Generator | None = None,
                                 mask_value: float = -1e9) -> Tensor:
    """Attention composed from matmul / masked_fill / softmax / dropout."""
    from .functional import dropout

    scale = 1.0 / math.sqrt(q.shape[-1])
    scores = (q @ k.swapaxes(-1, -2)) * scale
    if attention_mask is not None:
        blocked = ~np.asarray(attention_mask, dtype=bool)
        scores = scores.masked_fill(np.broadcast_to(blocked, scores.shape), mask_value)
    probs = softmax(scores, axis=-1)
    if dropout_p > 0.0 and training:
        from .functional import _dropout_keep

        rng = rng or np.random.default_rng()
        # draw through the shared helper so a common generator produces the
        # identical mask the fused kernel would
        probs = probs * Tensor(_dropout_keep(rng, probs.shape, dropout_p,
                                             probs.dtype))
    return probs @ v


def multi_head_attention(x: Tensor, q_weight: Tensor, q_bias: Tensor,
                         k_weight: Tensor, k_bias: Tensor,
                         v_weight: Tensor, v_bias: Tensor,
                         out_weight: Tensor, out_bias: Tensor,
                         num_heads: int,
                         attention_mask: np.ndarray | None = None,
                         dropout_p: float = 0.0, training: bool = False,
                         rng: np.random.Generator | None = None,
                         mask_value: float = -1e9,
                         out_dropout_p: float = 0.0,
                         out_rng: np.random.Generator | None = None) -> Tensor:
    """The attention block as separate projections, reshapes and attention."""
    from .functional import _dropout_keep, linear

    batch, seq, _ = x.shape
    inner = q_weight.shape[0]
    head_dim = inner // num_heads

    def split_heads(projected: Tensor) -> Tensor:
        return projected.reshape(batch, seq, num_heads, head_dim).transpose(0, 2, 1, 3)

    q = split_heads(linear(x, q_weight, q_bias))
    k = split_heads(linear(x, k_weight, k_bias))
    v = split_heads(linear(x, v_weight, v_bias))
    context = scaled_dot_product_attention(
        q, k, v, attention_mask=attention_mask, dropout_p=dropout_p,
        training=training, rng=rng, mask_value=mask_value)
    merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, inner)
    out = linear(merged, out_weight, out_bias)
    if out_dropout_p > 0.0 and training:
        out_rng = out_rng or np.random.default_rng()
        out = out * Tensor(_dropout_keep(out_rng, out.shape, out_dropout_p,
                                         out.dtype))
    return out


def attention_layer(x: Tensor, q_weight: Tensor, q_bias: Tensor,
                    k_weight: Tensor, k_bias: Tensor,
                    v_weight: Tensor, v_bias: Tensor,
                    out_weight: Tensor, out_bias: Tensor,
                    num_heads: int, norm_weight: Tensor, norm_bias: Tensor,
                    attention_mask: np.ndarray | None = None,
                    dropout_p: float = 0.0, training: bool = False,
                    rng: np.random.Generator | None = None,
                    mask_value: float = -1e9,
                    out_dropout_p: float = 0.0,
                    out_rng: np.random.Generator | None = None,
                    eps: float = 1e-5) -> Tensor:
    """Post-norm attention sublayer ``LN(x + MHA(x))`` from unfused pieces."""
    sub = multi_head_attention(
        x, q_weight, q_bias, k_weight, k_bias, v_weight, v_bias,
        out_weight, out_bias, num_heads, attention_mask=attention_mask,
        dropout_p=dropout_p, training=training, rng=rng, mask_value=mask_value,
        out_dropout_p=out_dropout_p, out_rng=out_rng)
    return layer_norm(x + sub, norm_weight, norm_bias, eps=eps)


def ffn(x: Tensor, in_weight: Tensor, in_bias: Tensor,
        out_weight: Tensor, out_bias: Tensor,
        dropout_p: float = 0.0, training: bool = False,
        rng: np.random.Generator | None = None) -> Tensor:
    """Feed-forward block as two separate linears around an unfused GELU."""
    from .functional import _dropout_keep, linear

    out = linear(gelu(linear(x, in_weight, in_bias)), out_weight, out_bias)
    if dropout_p > 0.0 and training:
        rng = rng or np.random.default_rng()
        out = out * Tensor(_dropout_keep(rng, out.shape, dropout_p, out.dtype))
    return out


def ffn_layer(x: Tensor, in_weight: Tensor, in_bias: Tensor,
              out_weight: Tensor, out_bias: Tensor,
              norm_weight: Tensor, norm_bias: Tensor,
              dropout_p: float = 0.0, training: bool = False,
              rng: np.random.Generator | None = None,
              eps: float = 1e-5) -> Tensor:
    """Post-norm feed-forward sublayer ``LN(x + FFN(x))`` from unfused pieces."""
    sub = ffn(x, in_weight, in_bias, out_weight, out_bias,
              dropout_p=dropout_p, training=training, rng=rng)
    return layer_norm(x + sub, norm_weight, norm_bias, eps=eps)


def add_layer_norm(x: Tensor, sub: Tensor, weight: Tensor, bias: Tensor,
                   eps: float = 1e-5) -> Tensor:
    """Residual add + layer norm as separate primitive graph nodes."""
    return layer_norm(x + sub, weight, bias, eps=eps)


def embed_layer_norm(token_weight: Tensor, position_weight: Tensor,
                     ids: np.ndarray, ln_weight: Tensor, ln_bias: Tensor,
                     eps: float = 1e-5, dropout_p: float = 0.0,
                     training: bool = False,
                     rng: np.random.Generator | None = None) -> Tensor:
    """The embedding block as separate lookup / add / norm / dropout nodes."""
    from .functional import _dropout_keep, embedding

    idx = np.asarray(ids, dtype=np.int64)
    _, seq = idx.shape
    embedded = embedding(token_weight, idx) + position_weight[np.arange(seq)]
    out = layer_norm(embedded, ln_weight, ln_bias, eps=eps)
    if dropout_p > 0.0 and training:
        rng = rng or np.random.default_rng()
        out = out * Tensor(_dropout_keep(rng, out.shape, dropout_p, out.dtype))
    return out


def tanh_head(x: Tensor, dense_weight: Tensor, dense_bias: Tensor,
              out_weight: Tensor, out_bias: Tensor,
              dropout_p: float = 0.0, training: bool = False,
              rng: np.random.Generator | None = None) -> Tensor:
    """The classification head as separate linear / tanh / dropout nodes."""
    from .functional import _dropout_keep, linear

    hidden = linear(x, dense_weight, dense_bias).tanh()
    if dropout_p > 0.0 and training:
        rng = rng or np.random.default_rng()
        hidden = hidden * Tensor(_dropout_keep(rng, hidden.shape, dropout_p,
                                               hidden.dtype))
    return linear(hidden, out_weight, out_bias)


def lstm_step(gates_x: Tensor, h_prev: Tensor, c_prev: Tensor, weight_hh: Tensor,
              step_mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
    """One LSTM step composed from ~15 primitive graph nodes."""
    hd = h_prev.shape[-1]
    gates = gates_x + h_prev @ weight_hh.transpose()
    i = gates[:, 0 * hd:1 * hd].sigmoid()
    f = gates[:, 1 * hd:2 * hd].sigmoid()
    g = gates[:, 2 * hd:3 * hd].tanh()
    o = gates[:, 3 * hd:4 * hd].sigmoid()
    c = f * c_prev + i * g
    h = o * c.tanh()
    if step_mask is not None:
        keep = Tensor(np.asarray(step_mask, dtype=bool)
                      .astype(h.dtype).reshape(-1, 1))
        h = h * keep + h_prev * (1.0 - keep)
        c = c * keep + c_prev * (1.0 - keep)
    return h, c


def unbind(x: Tensor, axis: int = 1) -> list[Tensor]:
    """Per-index slices via ``__getitem__`` (full-size zeros per backward)."""
    prefix = (slice(None),) * (axis % x.ndim)
    return [x[prefix + (index,)] for index in range(x.shape[axis])]
