"""Pluggable array backends for the fused kernels in :mod:`.functional`.

The fused ops dispatch their inner loops — GELU forward/backward, the
softmax family, tanh/sigmoid gate math — through one active
:class:`ArrayBackend`, selected at runtime:

.. code-block:: python

    from repro.autograd import set_backend, use_backend

    set_backend("blas")              # process-wide, returns the old name
    with use_backend("fastmath"):    # scoped
        train_step(...)

or via the environment: ``REPRO_BACKEND=fastmath python train.py``.  Three
backends ship:

``numpy`` (default)
    The PR 2 kernels exactly as written — the bit-for-bit reference every
    other backend is validated against (``tests/autograd/test_fused_ops.py``
    runs the oracle/gradient-check suite over every registered name).

``blas``
    Identical numerics, plus control of the BLAS thread pool behind
    numpy's GEMMs (:mod:`._blas`): activation resizes the pool to
    ``REPRO_BLAS_THREADS`` (or the core count), deactivation restores it.
    This is the threaded-GEMM path on multi-core hosts and, just as
    importantly, how forked client workers *shrink* their pools to avoid
    N-workers-x-M-threads oversubscription (``docs/PERFORMANCE.md``).

``fastmath``
    Tolerance-bounded (<= 1e-6) rather than bit-identical: sigmoid is
    computed as ``0.5 * tanh(x/2) + 0.5`` (one SIMD ``tanh`` pass instead
    of the slower ``exp`` + divide chain — the LSTM gate hot path), and
    large GELU chains run cache-blocked so all eight elementwise passes
    touch a block while it is L2-resident instead of streaming the whole
    array from DRAM eight times.

Backends are tiny objects; registering a new one is
``register_backend(MyBackend())``.  Unknown names always raise
``ValueError`` naming the available choices.
"""

from __future__ import annotations

import contextlib
import math
import os
import threading

import numpy as np

__all__ = [
    "ArrayBackend", "NumpyBackend", "BlasBackend", "FastmathBackend",
    "register_backend", "available_backends", "get_backend", "set_backend",
    "use_backend", "active_backend",
]

_GELU_COEFF = math.sqrt(2.0 / math.pi)
_GELU_CUBIC = 0.044715

# Cached broadcast vectors for GEMV-based row reductions.  A (rows, n) @ (n,)
# matrix-vector product computes all row sums/means ~6x faster than
# ``.sum(axis=-1)``'s strided reduce on the short rows used here.
_red_vec_cache: dict[tuple[int, str, bool], np.ndarray] = {}


def _red_vec(n: int, dtype: np.dtype, mean: bool) -> np.ndarray:
    key = (n, dtype.str, mean)
    vec = _red_vec_cache.get(key)
    if vec is None:
        vec = np.full((n,), 1.0 / n if mean else 1.0, dtype=dtype)
        _red_vec_cache[key] = vec
    return vec


def _sum_cols(a2d: np.ndarray) -> np.ndarray:
    """Row sums of a 2-d array as a (rows, 1) column, via GEMV."""
    return (a2d @ _red_vec(a2d.shape[-1], a2d.dtype, False))[:, None]


def _mean_cols(a2d: np.ndarray) -> np.ndarray:
    """Row means of a 2-d array as a (rows, 1) column, via GEMV."""
    return (a2d @ _red_vec(a2d.shape[-1], a2d.dtype, True))[:, None]


class ArrayBackend:
    """One set of inner-loop kernels for the fused ops.

    The base class *is* the numpy reference implementation; subclasses
    override individual kernels (everything composes through ``self`` so
    overriding ``exp`` changes every softmax, overriding ``tanh`` changes
    GELU).  Contract: ``out`` may alias the input, inputs not named ``out``
    or ``owned`` must not be mutated, and results must stay within the
    tolerance the backend declares in :meth:`describe` of the ``numpy``
    backend (0.0 means bit-identical).
    """

    name = "abstract"

    # ------------------------------------------------------------------
    # elementwise transcendentals
    # ------------------------------------------------------------------
    def exp(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        return np.exp(x, out=out)

    def tanh(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        return np.tanh(x, out=out)

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + self.exp(-x))

    # ------------------------------------------------------------------
    # fused blocks
    # ------------------------------------------------------------------
    def gelu_forward(self, data: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Tanh-approximation GELU: ``(out, tanh_term, x_squared)``.

        Built from in-place multiplies — ``x*x*x`` beats ``np.power`` by
        ~80x on float32, and reusing the temporaries halves the memory
        traffic of the naive expression.  ``x_squared`` is kept so the
        backward pass skips recomputing it.
        """
        sq = data * data
        inner = sq * (_GELU_COEFF * _GELU_CUBIC)
        inner += _GELU_COEFF
        inner *= data  # inner = coeff * (x + cubic * x^3)
        t = self.tanh(inner, out=inner)
        out = t + 1.0
        out *= data
        out *= 0.5
        return out, t, sq

    def gelu_backward(self, grad: np.ndarray, data: np.ndarray,
                      t: np.ndarray, sq: np.ndarray) -> np.ndarray:
        """d GELU(x)/dx from the saved tanh/square terms, applied to ``grad``."""
        dinner = sq * (3.0 * _GELU_CUBIC * _GELU_COEFF)
        dinner += _GELU_COEFF
        dinner *= data  # dinner = x * d/dx of the tanh argument
        deriv = t * t
        np.subtract(1.0, deriv, out=deriv)  # sech^2 = 1 - tanh^2
        deriv *= dinner
        deriv += t
        deriv += 1.0
        deriv *= 0.5
        deriv *= grad
        return deriv

    def softmax_into(self, owned: np.ndarray, axis: int = -1) -> np.ndarray:
        """Numerically-stable softmax fully in place on a caller-owned buffer."""
        owned -= owned.max(axis=axis, keepdims=True)
        self.exp(owned, out=owned)
        if axis == -1 and owned.flags.c_contiguous:
            flat = owned.reshape(-1, owned.shape[-1])
            flat /= _sum_cols(flat)
        else:
            owned /= owned.sum(axis=axis, keepdims=True)
        return owned

    def stable_softmax(self, data: np.ndarray, axis: int) -> np.ndarray:
        """Numerically-stable softmax into a fresh buffer."""
        shifted = data - data.max(axis=axis, keepdims=True)
        self.exp(shifted, out=shifted)
        shifted /= shifted.sum(axis=axis, keepdims=True)
        return shifted

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Called when this backend becomes the process-wide active one."""

    def deactivate(self) -> None:
        """Called when another backend replaces this one."""

    def describe(self) -> dict:
        """Diagnostics for benches and ``BENCH_*.json`` provenance."""
        return {"name": self.name, "tolerance": 0.0}


class NumpyBackend(ArrayBackend):
    """The default: PR 2's kernels verbatim, bit-identical by construction."""

    name = "numpy"


class BlasBackend(NumpyBackend):
    """Numpy numerics + explicit BLAS thread-pool sizing.

    The kernel math is inherited unchanged (still bit-identical); what
    changes is how many threads the BLAS behind numpy's GEMMs may use.
    Activation resizes the pool to ``threads`` (constructor argument, else
    ``REPRO_BLAS_THREADS``, else the core count) and deactivation restores
    the previous size.  On machines where the BLAS exposes no thread
    controls this degrades to plain ``numpy``.
    """

    name = "blas"

    def __init__(self, threads: int | None = None) -> None:
        self.threads = threads
        self._previous: int | None = None

    def _target_threads(self) -> int:
        if self.threads is not None:
            return max(1, int(self.threads))
        env = os.environ.get("REPRO_BLAS_THREADS", "")
        if env.strip():
            return max(1, int(env))
        try:
            return len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            return os.cpu_count() or 1

    def activate(self) -> None:
        from ._blas import set_blas_threads

        self._previous = set_blas_threads(self._target_threads())

    def deactivate(self) -> None:
        from ._blas import set_blas_threads

        if self._previous is not None:
            set_blas_threads(self._previous)
            self._previous = None

    def describe(self) -> dict:
        from ._blas import blas_thread_info

        info = super().describe()
        info.update(blas_thread_info())
        info["target_threads"] = self._target_threads()
        return info


class FastmathBackend(ArrayBackend):
    """Tolerance-bounded elementwise kernels (<= 1e-6 vs ``numpy``).

    Two substitutions, both validated against the ``reference.py`` oracles
    by the backend-parametrized fused-op suite:

    - ``sigmoid(x) = 0.5 * tanh(x/2) + 0.5`` — mathematically exact, and a
      single SIMD ``tanh`` pass is ~1.5-2.5x faster than the
      ``exp``-negate-add-divide chain on the LSTM gate shapes.  Differs
      from the exact chain only in rounding (~6e-8 max on float32).
    - GELU forward/backward run cache-blocked on large contiguous inputs:
      the same in-place op sequence, applied per 32k-element block so all
      eight passes hit L2 instead of streaming from DRAM eight times
      (same float ops in the same order => bit-identical values).
    """

    name = "fastmath"

    # 32k elements = 128 KiB of float32 per block buffer: small enough that
    # a block's working set (input + 3 temporaries) stays L2-resident.
    block_elems = 32768
    # Blocking has per-block call overhead; only engage well past L2 sizes.
    _min_blocked = 4 * block_elems

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        y = x * 0.5
        np.tanh(y, out=y)
        y += 1.0
        y *= 0.5
        return y

    def gelu_forward(self, data: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if data.size < self._min_blocked or not data.flags.c_contiguous:
            return super().gelu_forward(data)
        flat = data.reshape(-1)
        out = np.empty_like(flat)
        t = np.empty_like(flat)
        sq = np.empty_like(flat)
        for start in range(0, flat.size, self.block_elems):
            stop = start + self.block_elems
            d = flat[start:stop]
            sq_b, t_b, out_b = sq[start:stop], t[start:stop], out[start:stop]
            np.multiply(d, d, out=sq_b)
            np.multiply(sq_b, _GELU_COEFF * _GELU_CUBIC, out=t_b)
            t_b += _GELU_COEFF
            t_b *= d
            self.tanh(t_b, out=t_b)
            np.add(t_b, 1.0, out=out_b)
            out_b *= d
            out_b *= 0.5
        shape = data.shape
        return out.reshape(shape), t.reshape(shape), sq.reshape(shape)

    def gelu_backward(self, grad: np.ndarray, data: np.ndarray,
                      t: np.ndarray, sq: np.ndarray) -> np.ndarray:
        if grad.size < self._min_blocked \
                or not (grad.flags.c_contiguous and data.flags.c_contiguous
                        and t.flags.c_contiguous and sq.flags.c_contiguous):
            return super().gelu_backward(grad, data, t, sq)
        g_flat = grad.reshape(-1)
        d_flat = data.reshape(-1)
        t_flat = t.reshape(-1)
        sq_flat = sq.reshape(-1)
        deriv = np.empty_like(g_flat)
        dinner = np.empty_like(g_flat[:self.block_elems])
        for start in range(0, g_flat.size, self.block_elems):
            stop = start + self.block_elems
            d = d_flat[start:stop]
            t_b, sq_b = t_flat[start:stop], sq_flat[start:stop]
            out_b = deriv[start:stop]
            di = dinner[:d.size]
            np.multiply(sq_b, 3.0 * _GELU_CUBIC * _GELU_COEFF, out=di)
            di += _GELU_COEFF
            di *= d
            np.multiply(t_b, t_b, out=out_b)
            np.subtract(1.0, out_b, out=out_b)  # sech^2 = 1 - tanh^2
            out_b *= di
            out_b += t_b
            out_b += 1.0
            out_b *= 0.5
            out_b *= g_flat[start:stop]
        return deriv.reshape(grad.shape)

    def describe(self) -> dict:
        return {"name": self.name, "tolerance": 1e-6,
                "block_elems": self.block_elems}


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_lock = threading.Lock()
_registry: dict[str, ArrayBackend] = {}
_ACTIVE: ArrayBackend


def register_backend(backend: ArrayBackend, *, replace: bool = False) -> ArrayBackend:
    """Add ``backend`` to the registry under ``backend.name``."""
    name = backend.name
    if not name or name == "abstract":
        raise ValueError("backend must define a concrete .name")
    with _lock:
        if name in _registry and not replace:
            raise ValueError(f"backend {name!r} is already registered "
                             "(pass replace=True to override)")
        _registry[name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    with _lock:
        return tuple(sorted(_registry))


def _lookup(name: str) -> ArrayBackend:
    backend = _registry.get(name)
    if backend is None:
        raise ValueError(
            f"unknown array backend {name!r}; available: "
            f"{', '.join(available_backends())}")
    return backend


def active_backend() -> ArrayBackend:
    """The backend object the fused ops currently dispatch through."""
    return _ACTIVE


def get_backend() -> str:
    """The active backend's name."""
    return _ACTIVE.name


def set_backend(name: str) -> str:
    """Make ``name`` the process-wide backend; returns the previous name.

    Raises ``ValueError`` (naming the available choices) for unknown names.
    Thread-safe but process-wide: the swap affects every subsequent fused-op
    call in the process.
    """
    global _ACTIVE
    backend = _lookup(name)
    with _lock:
        previous = _ACTIVE
        if backend is previous:
            return previous.name
        previous.deactivate()
        backend.activate()
        _ACTIVE = backend
    return previous.name


@contextlib.contextmanager
def use_backend(name: str):
    """Scoped :func:`set_backend`: restores the previous backend on exit."""
    previous = set_backend(name)
    try:
        yield _ACTIVE
    finally:
        set_backend(previous)


register_backend(NumpyBackend())
register_backend(BlasBackend())
register_backend(FastmathBackend())
_ACTIVE = _registry["numpy"]


def _init_from_env() -> None:
    """Honor ``REPRO_BACKEND`` at import; unknown names fail loudly."""
    name = os.environ.get("REPRO_BACKEND", "").strip()
    if name:
        set_backend(name)


_init_from_env()
