"""Reverse-mode automatic differentiation on numpy arrays.

This module is the substrate that stands in for PyTorch in the reproduction:
a :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations applied
to it, so that :meth:`Tensor.backward` can propagate gradients through the
recorded graph.  Every differentiable operation used by the NLP models in
:mod:`repro.nn` bottoms out here.

The implementation favours clarity over raw speed; all heavy lifting is done
by vectorised numpy calls, so small-model training (the scale used by the
paper's experiments) is practical on a CPU.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones",
           "get_default_dtype", "set_default_dtype", "default_dtype"]

# Grad recording is a *per-thread* mode: the federated simulator trains on
# client threads while the server evaluates under no_grad() on the main
# thread, and the two must not interfere.
_GRAD_STATE = threading.local()

# Default floating dtype for tensors created from python scalars, lists,
# integer/boolean arrays and unadorned float64 scalars.  float32 halves the
# memory bandwidth of every constant and mask in the training loop; arrays
# that arrive with an explicit float dtype (e.g. float64 for gradient
# checking) are left untouched.
_DEFAULT_DTYPE = np.dtype(np.float32)

# Op-profiler hook installed by ``repro.obs.profiler.OpProfiler`` (never set
# directly).  Checked on every graph-node creation, so the disabled cost is
# one global load + is-None test; when set, the hook counts the node/bytes
# and returns a timing wrapper around the backward closure.
_PROFILE_HOOK = None


def get_default_dtype() -> np.dtype:
    """Return the floating dtype used for dtype-less tensor construction."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the default floating dtype (float32/float64); returns the old one."""
    global _DEFAULT_DTYPE
    new = np.dtype(dtype)
    if new.kind != "f":
        raise ValueError(f"default dtype must be floating, got {new}")
    old = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = new
    return old


@contextlib.contextmanager
def default_dtype(dtype):
    """Context manager that temporarily switches the default floating dtype."""
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


def _grad_enabled() -> bool:
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording inside its block."""
    previous = _grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _grad_enabled()


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When a forward op broadcast an operand from ``shape`` up to ``grad.shape``,
    the gradient w.r.t. that operand is the sum of ``grad`` over the broadcast
    axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Any, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got a Tensor")
    if dtype is not None:
        return np.asarray(value, dtype=dtype)
    if isinstance(value, (np.ndarray, np.generic)):
        # arrays and numpy scalars (e.g. float64 sums of float64 arrays)
        # keep their explicit float dtype; only ints/bools promote
        arr = np.asarray(value)
        if arr.dtype.kind in "iub":
            return arr.astype(_DEFAULT_DTYPE)
        return arr
    arr = np.asarray(value)
    if arr.dtype.kind in "iub" or arr.dtype == np.float64:
        # python scalars/lists land on the default dtype instead of float64
        arr = arr.astype(_DEFAULT_DTYPE)
    return arr


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload.  Integer inputs are promoted to float.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` on
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op",
                 "__weakref__")
    __array_priority__ = 100  # so ndarray + Tensor dispatches to Tensor.__radd__

    def __init__(self, data: Any, requires_grad: bool = False, *, _parents: tuple = (), _op: str = "leaf"):
        if isinstance(data, Tensor):
            data = data.data
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _grad_enabled()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = _parents if self.requires_grad or _parents else ()
        self.op = _op

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_note})"

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a 1-element tensor, got shape {self.data.shape}")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], op: str,
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = _grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=tuple(parents) if requires else (), _op=op)
        if requires:
            hook = _PROFILE_HOOK
            if hook is not None:
                backward = hook.record_node(op, out.data.nbytes, backward)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Accumulate a gradient buffer the caller exclusively owns.

        Unlike :meth:`_accumulate`, the buffer is adopted without a defensive
        copy when it can serve as the gradient directly.  Only backward
        closures may use this, and only for arrays (or non-overlapping views
        of arrays) they freshly allocated and will not touch again.
        """
        if not self.requires_grad:
            return
        if (self.grad is None and type(grad) is np.ndarray
                and grad.shape == self.data.shape and grad.dtype == self.data.dtype):
            self.grad = grad
        else:
            self._accumulate(grad)

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar tensors; required for
            non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free the graph as we go (torch's retain_graph=False):
                # interior nodes drop their gradient, closure and parent
                # links so activation memory is released immediately.
                # Leaves (parameters, inputs) have no _backward and keep
                # their accumulated .grad.
                node.grad = None
                node._backward = None
                node._parents = ()

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Any) -> "Tensor":
        """Wrap a non-Tensor operand, matching this tensor's float dtype so
        python-scalar constants do not silently promote float32 graphs (and,
        for float64 graphs, are not first rounded through the default
        dtype)."""
        if isinstance(other, Tensor):
            return other
        if self.data.dtype.kind == "f":
            wrapped = Tensor(_as_array(other, dtype=self.data.dtype))
        else:
            wrapped = Tensor(other)
        return wrapped

    def __add__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(out_data, (self, other), "add", backward)

    __radd__ = __add__

    def __mul__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), "mul", backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: Any) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Any) -> "Tensor":
        return self._coerce(other) + (-self)

    def __truediv__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(out_data, (self, other), "div", backward)

    def __rtruediv__(self, other: Any) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), "pow", backward)

    def __matmul__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # dot product
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:  # (k,) @ (..., k, n)
                ga = (grad[..., None, :] * b).sum(axis=-1)
                self._accumulate(_unbroadcast(ga, a.shape))
                other._accumulate(_unbroadcast(a[..., :, None] * grad[..., None, :], b.shape))
                return
            if b.ndim == 1:  # (..., m, k) @ (k,)
                self._accumulate(_unbroadcast(grad[..., None] * b, a.shape))
                other._accumulate(_unbroadcast((a * grad[..., None]).reshape(-1, a.shape[-1]).sum(axis=0), b.shape))
                return
            ga = grad @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(_unbroadcast(ga, a.shape))
            other._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._make(out_data, (self, other), "matmul", backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), "sum", backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            full = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                full = np.expand_dims(out_data, axis)
            mask = (self.data == full).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else max(mask.sum(), 1.0)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), "max", backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), "exp", backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), "log", backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), "tanh", backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), "sigmoid", backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0))

        return Tensor._make(out_data, (self,), "relu", backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value (grad = sign; 0 at exactly 0)."""
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), "abs", backward)

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Minimum, implemented as ``-max(-x)`` for gradient consistency."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    def var(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def std(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False, eps: float = 0.0) -> "Tensor":
        """Population standard deviation; ``eps`` guards the sqrt at 0."""
        return (self.var(axis=axis, keepdims=keepdims) + eps) ** 0.5

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            inside = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), "clip", backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(out_data, (self,), "reshape", backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), "transpose", backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index: Any) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data.astype(np.int64)
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), "getitem", backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor with positions where ``mask`` is True set to ``value``."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(np.where(mask, 0.0, grad), self.data.shape))

        return Tensor._make(out_data, (self,), "masked_fill", backward)

    # ------------------------------------------------------------------
    # joining
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor_i, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor_i._accumulate(grad[tuple(slicer)])

        return Tensor._make(out_data, tensors, "concatenate", backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            parts = np.split(grad, len(tensors), axis=axis)
            for tensor_i, part in zip(tensors, parts):
                tensor_i._accumulate(np.squeeze(part, axis=axis))

        return Tensor._make(out_data, tensors, "stack", backward)


def tensor(data: Any, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)
