"""Live terminal dashboard: ``python -m repro.obs watch <run_dir|url>``.

The operator's view of a federation in flight.  Two data paths feed one
ANSI dashboard:

- **run-dir mode** (``watch runs/my-run``) — follows the streaming
  ``trace.jsonl`` and ``health.jsonl`` with the same incremental,
  partial-line-safe follower ``repro.obs tail`` uses, so it works on any
  telemetry-armed run with no exporter at all;
- **URL mode** (``watch http://127.0.0.1:9100``) — polls a
  :class:`~repro.obs.exporter.MetricsExporter`'s ``/metrics`` and
  ``/healthz`` endpoints, which adds the
  :class:`~repro.obs.sysmon.SysMonitor` resource gauges (RSS/CPU
  sparklines per process) to the picture.

Rendered sections: round/commit progress, a per-site table (last seen,
tasks served, staleness, quarantine), the alert feed, and RSS/CPU
sparklines.  Keys: ``q`` quits (so does Ctrl-C); the dashboard exits on
its own when the followed run writes its trace footer.
"""

from __future__ import annotations

import json
import queue
import sys
import threading
import time
import urllib.request
from collections import deque
from pathlib import Path

from .exporter import parse_prometheus_text
from .session import TRACE_FILE
from .tail import iter_trace_records

__all__ = ["Dashboard", "watch", "sparkline"]

HEALTH_FILE = "health.jsonl"
BLOCKS = "▁▂▃▄▅▆▇█"
CLEAR = "\x1b[H\x1b[2J"
HISTORY = 48


def sparkline(values, width: int = 24) -> str:
    """Render the last ``width`` values as a unicode block sparkline."""
    values = [float(v) for v in list(values)[-width:]]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(BLOCKS[int((v - lo) / span * (len(BLOCKS) - 1))]
                   for v in values)


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GiB"


def _fmt_ago(seconds: float) -> str:
    if seconds < 0:
        return "-"
    if seconds < 60:
        return f"{seconds:.1f}s ago"
    return f"{seconds / 60:.1f}m ago"


class Dashboard:
    """Folds trace/health records and exporter scrapes into one screen."""

    def __init__(self, target: str = "", clock=time.monotonic) -> None:
        self.target = target
        self._clock = clock
        self.trace_id: str | None = None
        self.finished = False
        # round_number -> summary dict (mode/seconds/quorum/updates/version)
        self.rounds: dict[int, dict] = {}
        # site -> {last_seen, tasks, staleness, quarantined}
        self.sites: dict[str, dict] = {}
        self.alerts: deque[dict] = deque(maxlen=6)
        self.alert_counts: dict[str, int] = {}
        # process -> history deques for the sparklines
        self.rss: dict[str, deque] = {}
        self.cpu: dict[str, deque] = {}
        self.health_status: str | None = None

    # ------------------------------------------------------------------
    def _site(self, name: str) -> dict:
        return self.sites.setdefault(
            name, {"last_seen": None, "tasks": 0, "staleness": 0,
                   "quarantined": False})

    def feed_trace_record(self, record: dict) -> None:
        if record.get("schema"):
            self.trace_id = record.get("trace_id")
            return
        if record.get("event") == "process":
            client = record.get("client") or record.get("process")
            if client and client != "server":
                self._site(str(client))["last_seen"] = self._clock()
            return
        if record.get("event") == "end":
            self.finished = True
            return
        if "span_id" not in record:
            return
        name, attrs = record.get("name"), record.get("attrs") or {}
        if name == "client_task":
            site = self._site(str(attrs.get("client",
                                            record.get("process", "?"))))
            site["last_seen"] = self._clock()
            site["tasks"] += 1
            if "staleness" in attrs:
                site["staleness"] = attrs["staleness"]
        elif name == "round":
            number = attrs.get("round")
            if number is not None:
                self.rounds[int(number)] = {
                    "seconds": record.get("wall_s") or 0.0,
                    "quorum_met": attrs.get("quorum_met", True),
                    "updates": attrs.get("n_clients"),
                    "mode": attrs.get("mode", "sync"),
                    "version": attrs.get("version"),
                    "accepted": attrs.get("accepted"),
                    "buffer_size": attrs.get("buffer_size"),
                    "staleness_max": attrs.get("staleness_max"),
                }

    def feed_health_record(self, record: dict) -> None:
        event = record.get("event")
        if event == "alert":
            self.alerts.append(record)
            severity = record.get("severity", "info")
            self.alert_counts[severity] = self.alert_counts.get(severity, 0) + 1
            client = record.get("client")
            if client:
                self._site(str(client))
        elif event == "round":
            quarantined = set(record.get("quarantined", []))
            for client in record.get("participants", []) or []:
                self._site(str(client))["quarantined"] = client in quarantined
            for client in quarantined:
                self._site(str(client))["quarantined"] = True

    def feed_scrape(self, samples: list[tuple[str, dict, float]]) -> None:
        now = self._clock()
        for name, labels, value in samples:
            process = labels.get("process", "main")
            if name == "sys_rss_bytes":
                self.rss.setdefault(process, deque(maxlen=HISTORY)).append(value)
                if process != "server":
                    self._site(process)["last_seen"] = now
            elif name == "sys_cpu_percent":
                self.cpu.setdefault(process, deque(maxlen=HISTORY)).append(value)
            elif name == "federation_rounds":
                for number in range(int(value)):
                    self.rounds.setdefault(number, {"seconds": 0.0,
                                                    "quorum_met": True,
                                                    "updates": None,
                                                    "mode": "?"})

    def feed_healthz(self, payload: dict) -> None:
        self.health_status = payload.get("status")
        self.alert_counts = dict(payload.get("alert_counts", {}))
        quarantined = set(payload.get("quarantined", []))
        for client in quarantined:
            self._site(str(client))["quarantined"] = True
        for site, info in self.sites.items():
            info["quarantined"] = site in quarantined
        self.alerts.clear()
        self.alerts.extend(payload.get("alerts", [])[-6:])

    # ------------------------------------------------------------------
    def render(self) -> str:
        now = self._clock()
        lines = [f"== federation dashboard — {self.target} "
                 f"(q or Ctrl-C quits) =="]
        if self.trace_id:
            lines.append(f"trace {self.trace_id}")

        done = sorted(self.rounds)
        if done:
            last = self.rounds[done[-1]]
            progress = f"rounds: {len(done)} complete"
            if last.get("mode") == "async":
                progress = (f"commits: {len(done)} "
                            f"(global v{last.get('version', '?')})")
                fill = last.get("accepted")
                if fill is not None:
                    progress += (f", last window {fill}/"
                                 f"{last.get('buffer_size', '?')} update(s)")
                if last.get("staleness_max") is not None:
                    progress += f", staleness max {last['staleness_max']}"
            else:
                updates = last.get("updates")
                progress += (f", last round {done[-1]}: "
                             f"{last.get('seconds', 0.0):.2f}s")
                if updates is not None:
                    progress += f", {updates} update(s)"
            if not last.get("quorum_met", True):
                progress += "  [UNDER QUORUM]"
            lines.append(progress)
        else:
            lines.append("rounds: none finished yet")
        if self.health_status is not None:
            counts = ", ".join(f"{v} {k}" for k, v in
                               sorted(self.alert_counts.items())) or "none"
            lines.append(f"health: {self.health_status} (alerts: {counts})")

        if self.sites:
            lines.append("")
            lines.append(f"  {'site':<12} {'last seen':>10} {'tasks':>6} "
                         f"{'staleness':>9}  status")
            for name in sorted(self.sites):
                info = self.sites[name]
                seen = (_fmt_ago(now - info["last_seen"])
                        if info["last_seen"] is not None else "-")
                status = "QUARANTINED" if info["quarantined"] else "ok"
                lines.append(f"  {name:<12} {seen:>10} {info['tasks']:>6} "
                             f"{info['staleness']:>9}  {status}")

        if self.alerts:
            lines.append("")
            lines.append("alerts (most recent):")
            for alert in list(self.alerts):
                client = alert.get("client") or "-"
                lines.append(f"  r{alert.get('round_number', '?')} "
                             f"{alert.get('severity', '?'):<8} "
                             f"{alert.get('detector', '?'):<20} {client:<10} "
                             f"{alert.get('message', '')[:60]}")

        if self.rss or self.cpu:
            lines.append("")
            for process in sorted(self.rss):
                history = self.rss[process]
                lines.append(f"  rss {process:<10} {sparkline(history)} "
                             f"{_fmt_bytes(history[-1])}")
            for process in sorted(self.cpu):
                history = self.cpu[process]
                lines.append(f"  cpu {process:<10} {sparkline(history)} "
                             f"{history[-1]:.0f}%")

        if self.finished:
            lines.append("")
            lines.append("run finished (trace footer seen)")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# follow loops
# ---------------------------------------------------------------------------
def _follow_file(path: Path, sink: "queue.Queue", kind: str,
                 stop: threading.Event, poll: float) -> None:
    for record in iter_trace_records(path, poll=poll, idle_timeout=None):
        sink.put((kind, record))
        if stop.is_set():
            return


def _fetch(url: str, timeout: float = 2.0) -> bytes | None:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read()
    except Exception:
        return None


def _quit_pressed() -> bool:
    """Non-blocking check for a 'q' on a tty stdin."""
    try:
        import select

        if not sys.stdin.isatty():
            return False
        readable, _, _ = select.select([sys.stdin], [], [], 0)
        return bool(readable) and "q" in (sys.stdin.readline() or "")
    except Exception:
        return False


def watch(target: str, refresh: float = 1.0, stream=None,
          max_frames: int | None = None, idle_timeout: float | None = None,
          clear: bool | None = None) -> int:
    """Follow ``target`` (run dir or exporter URL), rendering frames.

    Returns the number of frames rendered.  Exits on the trace footer
    (run-dir mode), an unreachable endpoint after ``idle_timeout`` seconds
    (URL mode), ``max_frames``, a ``q`` keypress or Ctrl-C.
    """
    stream = stream if stream is not None else sys.stdout
    if clear is None:
        clear = hasattr(stream, "isatty") and stream.isatty()
    board = Dashboard(target=target)
    frames = 0
    is_url = target.startswith(("http://", "https://"))

    sink: queue.Queue = queue.Queue()
    stop = threading.Event()
    threads: list[threading.Thread] = []
    if not is_url:
        run_dir = Path(target)
        for kind, name in (("trace", TRACE_FILE), ("health", HEALTH_FILE)):
            thread = threading.Thread(
                target=_follow_file,
                args=(run_dir / name, sink, kind, stop, min(refresh, 0.25)),
                daemon=True)
            thread.start()
            threads.append(thread)

    last_progress = time.monotonic()
    try:
        while True:
            progressed = False
            if is_url:
                body = _fetch(target.rstrip("/") + "/metrics")
                if body is not None:
                    try:
                        board.feed_scrape(parse_prometheus_text(body.decode()))
                        progressed = True
                    except ValueError:
                        pass
                health_body = _fetch(target.rstrip("/") + "/healthz")
                if health_body is not None:
                    try:
                        board.feed_healthz(json.loads(health_body))
                        progressed = True
                    except json.JSONDecodeError:
                        pass
            else:
                try:
                    while True:
                        kind, record = sink.get_nowait()
                        progressed = True
                        if kind == "trace":
                            board.feed_trace_record(record)
                        else:
                            board.feed_health_record(record)
                except queue.Empty:
                    pass

            if progressed:
                last_progress = time.monotonic()
            frame = board.render()
            if clear:
                stream.write(CLEAR)
            stream.write(frame)
            stream.flush()
            frames += 1

            if board.finished:
                break
            if max_frames is not None and frames >= max_frames:
                break
            if idle_timeout is not None and \
                    time.monotonic() - last_progress > idle_timeout:
                break
            if _quit_pressed():
                break
            time.sleep(refresh)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
    return frames
