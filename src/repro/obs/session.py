"""TelemetrySession: one switch that arms every instrument for a run.

Entering a session installs an enabled :class:`MetricsRegistry` as the
process-wide registry, a :class:`Tracer` as the process-wide tracer and an
:class:`OpProfiler` over the autograd layer; leaving it restores whatever
was installed before and writes three artifacts under the run directory::

    <run_dir>/metrics.json   counters / gauges / histograms
    <run_dir>/trace.jsonl    one span per line (header line first)
    <run_dir>/profile.json   per-autograd-op counts, seconds, bytes

Render them with ``python -m repro.obs report <run_dir>``.
"""

from __future__ import annotations

from pathlib import Path

from . import metrics as _metrics
from . import trace as _trace
from .health import HealthMonitor
from .metrics import MetricsRegistry
from .profiler import OpProfiler
from .trace import Tracer

__all__ = ["TelemetrySession"]

METRICS_FILE = "metrics.json"
TRACE_FILE = "trace.jsonl"
PROFILE_FILE = "profile.json"


class TelemetrySession:
    """Scoped enable-everything telemetry for one run directory.

    Parameters
    ----------
    run_dir:
        Where the artifacts land on exit.
    metrics, trace, profile:
        Individually disable a subsystem (all on by default).  A disabled
        subsystem writes no artifact and its pointer is absent from
        :meth:`artifact_paths`.
    health:
        Off by default.  ``True`` arms a :class:`HealthMonitor` writing
        ``health.jsonl`` under the run dir; pass a pre-configured monitor
        to control detectors/quarantine.  The session only owns the
        artifact pointer — whoever runs the federation (the controller via
        ``SimulatorRunner``) drives the monitor round by round.
    """

    def __init__(self, run_dir: str | Path, metrics: bool = True,
                 trace: bool = True, profile: bool = True,
                 health: bool | HealthMonitor = False) -> None:
        self.run_dir = Path(run_dir)
        self.registry: MetricsRegistry | None = MetricsRegistry() if metrics else None
        self.tracer: Tracer | None = Tracer() if trace else None
        self.profiler: OpProfiler | None = OpProfiler() if profile else None
        if health is True:
            health = HealthMonitor(run_dir=self.run_dir)
        self.health: HealthMonitor | None = health or None
        self._previous_registry: MetricsRegistry | None = None
        self._previous_tracer: Tracer | None = None
        self._active = False

    # ------------------------------------------------------------------
    def artifact_paths(self) -> dict[str, str]:
        """Run-dir artifact pointers (deterministic, also valid pre-write)."""
        paths: dict[str, str] = {}
        if self.registry is not None:
            paths["metrics"] = str(self.run_dir / METRICS_FILE)
        if self.tracer is not None:
            paths["trace"] = str(self.run_dir / TRACE_FILE)
        if self.profiler is not None:
            paths["profile"] = str(self.run_dir / PROFILE_FILE)
        if self.health is not None and self.health.health_path is not None:
            paths["health"] = str(self.health.health_path)
        return paths

    # ------------------------------------------------------------------
    def start(self) -> "TelemetrySession":
        if self._active:
            return self
        if self.registry is not None:
            self._previous_registry = _metrics.set_registry(self.registry)
        if self.tracer is not None:
            self._previous_tracer = _trace.set_tracer(self.tracer)
        if self.profiler is not None:
            self.profiler.install()
        self._active = True
        return self

    def stop(self) -> dict[str, str]:
        """Restore previous instruments and write the artifacts."""
        if not self._active:
            return {}
        if self.profiler is not None:
            self.profiler.uninstall()
        if self.tracer is not None:
            _trace.set_tracer(self._previous_tracer)
        if self.registry is not None and self._previous_registry is not None:
            _metrics.set_registry(self._previous_registry)
        self._active = False

        self.run_dir.mkdir(parents=True, exist_ok=True)
        if self.registry is not None:
            self.registry.save_json(self.run_dir / METRICS_FILE)
        if self.tracer is not None:
            self.tracer.export_jsonl(self.run_dir / TRACE_FILE)
        if self.profiler is not None:
            self.profiler.save_json(self.run_dir / PROFILE_FILE)
        if self.health is not None:
            self.health.finalize()
        return self.artifact_paths()

    def __enter__(self) -> "TelemetrySession":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
