"""TelemetrySession: one switch that arms every instrument for a run.

Entering a session installs an enabled :class:`MetricsRegistry` as the
process-wide registry, a :class:`Tracer` as the process-wide tracer and an
:class:`OpProfiler` over the autograd layer; leaving it restores whatever
was installed before and writes three artifacts under the run directory::

    <run_dir>/metrics.json   counters / gauges / histograms
    <run_dir>/trace.jsonl    one span per line (header line first)
    <run_dir>/profile.json   per-autograd-op counts, seconds, bytes

``trace.jsonl`` is written **live**: a background flusher appends finished
spans every ``flush_interval`` seconds (and promptly after any span wider
than ``flush_threshold`` closes), so ``python -m repro.obs tail <run_dir>``
can follow a run while it executes and a crash loses at most one interval
of spans.  Spans harvested from worker processes enter the same file via
:meth:`append_spans` / :meth:`append_process` (see
:class:`~repro.flare.runner.TelemetryCollector`); the stream ends with one
``{"event": "end", ...}`` footer so readers can tell a finished trace from
an aborted one.

Render the artifacts with ``python -m repro.obs report <run_dir>``.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from . import metrics as _metrics
from . import trace as _trace
from .health import HealthMonitor
from .metrics import MetricsRegistry
from .profiler import OpProfiler
from .trace import Tracer

__all__ = ["TelemetrySession", "TraceStreamWriter"]

METRICS_FILE = "metrics.json"
TRACE_FILE = "trace.jsonl"
PROFILE_FILE = "profile.json"


def _sysmon_interval(value: bool | float) -> float | None:
    """A bool/float sysmon knob to a sampling interval (None = off)."""
    if value is True:
        from .sysmon import DEFAULT_INTERVAL

        return DEFAULT_INTERVAL
    if not value:
        return None
    return float(value)


class TraceStreamWriter:
    """Append-only ``trace.jsonl`` writer shared by every producer.

    The header line is written lazily on first use; every append is
    serialized under one lock and flushed to disk immediately, so a
    concurrent ``tail`` (or a post-crash read) always sees whole lines.
    """

    def __init__(self, path: str | Path, header: dict) -> None:
        self.path = Path(path)
        self._header = dict(header)
        self._lock = threading.Lock()
        self._fh = None
        self._n_records = 0
        self._closed = False

    def _ensure_open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w")
            self._fh.write(json.dumps(self._header) + "\n")
            self._fh.flush()
        return self._fh

    def append(self, records: list[dict]) -> None:
        """Append record dicts (spans, process markers) as JSONL lines."""
        if not records:
            return
        with self._lock:
            if self._closed:
                return
            fh = self._ensure_open()
            for record in records:
                fh.write(json.dumps(record, default=str) + "\n")
                self._n_records += 1
            fh.flush()

    def close(self, footer: dict | None = None) -> None:
        with self._lock:
            if self._closed:
                return
            fh = self._ensure_open()
            if footer is not None:
                fh.write(json.dumps(dict(footer, n_records=self._n_records),
                                    default=str) + "\n")
            fh.flush()
            fh.close()
            self._fh = None
            self._closed = True


class TelemetrySession:
    """Scoped enable-everything telemetry for one run directory.

    Parameters
    ----------
    run_dir:
        Where the artifacts land on exit.
    metrics, trace, profile:
        Individually disable a subsystem (all on by default).  A disabled
        subsystem writes no artifact and its pointer is absent from
        :meth:`artifact_paths`.
    health:
        Off by default.  ``True`` arms a :class:`HealthMonitor` writing
        ``health.jsonl`` under the run dir; pass a pre-configured monitor
        to control detectors/quarantine.  The session only owns the
        artifact pointer — whoever runs the federation (the controller via
        ``SimulatorRunner``) drives the monitor round by round.
    trace_id, process:
        Forwarded to the :class:`Tracer` — the federation runner labels
        the parent tracer ``server`` and hands the minted ``trace_id`` to
        every worker process.
    flush_interval:
        Cadence of the live ``trace.jsonl`` flusher (seconds).  ``None``
        disables streaming: the trace is then written once at
        :meth:`stop`, exactly like the metrics/profile artifacts.
    flush_threshold:
        Spans at least this wide kick an immediate flush when they close
        (a finished round shows up in ``tail`` without waiting out the
        interval).
    sysmon:
        Off by default.  ``True`` arms a
        :class:`~repro.obs.sysmon.SysMonitor` sampling this process's
        RSS/CPU/fd/shm usage into the session registry (tagged with
        ``process=``); a float sets the sampling interval in seconds.
    exporter:
        Off by default.  An int arms a
        :class:`~repro.obs.exporter.MetricsExporter` on that loopback
        port (0 = ephemeral) serving ``/metrics`` from the live session
        registry and ``/healthz`` from the health monitor; pass a
        pre-built exporter to add extra snapshot sources first.
    """

    def __init__(self, run_dir: str | Path, metrics: bool = True,
                 trace: bool = True, profile: bool = True,
                 health: bool | HealthMonitor = False,
                 trace_id: str | None = None, process: str | None = None,
                 flush_interval: float | None = 0.5,
                 flush_threshold: float = 0.2,
                 sysmon: bool | float = False,
                 exporter: "int | object | None" = None) -> None:
        self.run_dir = Path(run_dir)
        self.process = process
        self.registry: MetricsRegistry | None = MetricsRegistry() if metrics else None
        self.tracer: Tracer | None = (
            Tracer(trace_id=trace_id, process=process) if trace else None)
        self.profiler: OpProfiler | None = OpProfiler() if profile else None
        if health is True:
            health = HealthMonitor(run_dir=self.run_dir)
        self.health: HealthMonitor | None = health or None
        self.sysmon = None
        sysmon_interval = _sysmon_interval(sysmon)
        if sysmon_interval is not None and self.registry is not None:
            from .sysmon import SysMonitor

            self.sysmon = SysMonitor(registry=self.registry,
                                     interval=sysmon_interval,
                                     process=process or "main")
        self.exporter = None
        if exporter is not None:
            if isinstance(exporter, (int, bool)):
                from .exporter import MetricsExporter

                exporter = MetricsExporter(port=int(exporter))
            self.exporter = exporter
            if self.registry is not None:
                self.exporter.add_source(self.registry.to_dict)
            if self.exporter.health is None:
                self.exporter.health = self.health
        self.flush_interval = flush_interval
        self.flush_threshold = flush_threshold
        self._writer: TraceStreamWriter | None = None
        self._flusher: threading.Thread | None = None
        self._flush_kick = threading.Event()
        self._flusher_stop = threading.Event()
        self._previous_registry: MetricsRegistry | None = None
        self._previous_tracer: Tracer | None = None
        self._active = False

    # ------------------------------------------------------------------
    def artifact_paths(self) -> dict[str, str]:
        """Run-dir artifact pointers (deterministic, also valid pre-write)."""
        paths: dict[str, str] = {}
        if self.registry is not None:
            paths["metrics"] = str(self.run_dir / METRICS_FILE)
        if self.tracer is not None:
            paths["trace"] = str(self.run_dir / TRACE_FILE)
        if self.profiler is not None:
            paths["profile"] = str(self.run_dir / PROFILE_FILE)
        if self.health is not None and self.health.health_path is not None:
            paths["health"] = str(self.health.health_path)
        return paths

    # ------------------------------------------------------------------
    # live streaming
    # ------------------------------------------------------------------
    def _ensure_writer(self) -> TraceStreamWriter | None:
        if self.tracer is None:
            return None
        if self._writer is None:
            self._writer = TraceStreamWriter(self.run_dir / TRACE_FILE,
                                             self.tracer.header())
        return self._writer

    def flush(self) -> None:
        """Drain the session tracer's finished spans into ``trace.jsonl``."""
        writer = self._ensure_writer()
        if writer is not None and self.tracer is not None:
            writer.append(self.tracer.drain())

    def append_spans(self, spans: list[dict]) -> None:
        """Append externally-harvested spans (worker deltas) to the stream."""
        writer = self._ensure_writer()
        if writer is not None:
            writer.append(list(spans))

    def append_process(self, record: dict) -> None:
        """Append one ``{"event": "process", ...}`` marker to the stream."""
        writer = self._ensure_writer()
        if writer is not None:
            writer.append([dict(record, event=record.get("event", "process"))])

    def _kick(self) -> None:
        self._flush_kick.set()

    def _flush_loop(self) -> None:
        while not self._flusher_stop.is_set():
            self._flush_kick.wait(self.flush_interval)
            self._flush_kick.clear()
            if self._flusher_stop.is_set():
                break
            self.flush()

    # ------------------------------------------------------------------
    def start(self) -> "TelemetrySession":
        if self._active:
            return self
        if self.registry is not None:
            self._previous_registry = _metrics.set_registry(self.registry)
        if self.tracer is not None:
            self._previous_tracer = _trace.set_tracer(self.tracer)
            if self.flush_interval is not None:
                self._ensure_writer()
                self.tracer.set_flush_hook(self._kick, self.flush_threshold)
                self._flusher_stop.clear()
                self._flusher = threading.Thread(
                    target=self._flush_loop, name="telemetry-flusher", daemon=True)
                self._flusher.start()
        if self.profiler is not None:
            self.profiler.install()
        if self.sysmon is not None:
            self.sysmon.start()
        if self.exporter is not None:
            self.exporter.start()
        self._active = True
        return self

    def stop(self) -> dict[str, str]:
        """Restore previous instruments and write the artifacts."""
        if not self._active:
            return {}
        if self.sysmon is not None:
            # final sample lands in the session registry before it is saved
            self.sysmon.stop()
        if self._flusher is not None:
            self._flusher_stop.set()
            self._flush_kick.set()
            self._flusher.join(timeout=10.0)
            self._flusher = None
        if self.profiler is not None:
            self.profiler.uninstall()
        if self.tracer is not None:
            self.tracer.set_flush_hook(None)
            _trace.set_tracer(self._previous_tracer)
        if self.registry is not None and self._previous_registry is not None:
            _metrics.set_registry(self._previous_registry)
        self._active = False

        self.run_dir.mkdir(parents=True, exist_ok=True)
        if self.registry is not None:
            self.registry.save_json(self.run_dir / METRICS_FILE)
        if self.tracer is not None:
            self.flush()
            if self._writer is not None:
                self._writer.close({"event": "end",
                                    "trace_id": self.tracer.trace_id})
        if self.profiler is not None:
            self.profiler.save_json(self.run_dir / PROFILE_FILE)
        if self.health is not None:
            self.health.finalize()
        if self.exporter is not None:
            # last so a dashboard can scrape right through the run's tail
            self.exporter.stop()
        return self.artifact_paths()

    def __enter__(self) -> "TelemetrySession":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
