"""Run registry and run-over-run comparison.

A *run* is a directory (or a ``BENCH_*.json`` file) full of the artifacts
the rest of ``repro.obs`` writes — ``stats.json``, ``metrics.json``,
``health.jsonl``, bench reports embedding the metrics schema.  The registry
gives those runs names and one index file, and ``diff`` turns two of them
into threshold-based regression verdicts suitable for CI gating::

    python -m repro.obs runs register runs/pr5-smoke --name pr5-smoke
    python -m repro.obs runs list
    python -m repro.obs runs show pr5-smoke
    python -m repro.obs runs diff baseline pr5-smoke   # exit 2 on regression

Comparison dimensions are extracted into one flat ``dims`` mapping
(``step_time_p50{objective=classifier}``, ``round_bytes_p50``,
``final_metric{valid_acc}``, ``alerts_critical`` ...), each with a known
"which direction is worse" so the diff can rank every shared dimension.

Exit-code contract of ``runs diff`` (CI relies on it):

- ``0`` — no regression verdicts,
- ``1`` — usage or I/O error (unknown run, unreadable artifacts),
- ``2`` — at least one regression verdict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["RunRegistry", "DiffThresholds", "DiffLine", "DiffReport",
           "summarize_run", "diff_runs", "render_list", "render_show",
           "render_diff", "REGISTRY_FILE"]

REGISTRY_FILE = "registry.json"
REGISTRY_SCHEMA = "repro.obs.registry/v1"

STATS_FILE = "stats.json"
# Artifact names that make a directory a run (any one of them).
RUN_ARTIFACTS = ("stats.json", "metrics.json", "health.jsonl", "trace.jsonl",
                 "profile.json")


# ---------------------------------------------------------------------------
# summarization
# ---------------------------------------------------------------------------
def _load_json(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _load_health(path: Path) -> dict:
    """Tolerant health.jsonl summary: alert counts, rounds, quarantines."""
    counts = {"info": 0, "warning": 0, "critical": 0}
    rounds = 0
    quarantined: set[str] = set()
    detectors: dict[str, int] = {}
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # aborted run, truncated tail
        event = record.get("event")
        if event == "round":
            rounds += 1
            quarantined.update(record.get("quarantined", []))
        elif event == "alert":
            severity = record.get("severity", "info")
            counts[severity] = counts.get(severity, 0) + 1
            name = record.get("detector", "?")
            detectors[name] = detectors.get(name, 0) + 1
    return {"rounds": rounds, "alerts": counts,
            "alerts_by_detector": detectors,
            "quarantined": sorted(quarantined)}


def _metric_dims(metrics_payload: dict) -> dict[str, float]:
    """Pull comparison dimensions out of a ``repro.obs.metrics/v1`` dump."""
    dims: dict[str, float] = {}
    for hist in metrics_payload.get("histograms", []):
        name = hist.get("name", "")
        tags = dict(hist.get("tags", {}))
        if not hist.get("count"):
            continue
        if name == "train.step_seconds":
            suffix = "{%s}" % ",".join(f"{k}={v}" for k, v in sorted(tags.items())) \
                if tags else ""
            dims[f"step_time_p50{suffix}"] = float(hist.get("p50", 0.0))
        elif name == "bench.step_seconds" and tags.get("side") == "candidate":
            model = tags.get("model", "?")
            dims[f"step_time_p50{{model={model}}}"] = float(hist.get("p50", 0.0))
        elif name == "federation.round_seconds":
            dims["round_seconds_p50"] = float(hist.get("p50", 0.0))
        elif name == "federation.round_bytes":
            dims["round_bytes_p50"] = float(hist.get("p50", 0.0))
    for gauge in metrics_payload.get("gauges", []):
        name = gauge.get("name", "")
        tags = dict(gauge.get("tags", {}))
        if name == "bench.wire_bytes_per_round":
            key = "round_bytes_p50{%s}" % ",".join(
                f"{k}={v}" for k, v in sorted(tags.items()))
            dims[key] = float(gauge.get("value", 0.0))
        elif name in ("sys.peak_rss_bytes", "sys.open_fds"):
            # sysmon resource gauges, one per process: memory/fd footprint
            # regressions show up in ``runs diff`` like timing ones do
            stem = "peak_rss" if name == "sys.peak_rss_bytes" else "open_fds"
            process = tags.get("process", "?")
            dims[f"{stem}{{process={process}}}"] = float(
                gauge.get("value", 0.0))
    return dims


def summarize_run(path: str | Path) -> dict:
    """One JSON-safe summary of a run directory or BENCH-style report file.

    Never raises on partial artifacts: whatever is missing is listed under
    ``"absent"`` and the rest of the summary is still produced.  Raises
    :class:`FileNotFoundError` only when ``path`` itself does not exist.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"run {path} does not exist")
    summary: dict = {"path": str(path), "dims": {}, "absent": [],
                     "artifacts": []}

    if path.is_file():
        # BENCH_*.json style report embedding the metrics schema.
        summary["kind"] = "bench"
        payload = _load_json(path)
        if payload is None:
            summary["absent"].append(path.name)
            return summary
        summary["artifacts"].append(path.name)
        protocol = payload.get("protocol", {})
        if protocol:
            summary["protocol"] = {k: protocol[k] for k in
                                   ("pr", "baseline_ref", "candidate_ref")
                                   if k in protocol}
        metrics_payload = payload.get("metrics")
        if isinstance(metrics_payload, dict):
            summary["dims"].update(_metric_dims(metrics_payload))
        return summary

    summary["kind"] = "run"
    dims = summary["dims"]

    stats_payload = _load_json(path / STATS_FILE)
    if stats_payload is not None:
        summary["artifacts"].append(STATS_FILE)
        rounds = stats_payload.get("rounds", [])
        summary["rounds"] = len(rounds)
        summary["failed_rounds"] = stats_payload.get("failed_rounds", 0)
        summary["dropped_clients"] = stats_payload.get("dropped_clients", [])
        if rounds:
            final_metrics = rounds[-1].get("global_metrics", {}) or {}
            summary["final_metrics"] = final_metrics
            for key, value in final_metrics.items():
                dims[f"final_metric{{{key}}}"] = float(value)
            bytes_series = [r.get("bytes_on_wire", 0) for r in rounds]
            if any(bytes_series) and "round_bytes_p50" not in dims:
                ordered = sorted(bytes_series)
                dims["round_bytes_p50"] = float(ordered[len(ordered) // 2])
        for key in ("wire_bytes_raw", "wire_bytes_encoded"):
            if stats_payload.get(key):
                summary[key] = stats_payload[key]
        if stats_payload.get("peak_rss_bytes"):
            summary["peak_rss_bytes"] = stats_payload["peak_rss_bytes"]
            dims["peak_rss"] = float(stats_payload["peak_rss_bytes"])
        alerts = stats_payload.get("alerts", [])
        if alerts:
            summary.setdefault("alerts_sample", alerts[:5])
    else:
        summary["absent"].append(STATS_FILE)

    metrics_payload = _load_json(path / "metrics.json")
    if metrics_payload is not None:
        summary["artifacts"].append("metrics.json")
        dims.update(_metric_dims(metrics_payload))
    else:
        summary["absent"].append("metrics.json")

    health_path = path / "health.jsonl"
    if health_path.exists():
        health = _load_health(health_path)
        if health:
            summary["artifacts"].append("health.jsonl")
            summary["health"] = health
            counts = health.get("alerts", {})
            dims["alerts_critical"] = float(counts.get("critical", 0))
            dims["alerts_warning"] = float(counts.get("warning", 0))
    else:
        summary["absent"].append("health.jsonl")
    return summary


# ---------------------------------------------------------------------------
# the registry index
# ---------------------------------------------------------------------------
class RunRegistry:
    """Named index of runs under one root directory.

    The index itself (``<root>/registry.json``) only stores names and
    pointers; summaries are recomputed from the artifacts on demand so the
    registry never goes stale when a run dir is re-written.
    """

    def __init__(self, root: str | Path = "runs") -> None:
        self.root = Path(root)

    @property
    def index_path(self) -> Path:
        return self.root / REGISTRY_FILE

    # ------------------------------------------------------------------
    def entries(self) -> list[dict]:
        payload = _load_json(self.index_path) or {}
        return list(payload.get("runs", []))

    def _write(self, entries: list[dict]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self.index_path.write_text(json.dumps(
            {"schema": REGISTRY_SCHEMA, "runs": entries}, indent=2))

    def register(self, path: str | Path, name: str | None = None,
                 kind: str | None = None, note: str | None = None) -> dict:
        """Add (or update) one run; the name defaults to the basename."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"cannot register {path}: does not exist")
        name = name or path.stem
        entry = {"name": name, "path": str(path),
                 "kind": kind or ("bench" if path.is_file() else "run")}
        if note:
            entry["note"] = note
        entries = [e for e in self.entries() if e.get("name") != name]
        entries.append(entry)
        self._write(entries)
        return entry

    def resolve(self, ref: str) -> Path:
        """A registered name, or a filesystem path, to a concrete path."""
        for entry in self.entries():
            if entry.get("name") == ref:
                return Path(entry["path"])
        path = Path(ref)
        if path.exists():
            return path
        known = ", ".join(sorted(e.get("name", "?") for e in self.entries())) \
            or "none registered"
        raise FileNotFoundError(
            f"unknown run {ref!r}: not a registered name ({known}) "
            f"and not an existing path")

    def discover(self) -> list[dict]:
        """Unregistered run dirs directly under the root."""
        registered = {str(Path(e["path"])) for e in self.entries()}
        found: list[dict] = []
        if not self.root.is_dir():
            return found
        for child in sorted(self.root.iterdir()):
            if not child.is_dir() or str(child) in registered:
                continue
            if any((child / artifact).exists() for artifact in RUN_ARTIFACTS):
                found.append({"name": child.name, "path": str(child),
                              "kind": "run", "registered": False})
        return found

    def list_runs(self) -> list[dict]:
        """Registered entries plus discovered unregistered run dirs."""
        entries = [dict(e, registered=True) for e in self.entries()]
        return entries + self.discover()


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------
@dataclass
class DiffThresholds:
    """Relative/absolute tolerances before a difference is a regression."""

    step_time: float = 0.10       # +10% p50 step time
    round_seconds: float = 0.25   # +25% p50 round wall clock (noisier)
    bytes: float = 0.10           # +10% p50 bytes per round
    metric_drop: float = 0.01     # absolute drop of a final metric
    rss: float = 0.25             # +25% peak resident set (allocator noise)
    open_fds: float = 0.50        # +50% open fds (small denominators)
    # metric keys matching these substrings are better when *lower*
    lower_better_metrics: tuple[str, ...] = ("loss", "perplexity", "error")


@dataclass
class DiffLine:
    dimension: str
    a: float | None
    b: float | None
    verdict: str  # "ok" | "improved" | "regression" | "missing"
    detail: str = ""

    def to_dict(self) -> dict:
        return {"dimension": self.dimension, "a": self.a, "b": self.b,
                "verdict": self.verdict, "detail": self.detail}


@dataclass
class DiffReport:
    a: str
    b: str
    lines: list[DiffLine] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffLine]:
        return [line for line in self.lines if line.verdict == "regression"]

    @property
    def exit_code(self) -> int:
        return 2 if self.regressions else 0

    def to_dict(self) -> dict:
        return {"a": self.a, "b": self.b,
                "lines": [line.to_dict() for line in self.lines],
                "regressions": len(self.regressions)}


_VERDICT_ORDER = {"regression": 0, "missing": 1, "improved": 2, "ok": 3}


def _dimension_rule(dimension: str,
                    thresholds: DiffThresholds) -> tuple[str, float, str]:
    """``(direction, tolerance, kind)`` for one dimension name.

    ``direction`` is "lower" (lower is better) or "higher"; ``kind`` is
    "relative" (tolerance is a ratio) or "absolute".
    """
    if dimension.startswith("step_time"):
        return "lower", thresholds.step_time, "relative"
    if dimension.startswith("round_seconds"):
        return "lower", thresholds.round_seconds, "relative"
    if dimension.startswith("round_bytes"):
        return "lower", thresholds.bytes, "relative"
    if dimension.startswith("peak_rss"):
        return "lower", thresholds.rss, "relative"
    if dimension.startswith("open_fds"):
        return "lower", thresholds.open_fds, "relative"
    if dimension.startswith("alerts_critical"):
        return "lower", 0.0, "absolute"
    if dimension.startswith("alerts_warning"):
        return "lower", 0.0, "absolute"
    if dimension.startswith("final_metric"):
        key = dimension[len("final_metric{"):-1].lower()
        if any(tag in key for tag in thresholds.lower_better_metrics):
            return "lower", thresholds.metric_drop, "absolute"
        return "higher", thresholds.metric_drop, "absolute"
    return "lower", 0.10, "relative"


def diff_runs(a: str | Path, b: str | Path,
              thresholds: DiffThresholds | None = None,
              dimensions: list[str] | None = None) -> DiffReport:
    """Compare run ``b`` (candidate) against run ``a`` (baseline).

    ``dimensions`` filters by prefix (e.g. ``["round_bytes", "alerts"]``);
    default is every dimension present in either run.  A dimension present
    on one side only yields a non-fatal ``missing`` line.
    """
    thresholds = thresholds or DiffThresholds()
    summary_a = summarize_run(a)
    summary_b = summarize_run(b)
    dims_a: dict[str, float] = summary_a["dims"]
    dims_b: dict[str, float] = summary_b["dims"]
    names = sorted(set(dims_a) | set(dims_b))
    if dimensions:
        names = [n for n in names
                 if any(n.startswith(prefix) for prefix in dimensions)]
    report = DiffReport(a=str(a), b=str(b))
    for name in names:
        va, vb = dims_a.get(name), dims_b.get(name)
        if va is None or vb is None:
            side = "baseline" if va is None else "candidate"
            report.lines.append(DiffLine(
                dimension=name, a=va, b=vb, verdict="missing",
                detail=f"absent from the {side} run"))
            continue
        direction, tolerance, kind = _dimension_rule(name, thresholds)
        worse = vb - va if direction == "lower" else va - vb
        if kind == "relative":
            scale = abs(va) if va else 1.0
            over = worse > tolerance * scale
            under = -worse > tolerance * scale
            detail = (f"{(vb / va - 1) * 100:+.1f}%" if va else f"{vb:+.4g}")
        else:
            over = worse > tolerance
            under = -worse > tolerance
            detail = f"{vb - va:+.4g}"
        verdict = "regression" if over else ("improved" if under else "ok")
        report.lines.append(DiffLine(dimension=name, a=va, b=vb,
                                     verdict=verdict, detail=detail))
    report.lines.sort(key=lambda line: (_VERDICT_ORDER.get(line.verdict, 9),
                                        line.dimension))
    return report


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_list(registry: RunRegistry) -> str:
    rows = registry.list_runs()
    if not rows:
        return (f"no runs under {registry.root} "
                f"(and no {registry.index_path.name})")
    lines = [f"runs under {registry.root}:"]
    for entry in rows:
        marker = "*" if entry.get("registered") else " "
        note = f"  ({entry['note']})" if entry.get("note") else ""
        lines.append(f" {marker} {entry['name']:24s} {entry['kind']:5s} "
                     f"{entry['path']}{note}")
    lines.append(" (* = registered in registry.json)")
    return "\n".join(lines)


def render_show(summary: dict) -> str:
    lines = [f"run: {summary['path']}  [{summary.get('kind', 'run')}]"]
    if summary.get("absent"):
        lines.append("absent artifacts: " + ", ".join(summary["absent"]))
    if "rounds" in summary:
        lines.append(f"rounds: {summary['rounds']} "
                     f"(failed: {summary.get('failed_rounds', 0)})")
    if summary.get("dropped_clients"):
        lines.append("dropped clients: " + ", ".join(summary["dropped_clients"]))
    health = summary.get("health")
    if health:
        counts = health.get("alerts", {})
        lines.append("alerts: " + ", ".join(
            f"{counts.get(s, 0)} {s}" for s in ("critical", "warning", "info")))
        by_det = health.get("alerts_by_detector", {})
        if by_det:
            lines.append("  by detector: " + ", ".join(
                f"{k}={v}" for k, v in sorted(by_det.items())))
        if health.get("quarantined"):
            lines.append("quarantined: " + ", ".join(health["quarantined"]))
    dims = summary.get("dims", {})
    if dims:
        lines.append("dimensions:")
        for name in sorted(dims):
            lines.append(f"  {name:44s} {_fmt(dims[name])}")
    return "\n".join(lines)


def render_diff(report: DiffReport) -> str:
    lines = [f"diff: {report.a} (baseline) vs {report.b} (candidate)"]
    if not report.lines:
        return "\n".join(lines + ["(no shared dimensions to compare)"])
    width = max(len(line.dimension) for line in report.lines)
    for line in report.lines:
        lines.append(f"  {line.verdict.upper():10s} {line.dimension.ljust(width)}"
                     f"  {_fmt(line.a):>12s} -> {_fmt(line.b):>12s}"
                     f"  {line.detail}")
    n = len(report.regressions)
    lines.append(f"{n} regression(s)" if n else "no regressions")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI (dispatched from ``python -m repro.obs runs ...``)
# ---------------------------------------------------------------------------
def add_runs_parser(subparsers) -> None:
    runs = subparsers.add_parser(
        "runs", help="run registry: list, show, diff, register")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    list_p = runs_sub.add_parser("list", help="list registered + discovered runs")
    list_p.add_argument("--root", default="runs")

    show_p = runs_sub.add_parser("show", help="summarize one run")
    show_p.add_argument("run", help="registered name or run dir / BENCH file")
    show_p.add_argument("--root", default="runs")

    reg_p = runs_sub.add_parser("register", help="add a run to the registry")
    reg_p.add_argument("path")
    reg_p.add_argument("--name", default=None)
    reg_p.add_argument("--kind", default=None, choices=(None, "run", "bench"))
    reg_p.add_argument("--note", default=None)
    reg_p.add_argument("--root", default="runs")

    diff_p = runs_sub.add_parser(
        "diff", help="regression verdicts for run B against baseline run A "
                     "(exit 0 ok / 2 regression)")
    diff_p.add_argument("a", help="baseline: registered name or path")
    diff_p.add_argument("b", help="candidate: registered name or path")
    diff_p.add_argument("--root", default="runs")
    diff_p.add_argument("--dimensions", default=None,
                        help="comma-separated dimension prefixes to compare "
                             "(e.g. round_bytes,final_metric,alerts)")
    diff_p.add_argument("--step-time-threshold", type=float, default=0.10)
    diff_p.add_argument("--round-seconds-threshold", type=float, default=0.25)
    diff_p.add_argument("--bytes-threshold", type=float, default=0.10)
    diff_p.add_argument("--metric-drop", type=float, default=0.01)
    diff_p.add_argument("--rss-threshold", type=float, default=0.25)
    diff_p.add_argument("--fds-threshold", type=float, default=0.50)
    diff_p.add_argument("--json", action="store_true",
                        help="emit the diff as JSON instead of text")


def run_runs_command(args) -> int:
    registry = RunRegistry(args.root)
    try:
        if args.runs_command == "list":
            print(render_list(registry))
        elif args.runs_command == "show":
            print(render_show(summarize_run(registry.resolve(args.run))))
        elif args.runs_command == "register":
            entry = registry.register(args.path, name=args.name,
                                      kind=args.kind, note=args.note)
            print(f"registered {entry['name']} -> {entry['path']} "
                  f"({registry.index_path})")
        elif args.runs_command == "diff":
            thresholds = DiffThresholds(
                step_time=args.step_time_threshold,
                round_seconds=args.round_seconds_threshold,
                bytes=args.bytes_threshold,
                metric_drop=args.metric_drop,
                rss=args.rss_threshold,
                open_fds=args.fds_threshold)
            dimensions = ([d.strip() for d in args.dimensions.split(",") if d.strip()]
                          if args.dimensions else None)
            report = diff_runs(registry.resolve(args.a),
                               registry.resolve(args.b),
                               thresholds=thresholds, dimensions=dimensions)
            print(json.dumps(report.to_dict(), indent=2) if args.json
                  else render_diff(report))
            return report.exit_code
    except FileNotFoundError as error:
        print(f"error: {error}")
        return 1
    return 0
