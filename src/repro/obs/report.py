"""Run-report renderer: ``python -m repro.obs report <run_dir>``.

Reads the artifacts a :class:`~repro.obs.session.TelemetrySession` writes
(``metrics.json``, ``trace.jsonl``, ``profile.json``, ``health.jsonl``) and
renders a plain-text report: counters/gauges, latency histograms with
percentiles, a span tree aggregated by call path (flamegraph-style, widest
first), the per-autograd-op profile table and the health-alert digest.

The report never crashes on a partial run: artifacts that are missing,
truncated mid-line (aborted run) or malformed are skipped with a note, and
the footer lists exactly which artifacts were absent or unreadable.
"""

from __future__ import annotations

import json
from pathlib import Path

from .session import METRICS_FILE, PROFILE_FILE, TRACE_FILE

__all__ = ["render_report", "render_metrics", "render_trace",
           "render_profile", "render_health", "load_trace",
           "load_trace_events", "load_health", "main"]

HEALTH_FILE = "health.jsonl"


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GiB"


def _fmt_value(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.4g}"


def _tag_suffix(tags: dict) -> str:
    if not tags:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
    return "{" + inner + "}"


def _table(rows: list[list[str]], header: list[str]) -> list[str]:
    """Left-align the first column, right-align the rest."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render(row: list[str]) -> str:
        cells = [row[0].ljust(widths[0])]
        cells += [cell.rjust(widths[i]) for i, cell in enumerate(row) if i > 0]
        return "  " + "  ".join(cells).rstrip()

    lines = [render(header), "  " + "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines += [render(row) for row in rows]
    return lines


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
def render_metrics(payload: dict) -> str:
    """Render a ``repro.obs.metrics/v1`` payload as text."""
    lines: list[str] = ["== metrics =="]
    counters = payload.get("counters", [])
    gauges = payload.get("gauges", [])
    histograms = payload.get("histograms", [])
    if counters:
        rows = [[c["name"] + _tag_suffix(c.get("tags", {})), _fmt_value(c["value"])]
                for c in counters]
        lines += ["", "counters:"] + _table(rows, ["name", "value"])
    if gauges:
        rows = [[g["name"] + _tag_suffix(g.get("tags", {})), _fmt_value(g["value"])]
                for g in gauges]
        lines += ["", "gauges:"] + _table(rows, ["name", "value"])
    if histograms:
        rows = [[h["name"] + _tag_suffix(h.get("tags", {})), str(h["count"]),
                 _fmt_seconds(h.get("mean", 0.0)), _fmt_seconds(h.get("p50", 0.0)),
                 _fmt_seconds(h.get("p90", 0.0)), _fmt_seconds(h.get("p99", 0.0)),
                 _fmt_seconds(h.get("max", 0.0))]
                for h in histograms]
        lines += ["", "histograms:"] + _table(
            rows, ["name", "count", "mean", "p50", "p90", "p99", "max"])
    if not (counters or gauges or histograms):
        lines.append("(no instruments recorded)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------
def _span_paths(spans: list[dict]) -> dict[str, dict]:
    """Aggregate spans by root-to-span name path ("round > client_task")."""
    by_id = {s["span_id"]: s for s in spans}

    def path_of(span: dict) -> str:
        names = [span["name"]]
        seen = {span["span_id"]}
        parent = span.get("parent_id")
        while parent is not None and parent in by_id and parent not in seen:
            seen.add(parent)
            names.append(by_id[parent]["name"])
            parent = by_id[parent].get("parent_id")
        return " > ".join(reversed(names))

    aggregated: dict[str, dict] = {}
    for span in spans:
        entry = aggregated.setdefault(
            path_of(span), {"count": 0, "wall": 0.0, "excl": 0.0,
                            "aborted": 0})
        entry["count"] += 1
        # aborted spans (a crashed worker never closed them) have no
        # timings; they count but contribute no wall/excl time
        entry["wall"] += span.get("wall_s") or 0.0
        entry["excl"] += span.get("excl_s") or 0.0
        if span.get("status") == "aborted" or span.get("t_end") is None:
            entry["aborted"] += 1
    return aggregated


def render_trace(spans: list[dict]) -> str:
    """Render parsed trace spans as an aggregated call-path tree."""
    lines = ["== trace =="]
    if not spans:
        return "\n".join(lines + ["(no spans recorded)"])
    aggregated = _span_paths(spans)
    # Depth-first over the path tree, siblings widest-wall first, so each
    # path prints directly under its parent.
    ordered: list[str] = []

    def visit(prefix: str) -> None:
        children = [p for p in aggregated
                    if (p.rsplit(" > ", 1)[0] if " > " in p else "") == prefix]
        for path in sorted(children, key=lambda p: -aggregated[p]["wall"]):
            ordered.append(path)
            visit(path)

    visit("")
    rows = []
    n_aborted = 0
    for path in ordered:
        entry = aggregated[path]
        depth = path.count(" > ")
        label = "  " * depth + path.rsplit(" > ", 1)[-1]
        if entry["aborted"]:
            label += f" [{entry['aborted']} aborted]"
            n_aborted += entry["aborted"]
        rows.append([label, str(entry["count"]), _fmt_seconds(entry["wall"]),
                     _fmt_seconds(entry["excl"])])
    summary = f"{len(spans)} span(s), {len(aggregated)} distinct path(s)"
    if n_aborted:
        summary += f", {n_aborted} aborted"
    lines += [summary, ""]
    lines += _table(rows, ["path", "count", "wall", "excl"])
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# profile
# ---------------------------------------------------------------------------
def render_profile(payload: dict) -> str:
    """Render a ``repro.obs.profile/v1`` payload as a per-op table."""
    lines = ["== autograd profile =="]
    ops = payload.get("ops", {})
    if not ops:
        return "\n".join(lines + ["(no ops recorded)"])
    total = sum(r.get("fwd_seconds", 0.0) + r.get("bwd_seconds", 0.0)
                for r in ops.values())
    rows = []
    for name, record in sorted(
            ops.items(),
            key=lambda kv: -(kv[1].get("fwd_seconds", 0.0)
                             + kv[1].get("bwd_seconds", 0.0))):
        op_total = record.get("fwd_seconds", 0.0) + record.get("bwd_seconds", 0.0)
        share = (op_total / total * 100.0) if total else 0.0
        rows.append([name, str(record.get("nodes", 0)),
                     _fmt_seconds(record.get("fwd_seconds", 0.0)),
                     _fmt_seconds(record.get("bwd_seconds", 0.0)),
                     f"{share:.1f}%", _fmt_bytes(record.get("bytes", 0))])
    lines += [f"total op time {_fmt_seconds(total)}", ""]
    lines += _table(rows, ["op", "nodes", "fwd", "bwd", "share", "bytes"])
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# health
# ---------------------------------------------------------------------------
def load_health(path: Path) -> list[dict]:
    """Parse a health.jsonl file, skipping the header and truncated lines.

    An aborted run leaves a half-written final line; that line is dropped
    rather than failing the whole report.
    """
    records = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # truncated tail of an aborted run
        if "event" in record:
            records.append(record)
    return records


def render_health(records: list[dict]) -> str:
    """Render parsed health.jsonl events: round digest + alert table."""
    lines = ["== health =="]
    rounds = [r for r in records if r.get("event") == "round"]
    alerts = [r for r in records if r.get("event") == "alert"]
    if not rounds and not alerts:
        return "\n".join(lines + ["(no health events recorded)"])
    quarantined: set[str] = set()
    for record in rounds:
        quarantined.update(record.get("quarantined", []))
    counts: dict[str, int] = {}
    for alert in alerts:
        counts[alert.get("severity", "info")] = \
            counts.get(alert.get("severity", "info"), 0) + 1
    summary = ", ".join(f"{counts.get(s, 0)} {s}"
                        for s in ("critical", "warning", "info"))
    lines.append(f"{len(rounds)} round(s) monitored, alerts: {summary}")
    if quarantined:
        lines.append("quarantined clients: " + ", ".join(sorted(quarantined)))
    if alerts:
        rows = [[a.get("detector", "?"), a.get("severity", "?"),
                 str(a.get("round_number", "?")), a.get("client") or "-",
                 a.get("message", "")]
                for a in alerts]
        lines += [""] + _table(rows, ["detector", "severity", "round",
                                      "client", "message"])
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# whole-run report
# ---------------------------------------------------------------------------
def load_trace(path: Path) -> list[dict]:
    """Parse a trace.jsonl file into span records.

    Skips the header, ``process``/``end`` event markers and truncated
    lines — only records carrying a ``span_id`` are spans.  Use
    :func:`load_trace_events` when the markers matter.
    """
    return [r for r in load_trace_events(path) if "span_id" in r]


def load_trace_events(path: Path) -> list[dict]:
    """Every parseable record in a trace.jsonl: header, spans, markers."""
    records = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # truncated tail of an aborted run
        if isinstance(record, dict):
            records.append(record)
    return records


def render_report(run_dir: str | Path) -> str:
    """The full text report for one telemetry-enabled run directory.

    Every artifact is optional: missing or unreadable ones are noted in
    place and listed in the footer instead of aborting the report.
    """
    run_dir = Path(run_dir)
    if not run_dir.exists():
        raise FileNotFoundError(f"run directory {run_dir} does not exist")
    sections = [f"telemetry report: {run_dir}"]
    absent: list[str] = []
    found = 0

    def section(title: str, path: Path, loader, renderer) -> None:
        nonlocal found
        if not path.exists():
            absent.append(path.name)
            sections.append(f"== {title} ==\n({path.name} not found)")
            return
        try:
            payload = loader(path)
        except (OSError, json.JSONDecodeError) as error:
            absent.append(f"{path.name} (unreadable)")
            sections.append(f"== {title} ==\n({path.name} unreadable: {error})")
            return
        sections.append(renderer(payload))
        found += 1

    section("metrics", run_dir / METRICS_FILE,
            lambda p: json.loads(p.read_text()), render_metrics)
    section("trace", run_dir / TRACE_FILE, load_trace, render_trace)
    section("autograd profile", run_dir / PROFILE_FILE,
            lambda p: json.loads(p.read_text()), render_profile)
    section("health", run_dir / HEALTH_FILE, load_health, render_health)

    if found == 0:
        raise FileNotFoundError(
            f"no telemetry artifacts in {run_dir} (expected {METRICS_FILE}, "
            f"{TRACE_FILE}, {PROFILE_FILE} or {HEALTH_FILE}; run with "
            f"telemetry enabled)")
    if absent:
        sections.append("absent artifacts: " + ", ".join(absent))
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    import argparse

    from .registry import add_runs_parser, run_runs_command

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render telemetry artifacts written by a TelemetrySession, "
                    "follow live runs, export traces and compare runs via the "
                    "run registry.")
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="render a run directory's telemetry")
    report.add_argument("run_dir", help="directory holding metrics.json / "
                                        "trace.jsonl / profile.json / "
                                        "health.jsonl")
    report.add_argument("--format", choices=["text", "chrome-trace"],
                        default="text",
                        help="text report (default) or Chrome trace-event "
                             "JSON on stdout")
    tail_cmd = sub.add_parser(
        "tail", help="follow a live run's trace.jsonl, printing round progress")
    tail_cmd.add_argument("run_dir", help="run directory being written by a "
                                          "streaming TelemetrySession")
    tail_cmd.add_argument("--idle-timeout", type=float, default=30.0,
                          help="exit after this many seconds without new "
                               "trace data (default 30)")
    watch_cmd = sub.add_parser(
        "watch", help="live terminal dashboard over a run dir or exporter URL")
    watch_cmd.add_argument("target", help="run directory (follows trace.jsonl "
                                          "+ health.jsonl) or an exporter "
                                          "http://host:port URL")
    watch_cmd.add_argument("--refresh", type=float, default=1.0,
                           help="seconds between frames (default 1)")
    watch_cmd.add_argument("--idle-timeout", type=float, default=None,
                           help="exit after this many seconds without "
                                "progress (default: run until quit)")
    watch_cmd.add_argument("--frames", type=int, default=None,
                           help="render at most N frames then exit "
                                "(useful non-interactively)")
    trace_cmd = sub.add_parser("trace", help="trace-file operations")
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export", help="convert trace.jsonl to Chrome trace-event JSON")
    export.add_argument("run_dir", help="run directory (or a trace.jsonl path)")
    export.add_argument("-o", "--output", default=None,
                        help="output path (default <trace>.chrome.json)")
    add_runs_parser(sub)
    args = parser.parse_args(argv)
    if args.command == "runs":
        return run_runs_command(args)
    if args.command == "tail":
        from .tail import tail_run

        trace_path = Path(args.run_dir) / TRACE_FILE
        seen = tail_run(args.run_dir, idle_timeout=args.idle_timeout)
        if seen == 0:
            print(f"error: no trace records appeared in {trace_path}")
            return 1
        return 0
    if args.command == "watch":
        from .dashboard import watch

        frames = watch(args.target, refresh=args.refresh,
                       max_frames=args.frames,
                       idle_timeout=args.idle_timeout)
        return 0 if frames else 1
    if args.command == "trace":
        from .chrome import export_chrome_trace

        target = Path(args.run_dir)
        trace_path = target if target.is_file() else target / TRACE_FILE
        if not trace_path.exists():
            print(f"error: {trace_path} does not exist")
            return 1
        out = export_chrome_trace(trace_path, args.output)
        print(f"wrote {out}")
        return 0
    try:
        if args.format == "chrome-trace":
            from .chrome import to_chrome_trace

            trace_path = Path(args.run_dir) / TRACE_FILE
            if not trace_path.exists():
                raise FileNotFoundError(f"{trace_path} does not exist")
            print(json.dumps(to_chrome_trace(load_trace_events(trace_path)),
                             indent=1, sort_keys=True))
        else:
            print(render_report(args.run_dir))
    except FileNotFoundError as error:
        print(f"error: {error}")
        return 1
    return 0
