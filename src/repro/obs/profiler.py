"""Autograd op profiler: per-op counts, seconds and bytes from any run.

Two hook points, both zero-cost when no profiler is installed:

1. **Node hook** (``repro.autograd.tensor._PROFILE_HOOK``): every graph
   node created by ``Tensor._make`` reports its op name and output-array
   bytes, and its backward closure is wrapped so each backward invocation
   is timed.  This covers *every* differentiable op — fused kernels and
   primitive Tensor methods alike.
2. **Forward wrappers**: the public fused ops in
   :mod:`repro.autograd.functional` are rebound to timing wrappers while
   the profiler is installed.  Model and training code resolves them at
   call time (``F.attention_layer(...)``), so the swap takes effect
   process-wide and is fully undone by :meth:`OpProfiler.uninstall`.

Forward seconds are *inclusive* (a wrapper's time covers any primitive
nodes the op builds internally); backward seconds are per-closure and
therefore exclusive.  ``bytes`` counts the output buffers registered on
the graph — the number that tracks activation-memory pressure.

The profile is what makes ``docs/PERFORMANCE.md`` reproducible: a
telemetry-enabled run writes ``profile.json`` and
``python -m repro.obs report <run_dir>`` renders the same per-op table the
microbenchmarks produce, from real training traffic.
"""

from __future__ import annotations

import functools
import json
import sys
import threading
import time
from pathlib import Path

from ..autograd import functional as _functional
from ..autograd.tensor import Tensor as _Tensor

# ``repro.autograd`` re-exports a ``tensor()`` constructor that shadows the
# submodule, so resolve the module object through the class instead.
_tensor_mod = sys.modules[_Tensor.__module__]

__all__ = ["OpProfiler", "get_profiler"]


class _OpRecord:
    __slots__ = ("nodes", "bytes", "fwd_calls", "fwd_seconds",
                 "bwd_calls", "bwd_seconds")

    def __init__(self) -> None:
        self.nodes = 0
        self.bytes = 0
        self.fwd_calls = 0
        self.fwd_seconds = 0.0
        self.bwd_calls = 0
        self.bwd_seconds = 0.0

    def to_dict(self) -> dict:
        return {"nodes": self.nodes, "bytes": self.bytes,
                "fwd_calls": self.fwd_calls,
                "fwd_seconds": round(self.fwd_seconds, 6),
                "bwd_calls": self.bwd_calls,
                "bwd_seconds": round(self.bwd_seconds, 6)}


class OpProfiler:
    """Collects per-op statistics while installed.

    Use as a context manager, or pair :meth:`install`/:meth:`uninstall`.
    Only one profiler can be installed at a time.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._thread_ops: list[dict[str, _OpRecord]] = []
        self._local = threading.local()
        self._installed = False
        self._saved_functional: dict[str, object] = {}

    def _ops_for_thread(self) -> dict[str, _OpRecord]:
        # Lock-free hot path: each thread owns its record dict and mutates
        # it without synchronisation (autograd graphs are built and walked
        # on the thread that created them).  The lock only guards the list
        # of per-thread dicts, taken once per thread, and snapshots.
        ops = getattr(self._local, "ops", None)
        if ops is None:
            ops = self._local.ops = {}
            with self._lock:
                self._thread_ops.append(ops)
        return ops

    # ------------------------------------------------------------------
    # node hook (called from Tensor._make on every graph node)
    # ------------------------------------------------------------------
    def record_node(self, op: str, nbytes: int, backward):
        ops = self._ops_for_thread()
        record = ops.get(op)
        if record is None:
            record = ops[op] = _OpRecord()
        record.nodes += 1
        record.bytes += nbytes
        perf_counter = time.perf_counter

        def timed_backward(grad) -> None:
            started = perf_counter()
            backward(grad)
            elapsed = perf_counter() - started
            record.bwd_calls += 1
            record.bwd_seconds += elapsed

        return timed_backward

    def _record_forward(self, op: str, elapsed: float) -> None:
        ops = self._ops_for_thread()
        record = ops.get(op)
        if record is None:
            record = ops[op] = _OpRecord()
        record.fwd_calls += 1
        record.fwd_seconds += elapsed

    # ------------------------------------------------------------------
    # install / uninstall
    # ------------------------------------------------------------------
    def install(self) -> "OpProfiler":
        if self._installed:
            return self
        if _tensor_mod._PROFILE_HOOK is not None:
            raise RuntimeError("another OpProfiler is already installed")
        _tensor_mod._PROFILE_HOOK = self
        for name in _functional.__all__:
            original = getattr(_functional, name, None)
            if not callable(original) or getattr(original, "__module__", "") != _functional.__name__:
                continue
            self._saved_functional[name] = original
            setattr(_functional, name, self._make_forward_wrapper(name, original))
        self._installed = True
        return self

    def _make_forward_wrapper(self, name: str, original):
        @functools.wraps(original)
        def wrapper(*args, **kwargs):
            started = time.perf_counter()
            result = original(*args, **kwargs)
            self._record_forward(name, time.perf_counter() - started)
            return result

        return wrapper

    def uninstall(self) -> None:
        if not self._installed:
            return
        if _tensor_mod._PROFILE_HOOK is self:
            _tensor_mod._PROFILE_HOOK = None
        for name, original in self._saved_functional.items():
            setattr(_functional, name, original)
        self._saved_functional.clear()
        self._installed = False

    def __enter__(self) -> "OpProfiler":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.uninstall()
        return False

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def _merged(self) -> dict[str, _OpRecord]:
        with self._lock:
            per_thread = list(self._thread_ops)
        merged: dict[str, _OpRecord] = {}
        for ops in per_thread:
            for name, record in list(ops.items()):
                into = merged.get(name)
                if into is None:
                    into = merged[name] = _OpRecord()
                into.nodes += record.nodes
                into.bytes += record.bytes
                into.fwd_calls += record.fwd_calls
                into.fwd_seconds += record.fwd_seconds
                into.bwd_calls += record.bwd_calls
                into.bwd_seconds += record.bwd_seconds
        return merged

    @property
    def ops(self) -> dict[str, _OpRecord]:
        return self._merged()

    def total_seconds(self) -> float:
        return sum(r.fwd_seconds + r.bwd_seconds
                   for r in self._merged().values())

    def to_dict(self) -> dict:
        """JSON-safe snapshot: the ``profile.json`` schema."""
        ops = {name: record.to_dict()
               for name, record in self._merged().items()}
        return {"schema": "repro.obs.profile/v1", "ops": ops}

    def merge_dict(self, snapshot: dict) -> None:
        """Fold a :meth:`to_dict` snapshot into this profiler's totals.

        Lets the parent process absorb a forked client worker's profile
        (shipped over the bus at shutdown) so ``profile.json`` covers the
        work done in every process, not just the server's.
        """
        incoming = snapshot.get("ops", {})
        if not incoming:
            return
        ops = self._ops_for_thread()
        for name, fields in incoming.items():
            record = ops.get(name)
            if record is None:
                record = ops[name] = _OpRecord()
            record.nodes += int(fields.get("nodes", 0))
            record.bytes += int(fields.get("bytes", 0))
            record.fwd_calls += int(fields.get("fwd_calls", 0))
            record.fwd_seconds += float(fields.get("fwd_seconds", 0.0))
            record.bwd_calls += int(fields.get("bwd_calls", 0))
            record.bwd_seconds += float(fields.get("bwd_seconds", 0.0))

    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path


def get_profiler() -> OpProfiler | None:
    """The currently-installed profiler, or None."""
    hook = _tensor_mod._PROFILE_HOOK
    return hook if isinstance(hook, OpProfiler) else None
