"""SysMonitor: a stdlib-only background resource sampler.

Everything else in ``repro.obs`` measures what the *code* did; this module
measures what the *process* costs while doing it.  A daemon thread samples
``/proc/self`` every ``interval`` seconds and publishes tagged gauges into
a :class:`~repro.obs.metrics.MetricsRegistry`:

========================  =============================================
``sys.rss_bytes``         resident set size (``/proc/self/statm``)
``sys.peak_rss_bytes``    high-water RSS seen by this monitor
``sys.cpu_percent``       CPU use since the previous sample
                          (utime+stime deltas from ``/proc/self/stat``)
``sys.open_fds``          open descriptor count (``/proc/self/fd``)
``sys.shm_bytes``         bytes in this run's ``/dev/shm`` segments
                          (the shm transport's ``repro-shm-*`` dirs)
``sys.gc_collections``    collection count per generation (``gen=`` tag)
========================  =============================================

Every gauge carries a ``process=`` tag, so the server's samples and every
forked worker's samples coexist in one merged ``metrics.json`` (worker
samples ride the normal streamed-telemetry deltas — see
:class:`~repro.flare.runner.TelemetryCollector`) and in one exporter
scrape.  The monitor takes one synchronous sample on :meth:`start` and one
on :meth:`stop`, so even a sub-interval run records real numbers.

Off by default everywhere; arming is explicit
(``TelemetrySession(sysmon=True)``, ``SimulatorRunner(metrics_port=...)``)
and costs one short-lived thread doing a few file reads per interval — far
inside the <3% telemetry overhead budget.  On platforms without ``/proc``
the sampler degrades to ``resource.getrusage`` RSS and GC stats only.
"""

from __future__ import annotations

import gc
import glob
import os
import threading
import time

from .metrics import MetricsRegistry

__all__ = ["SysMonitor", "read_proc_sample", "DEFAULT_INTERVAL",
           "SHM_SEGMENT_GLOB"]

DEFAULT_INTERVAL = 1.0

# Segment directories the shm transport creates (see
# repro.flare.shm_transport); summing only these keeps the gauge about
# *this federation's* shared memory, not whatever else the machine runs.
SHM_SEGMENT_GLOB = "/dev/shm/repro-shm-*"

_PAGE_SIZE = 4096
try:  # pragma: no branch - trivial platform probe
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    pass
_CLK_TCK = 100.0
try:
    _CLK_TCK = float(os.sysconf("SC_CLK_TCK"))
except (AttributeError, ValueError, OSError):  # pragma: no cover
    pass


def _rss_bytes_fallback() -> int:
    """RSS via getrusage for platforms without /proc (ru_maxrss, so this
    is actually the peak — the closest portable stand-in)."""
    try:
        import resource

        maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS reports bytes.
        return int(maxrss * 1024) if maxrss < 1 << 40 else int(maxrss)
    except Exception:
        return 0


def read_proc_sample(shm_glob: str = SHM_SEGMENT_GLOB) -> dict:
    """One point-in-time resource sample (JSON-safe dict).

    Keys: ``rss_bytes``, ``cpu_seconds`` (cumulative user+system),
    ``open_fds``, ``shm_bytes``, ``gc_collections`` (per-generation list).
    Every probe is individually guarded: a missing ``/proc`` entry yields
    a zero, never an exception — the sampler must not be able to kill the
    process it watches.
    """
    sample = {"rss_bytes": 0, "cpu_seconds": 0.0, "open_fds": 0,
              "shm_bytes": 0,
              "gc_collections": [s.get("collections", 0)
                                 for s in gc.get_stats()]}
    try:
        with open("/proc/self/statm") as fh:
            sample["rss_bytes"] = int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        sample["rss_bytes"] = _rss_bytes_fallback()
    try:
        with open("/proc/self/stat") as fh:
            # fields 14/15 (utime/stime) count from after the comm field,
            # which may itself contain spaces — split after the ')'
            after_comm = fh.read().rpartition(")")[2].split()
            sample["cpu_seconds"] = (int(after_comm[11])
                                     + int(after_comm[12])) / _CLK_TCK
    except (OSError, ValueError, IndexError):
        pass
    try:
        sample["open_fds"] = len(os.listdir("/proc/self/fd"))
    except OSError:
        pass
    try:
        shm_total = 0
        for segment_dir in glob.glob(shm_glob):
            for root, _dirs, files in os.walk(segment_dir):
                for name in files:
                    try:
                        shm_total += os.stat(os.path.join(root, name)).st_size
                    except OSError:
                        continue  # segment unlinked between listdir and stat
        sample["shm_bytes"] = shm_total
    except OSError:
        pass
    return sample


class SysMonitor:
    """Background resource sampler publishing into a metrics registry.

    Parameters
    ----------
    registry:
        Where the gauges land.  ``None`` resolves the process-wide
        registry lazily at each sample, so a monitor armed before a
        :class:`~repro.obs.session.TelemetrySession` still publishes into
        the session's registry.
    interval:
        Seconds between samples (daemon thread).  ``None`` disables the
        thread entirely — samples are then taken only on :meth:`start`,
        :meth:`stop` and explicit :meth:`sample` calls.
    process:
        Value of the ``process=`` tag on every gauge ("server", a site
        name, ...).
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 interval: float | None = DEFAULT_INTERVAL,
                 process: str = "main",
                 shm_glob: str = SHM_SEGMENT_GLOB) -> None:
        if interval is not None and interval <= 0:
            raise ValueError("interval must be positive (or None)")
        self._registry = registry
        self.interval = interval
        self.process = process
        self.shm_glob = shm_glob
        self.peak_rss_bytes = 0
        self.samples_taken = 0
        self._last_cpu: tuple[float, float] | None = None  # (wall, cpu_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        if self._registry is not None:
            return self._registry
        from . import metrics as _metrics

        return _metrics.get_registry()

    def sample(self) -> dict:
        """Take one sample now and publish the gauges; returns the sample."""
        raw = read_proc_sample(self.shm_glob)
        now = time.monotonic()
        if raw["rss_bytes"] > self.peak_rss_bytes:
            self.peak_rss_bytes = raw["rss_bytes"]
        cpu_percent = 0.0
        if self._last_cpu is not None:
            wall = now - self._last_cpu[0]
            if wall > 0:
                cpu_percent = max(
                    0.0, (raw["cpu_seconds"] - self._last_cpu[1]) / wall * 100.0)
        self._last_cpu = (now, raw["cpu_seconds"])
        registry = self.registry
        tag = {"process": self.process}
        registry.gauge("sys.rss_bytes", **tag).set(raw["rss_bytes"])
        registry.gauge("sys.peak_rss_bytes", **tag).set(self.peak_rss_bytes)
        registry.gauge("sys.cpu_percent", **tag).set(round(cpu_percent, 2))
        registry.gauge("sys.open_fds", **tag).set(raw["open_fds"])
        registry.gauge("sys.shm_bytes", **tag).set(raw["shm_bytes"])
        for gen, collections in enumerate(raw["gc_collections"]):
            registry.gauge("sys.gc_collections", gen=gen, **tag).set(collections)
        self.samples_taken += 1
        return raw

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample()
            except Exception:  # pragma: no cover - defensive
                pass  # never let a sampling hiccup kill the thread

    def start(self) -> "SysMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self.sample()  # synchronous first sample: short runs still record
        if self.interval is not None:
            self._thread = threading.Thread(
                target=self._loop, name=f"sysmon-{self.process}", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one last sample (final RSS/fd truth)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self.sample()
        except Exception:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "SysMonitor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
