"""``repro.obs`` — federation-wide telemetry.

The instrument panel every other subsystem reports into:

- :mod:`repro.obs.metrics` — process-wide registry of counters, gauges and
  fixed-bucket histograms (cheap no-ops while disabled).
- :mod:`repro.obs.trace` — hierarchical trace spans
  (``round -> client_task -> local_train -> step``) with wall + exclusive
  time, exported as JSONL.
- :mod:`repro.obs.profiler` — autograd op profiler hooking the fused
  forward/backward kernels (per-op calls, seconds, bytes).
- :mod:`repro.obs.session` — :class:`TelemetrySession`, the one switch that
  arms all three and writes ``metrics.json`` / ``trace.jsonl`` /
  ``profile.json`` under a run directory.
- :mod:`repro.obs.health` — :class:`HealthMonitor` + pluggable anomaly
  :class:`Detector` rules: per-client drift diagnostics, severity-ranked
  :class:`Alert` events and optional quarantine, streamed to
  ``health.jsonl``.
- :mod:`repro.obs.registry` — the run registry and run-over-run comparison
  behind ``python -m repro.obs runs list|show|diff``.
- :mod:`repro.obs.report` — the run-report renderer behind
  ``python -m repro.obs report <run_dir>``.
- :mod:`repro.obs.chrome` — Chrome/Perfetto trace-event export
  (``python -m repro.obs trace export <run_dir>``).
- :mod:`repro.obs.tail` — live trace follower for streaming runs
  (``python -m repro.obs tail <run_dir>``).
- :mod:`repro.obs.sysmon` — :class:`SysMonitor`, the background resource
  sampler (RSS, CPU, fds, /dev/shm, GC) feeding ``sys.*`` gauges into the
  registry, armed per process.
- :mod:`repro.obs.exporter` — :class:`MetricsExporter`, the loopback
  Prometheus/OpenMetrics ``/metrics`` + ``/healthz`` endpoint
  (``SimulatorRunner(metrics_port=...)``).
- :mod:`repro.obs.dashboard` — the live terminal dashboard
  (``python -m repro.obs watch <run_dir|url>``).

See ``docs/OBSERVABILITY.md`` for the full API and artifact schemas.
"""

from . import metrics, trace
from .chrome import export_chrome_trace, to_chrome_trace
from .dashboard import Dashboard, watch
from .exporter import (
    MetricsExporter,
    parse_prometheus_text,
    render_prometheus,
)
from .health import (
    Alert,
    Detector,
    DivergingClientDetector,
    HealthMonitor,
    NonFiniteUpdateDetector,
    StalledConvergenceDetector,
    StragglerDetector,
    WireBlowupDetector,
    default_detectors,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .profiler import OpProfiler, get_profiler
from .registry import RunRegistry, diff_runs, summarize_run
from .report import load_trace, load_trace_events, render_report
from .session import TelemetrySession, TraceStreamWriter
from .sysmon import SysMonitor, read_proc_sample
from .tail import iter_trace_records, tail_run
from .trace import (
    Span,
    Tracer,
    current_context,
    format_traceparent,
    get_tracer,
    parse_traceparent,
    set_tracer,
    span,
)

__all__ = [
    "metrics", "trace",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS",
    "get_registry", "set_registry",
    "Tracer", "Span", "span", "get_tracer", "set_tracer",
    "current_context", "format_traceparent", "parse_traceparent",
    "OpProfiler", "get_profiler",
    "TelemetrySession", "TraceStreamWriter", "render_report",
    "load_trace", "load_trace_events",
    "to_chrome_trace", "export_chrome_trace",
    "iter_trace_records", "tail_run",
    "HealthMonitor", "Alert", "Detector", "default_detectors",
    "NonFiniteUpdateDetector", "DivergingClientDetector", "StragglerDetector",
    "StalledConvergenceDetector", "WireBlowupDetector",
    "RunRegistry", "summarize_run", "diff_runs",
    "SysMonitor", "read_proc_sample",
    "MetricsExporter", "render_prometheus", "parse_prometheus_text",
    "Dashboard", "watch",
]
