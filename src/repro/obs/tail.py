"""Live trace follower: ``python -m repro.obs tail <run_dir>``.

Follows the ``trace.jsonl`` that a streaming
:class:`~repro.obs.session.TelemetrySession` appends to while a federation
run is in flight, and renders round progress as it happens: which workers
joined (with their clock offsets), each ``client_task`` as it completes,
and a one-line digest when the server closes a ``round`` span.  The
follower exits when it sees the ``{"event": "end"}`` footer the session
writes on shutdown, or after ``idle_timeout`` seconds without new bytes
(covering runs that died without a footer).

The reader is a plain incremental line tailer — it buffers a partial final
line until the writer finishes it, so it never misparses a record that is
mid-append.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from .session import TRACE_FILE

__all__ = ["iter_trace_records", "render_event", "tail", "tail_run"]


def iter_trace_records(path: str | Path, poll: float = 0.2,
                       idle_timeout: float | None = None,
                       _clock=time.monotonic):
    """Yield parsed records from a (possibly still growing) trace.jsonl.

    Waits for the file to appear, then streams complete lines as the writer
    flushes them.  Stops after the ``end`` footer (which is yielded) or once
    ``idle_timeout`` seconds pass with no new data.
    """
    path = Path(path)
    buffer = ""
    position = 0
    last_progress = _clock()
    handle = None
    try:
        while True:
            if handle is None:
                if path.exists():
                    handle = path.open("r")
                elif idle_timeout is not None and \
                        _clock() - last_progress > idle_timeout:
                    return
                else:
                    time.sleep(poll)
                    continue
            handle.seek(position)
            chunk = handle.read()
            position = handle.tell()
            if chunk:
                last_progress = _clock()
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    if not line.strip():
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(record, dict):
                        yield record
                        if record.get("event") == "end":
                            return
            elif idle_timeout is not None and \
                    _clock() - last_progress > idle_timeout:
                return
            else:
                time.sleep(poll)
    finally:
        if handle is not None:
            handle.close()


def _fmt_s(value: float) -> str:
    return f"{value:.3f}s" if value >= 1.0 else f"{value * 1e3:.1f}ms"


class _RoundTracker:
    """Folds the span stream into human-readable round-progress lines."""

    def __init__(self) -> None:
        self.tasks_by_round: dict[object, list[dict]] = {}

    def feed(self, record: dict) -> str | None:
        if record.get("schema"):
            return (f"trace {record.get('trace_id', '?')} "
                    f"(process {record.get('process', '?')})")
        if record.get("event") == "process":
            offset = record.get("clock_offset") or 0.0
            return (f"process {record.get('process', '?')} joined "
                    f"(client {record.get('client', '?')}, "
                    f"clock offset {offset * 1e6:+.1f}us)")
        if record.get("event") == "end":
            return "run ended"
        if "span_id" not in record:
            return None
        name = record.get("name")
        attrs = record.get("attrs") or {}
        if record.get("t_end") is None:
            return (f"  !! span {name} [{record.get('process', '?')}] "
                    f"aborted (never closed)")
        if name == "client_task":
            round_number = attrs.get("round")
            self.tasks_by_round.setdefault(round_number, []).append(record)
            return (f"  round {round_number}: client "
                    f"{attrs.get('client', record.get('process', '?'))} "
                    f"done in {_fmt_s(record.get('wall_s') or 0.0)}")
        if name == "round":
            round_number = attrs.get("round")
            if attrs.get("mode") == "async":
                # FedBuff commit window: show the buffer fill, the global
                # version it produced and how stale the updates ran.
                fill = (f"{attrs.get('accepted', '?')}/"
                        f"{attrs.get('buffer_size', '?')} update(s)")
                detail = f"buffer {fill}, global v{attrs.get('version', '?')}"
                staleness = attrs.get("staleness_max")
                if staleness is not None:
                    detail += f", staleness max {staleness}"
                if attrs.get("quorum_met") is False:
                    detail += ", under quorum"
                return (f"commit window {round_number} closed in "
                        f"{_fmt_s(record.get('wall_s') or 0.0)} ({detail})")
            # worker deltas race the server's own stream, so tasks for this
            # round may still arrive (and print) after this line
            n_tasks = len(self.tasks_by_round.get(round_number, []))
            return (f"round {round_number} complete in "
                    f"{_fmt_s(record.get('wall_s') or 0.0)} "
                    f"({n_tasks} task(s) streamed so far)")
        return None


def render_event(record: dict, tracker: _RoundTracker | None = None) -> str | None:
    """One human-readable line for a trace record, or None to stay quiet."""
    return (tracker or _RoundTracker()).feed(record)


def tail(trace_path: str | Path, stream=None, poll: float = 0.2,
         idle_timeout: float | None = 30.0) -> int:
    """Follow one trace.jsonl, printing progress lines; returns #records seen."""
    stream = stream if stream is not None else sys.stdout
    tracker = _RoundTracker()
    count = 0
    for record in iter_trace_records(trace_path, poll=poll,
                                     idle_timeout=idle_timeout):
        count += 1
        line = tracker.feed(record)
        if line is not None:
            print(line, file=stream, flush=True)
    return count


def tail_run(run_dir: str | Path, stream=None, poll: float = 0.2,
             idle_timeout: float | None = 30.0) -> int:
    """``tail`` for a run directory (follows ``<run_dir>/trace.jsonl``)."""
    return tail(Path(run_dir) / TRACE_FILE, stream=stream, poll=poll,
                idle_timeout=idle_timeout)
