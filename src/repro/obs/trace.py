"""Hierarchical trace spans for federated runs — distributed edition.

A *span* measures one timed region — a federated round, one client's task,
a local training call, a single optimizer step — and remembers its parent,
so a run unrolls into a tree::

    span("round") -> span("client_task") -> span("local_train") -> span("step")

Each span records wall-clock time and *exclusive* time (wall minus the wall
of its direct children), which is what makes the flamegraph-style report
useful: a round whose time is all exclusive is bottlenecked in aggregation
or collection, not in client compute.

Distribution model (one federation = one trace):

- Every tracer carries a run-level ``trace_id`` (32 hex chars) and a
  ``process`` label; span ids are ``"<process>-<seq>"`` strings, so spans
  merged from N forked worker processes can never collide.
- Parent linkage is per-thread (a thread-local stack) *within* a process;
  **across** processes the transport carries a W3C-traceparent-style
  context (:func:`format_traceparent`) and the receiver opens its span
  with ``remote_parent=ctx`` — the remote span id overrides the local
  stack parent, stitching ``round -> client_task`` across the fork.
- Clock alignment: all timestamps are seconds on the *root* timeline.
  A worker tracer created with ``adopt_clock=True`` derives its offset
  from the first remote context it observes (the sender samples one
  ``time.monotonic()`` value for both the envelope's ``SEND_TS`` and the
  context's ``ts``, so on a shared CLOCK_MONOTONIC the offset is exact)
  and applies it to every span it exports — merged child intervals land
  inside their remote parent's interval.

Live export: :meth:`Tracer.drain` hands back finished spans exactly once
(as dicts, offsets applied), which is what the streaming telemetry path
flushes to ``trace.jsonl`` while the run executes; :meth:`Tracer.spans`
keeps the full in-memory record for end-of-run reporting.

When no tracer is installed, :func:`span` returns a shared no-op context
manager — the instrumentation costs one global read per call.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path

__all__ = ["Span", "Tracer", "span", "get_tracer", "set_tracer",
           "format_traceparent", "parse_traceparent", "current_context"]

TRACE_SCHEMA = "repro.obs.trace/v2"


def format_traceparent(trace_id: str, span_id: str) -> str:
    """W3C-traceparent-style header: ``00-<trace_id>-<span_id>-01``.

    ``span_id`` is this library's process-prefixed string id (it may itself
    contain dashes); :func:`parse_traceparent` is the matching parser.
    """
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(value: str) -> tuple[str, str]:
    """Return ``(trace_id, span_id)`` from a traceparent string.

    The version and flags fields are fixed-position; everything between the
    trace id and the trailing flags belongs to the span id (which may
    contain dashes, e.g. ``site-1-000003``).
    """
    parts = str(value).split("-")
    if len(parts) < 4:
        raise ValueError(f"malformed traceparent {value!r}")
    return parts[1], "-".join(parts[2:-1])


class Span:
    """One timed region; use as a context manager via :func:`span`."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "thread",
                 "t_start", "t_end", "child_seconds", "n_children",
                 "_remote_parent")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict,
                 remote_parent: str | None = None) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id: str | None = None
        self.thread = threading.current_thread().name
        self.t_start = 0.0
        self.t_end = 0.0
        self.child_seconds = 0.0
        self.n_children = 0
        self._remote_parent = remote_parent

    # ------------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        return self.t_end - self.t_start

    @property
    def exclusive_seconds(self) -> float:
        return max(self.wall_seconds - self.child_seconds, 0.0)

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute after entry (e.g. a result computed inside)."""
        self.attrs[key] = value

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            parent.n_children += 1
        if self._remote_parent is not None:
            # Cross-process causality beats the local stack: the span the
            # sender had open when it dispatched the message is this span's
            # parent in the merged tree.  Exclusive-time attribution stays
            # local (the enclosing local span still absorbs child_seconds).
            self.parent_id = self._remote_parent
        self.t_start = time.monotonic() - self.tracer.origin
        stack.append(self)
        self.tracer._open_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t_end = time.monotonic() - self.tracer.origin
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].child_seconds += self.wall_seconds
        self.tracer._record(self)
        return False

    def to_dict(self) -> dict:
        offset = self.tracer.clock_offset
        return {
            "span_id": self.span_id, "parent_id": self.parent_id,
            "name": self.name, "process": self.tracer.process,
            "thread": self.thread,
            "t_start": round(self.t_start + offset, 6),
            "t_end": round(self.t_end + offset, 6),
            "wall_s": round(self.wall_seconds, 6),
            "excl_s": round(self.exclusive_seconds, 6),
            "attrs": self.attrs,
        }


class _NullSpan:
    """Reusable no-op span handed out when tracing is off (stateless, so one
    shared instance is safe under nesting and across threads)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; exports one JSON object per line.

    Parameters
    ----------
    trace_id:
        32-hex run-level id shared by every tracer participating in one
        federation (the parent mints it, workers inherit it through
        :class:`~repro.flare.runner.ClientProcessConfig`).  A fresh random
        id is minted when omitted.
    process:
        Label prefixed to every span id minted here (a worker uses its
        site name, the parent uses ``server``); defaults to ``p<pid>``.
    adopt_clock:
        When True, the first remote context observed via
        :meth:`observe_remote` calibrates :attr:`clock_offset` so exported
        timestamps land on the sender's (ultimately the root's) timeline.

    ``origin`` anchors all span times: ``t_start``/``t_end`` are seconds
    since tracer creation (``time.monotonic``, the clock shared across
    forked processes on one host), and ``started_unix`` in the export
    header maps them back to wall-clock time.
    """

    def __init__(self, trace_id: str | None = None, process: str | None = None,
                 adopt_clock: bool = False) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex
        self.process = process or f"p{os.getpid()}"
        self.adopt_clock = adopt_clock
        self.clock_offset = 0.0
        self._clock_synced = not adopt_clock
        self.origin = time.monotonic()
        self.started_unix = time.time()
        self._lock = threading.Lock()
        self._records: list[Span] = []   # everything ever finished
        self._pending: list[Span] = []   # finished but not yet drained
        self._open: dict[str, Span] = {}
        self._id = 0
        self._local = threading.local()
        self._flush_hook = None
        self._flush_threshold = 0.0

    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        with self._lock:
            self._id += 1
            return f"{self.process}-{self._id:06x}"

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open_span(self, opened: Span) -> None:
        with self._lock:
            self._open[opened.span_id] = opened

    def _record(self, finished: Span) -> None:
        with self._lock:
            self._open.pop(finished.span_id, None)
            self._records.append(finished)
            self._pending.append(finished)
            hook = self._flush_hook
        if hook is not None and finished.wall_seconds >= self._flush_threshold:
            hook()

    # ------------------------------------------------------------------
    def set_flush_hook(self, callback, threshold: float = 0.0) -> None:
        """Call ``callback()`` whenever a span at least ``threshold`` seconds
        wide finishes — the streaming exporters use it to flush promptly
        after significant spans (a round, a client task) close instead of
        waiting out their poll interval."""
        self._flush_threshold = threshold
        self._flush_hook = callback

    # ------------------------------------------------------------------
    # distributed context
    # ------------------------------------------------------------------
    def current_context(self, ts_mono: float | None = None) -> dict:
        """The propagation header for a message sent *now*.

        ``ts_mono`` is the ``time.monotonic()`` sample the transport also
        stamps into ``SEND_TS`` — passing the same sample makes the
        receiver's clock-offset derivation exact.  ``ts`` is that instant
        on this tracer's *exported* timeline, so offsets compose
        transitively back to the root.
        """
        if ts_mono is None:
            ts_mono = time.monotonic()
        stack = self._stack()
        span_id = stack[-1].span_id if stack else ""
        return {"traceparent": format_traceparent(self.trace_id, span_id),
                "ts": round(ts_mono - self.origin + self.clock_offset, 6)}

    def observe_remote(self, ctx: dict, send_ts: float) -> None:
        """Learn the sender's timeline from one received context.

        ``send_ts`` is the envelope's raw ``time.monotonic()`` send stamp;
        ``ctx["ts"]`` is the same instant on the sender's exported
        timeline.  On a shared monotonic clock (forked processes on one
        host) one observation aligns this tracer exactly; the offset is
        captured once, so every span — including ones recorded before the
        first message arrived — exports consistently.
        """
        if not self.adopt_clock or self._clock_synced:
            return
        ts = ctx.get("ts")
        if not isinstance(ts, (int, float)) or not isinstance(send_ts, (int, float)):
            return
        self.clock_offset = self.origin - float(send_ts) + float(ts)
        self._clock_synced = True

    # ------------------------------------------------------------------
    def span(self, name: str, remote_parent: dict | str | None = None,
             **attrs) -> Span:
        """Open a span; ``remote_parent`` is a propagation context (or a raw
        span id) naming the cross-process parent."""
        parent_id: str | None = None
        if isinstance(remote_parent, dict):
            traceparent = remote_parent.get("traceparent")
            if traceparent:
                try:
                    _, parent_id = parse_traceparent(traceparent)
                except ValueError:
                    parent_id = None
                parent_id = parent_id or None
        elif isinstance(remote_parent, str) and remote_parent:
            parent_id = remote_parent
        return Span(self, name, attrs, remote_parent=parent_id)

    def record_complete(self, name: str, seconds: float, **attrs) -> None:
        """Record an already-measured region as a finished span.

        Used by hot paths that already time themselves (the wire codec):
        the span is parented under the calling thread's current span and
        contributes to its child time, without entering the stack.
        """
        finished = Span(self, name, attrs)
        stack = self._stack()
        if stack:
            parent = stack[-1]
            finished.parent_id = parent.span_id
            parent.n_children += 1
            parent.child_seconds += seconds
        finished.t_end = time.monotonic() - self.origin
        finished.t_start = finished.t_end - seconds
        self._record(finished)

    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._records)

    def drain(self) -> list[dict]:
        """Finished spans not yet drained, as export dicts (offset applied).

        Each finished span is handed out exactly once — the streaming
        telemetry writers call this repeatedly during a run.
        """
        with self._lock:
            pending, self._pending = self._pending, []
        return [s.to_dict() for s in pending]

    def open_spans(self) -> list[dict]:
        """Currently-open spans (no ``t_end`` yet), for crash forensics."""
        with self._lock:
            opened = list(self._open.values())
        offset = self.clock_offset
        return [{"span_id": s.span_id, "parent_id": s.parent_id,
                 "name": s.name, "process": self.process, "thread": s.thread,
                 "t_start": round(s.t_start + offset, 6), "attrs": s.attrs}
                for s in opened]

    def header(self) -> dict:
        """The ``trace.jsonl`` header line for traces this tracer roots."""
        return {"schema": TRACE_SCHEMA, "trace_id": self.trace_id,
                "process": self.process, "started_unix": self.started_unix}

    def export_jsonl(self, path: str | Path) -> Path:
        """Write all spans as JSONL, preceded by one ``trace_header`` line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            records = [s.to_dict() for s in self._records]
        header = dict(self.header(), n_spans=len(records))
        with path.open("w") as fh:
            fh.write(json.dumps(header) + "\n")
            for record in sorted(records, key=lambda r: r["t_start"]):
                fh.write(json.dumps(record, default=str) + "\n")
        return path


# ---------------------------------------------------------------------------
# process-wide tracer
# ---------------------------------------------------------------------------
_tracer: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is off."""
    return _tracer


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear, with None) the process-wide tracer."""
    global _tracer
    old = _tracer
    _tracer = tracer
    return old


def span(name: str, remote_parent: dict | str | None = None, **attrs):
    """Open a span under the installed tracer (no-op when tracing is off)."""
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, remote_parent=remote_parent, **attrs)


def current_context(ts_mono: float | None = None) -> dict | None:
    """The installed tracer's propagation header, or None when tracing is off."""
    tracer = _tracer
    if tracer is None:
        return None
    return tracer.current_context(ts_mono)
