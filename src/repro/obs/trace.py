"""Hierarchical trace spans for federated runs.

A *span* measures one timed region — a federated round, one client's task,
a local training call, a single optimizer step — and remembers its parent,
so a run unrolls into a tree::

    span("round") -> span("client_task") -> span("local_train") -> span("step")

Each span records wall-clock time and *exclusive* time (wall minus the wall
of its direct children), which is what makes the flamegraph-style report
useful: a round whose time is all exclusive is bottlenecked in aggregation
or collection, not in client compute.

Parent linkage is per-thread (a thread-local stack), matching how the
simulator actually runs: the controller's round spans live on the main
thread while each client's task spans live on that client's serve thread.
Cross-thread correlation uses attributes instead (client task spans carry
the ``round`` number), so trace rows stay joinable with
``RunStats.rounds``.

When no tracer is installed, :func:`span` returns a shared no-op context
manager — the instrumentation costs one global read per call.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

__all__ = ["Span", "Tracer", "span", "get_tracer", "set_tracer"]


class Span:
    """One timed region; use as a context manager via :func:`span`."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "thread",
                 "t_start", "t_end", "child_seconds", "n_children")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id: int | None = None
        self.thread = threading.current_thread().name
        self.t_start = 0.0
        self.t_end = 0.0
        self.child_seconds = 0.0
        self.n_children = 0

    # ------------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        return self.t_end - self.t_start

    @property
    def exclusive_seconds(self) -> float:
        return max(self.wall_seconds - self.child_seconds, 0.0)

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute after entry (e.g. a result computed inside)."""
        self.attrs[key] = value

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            parent.n_children += 1
        self.t_start = time.perf_counter() - self.tracer.origin
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t_end = time.perf_counter() - self.tracer.origin
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].child_seconds += self.wall_seconds
        self.tracer._record(self)
        return False

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id, "parent_id": self.parent_id,
            "name": self.name, "thread": self.thread,
            "t_start": round(self.t_start, 6), "t_end": round(self.t_end, 6),
            "wall_s": round(self.wall_seconds, 6),
            "excl_s": round(self.exclusive_seconds, 6),
            "attrs": self.attrs,
        }


class _NullSpan:
    """Reusable no-op span handed out when tracing is off (stateless, so one
    shared instance is safe under nesting and across threads)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; exports one JSON object per line.

    ``origin`` anchors all span times: ``t_start``/``t_end`` are seconds
    since tracer creation, and ``started_unix`` in the export header maps
    them back to wall-clock time.
    """

    def __init__(self) -> None:
        self.origin = time.perf_counter()
        self.started_unix = time.time()
        self._lock = threading.Lock()
        self._records: list[Span] = []
        self._id = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, finished: Span) -> None:
        with self._lock:
            self._records.append(finished)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._records)

    def export_jsonl(self, path: str | Path) -> Path:
        """Write spans as JSONL, preceded by one ``trace_header`` line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            records = [s.to_dict() for s in self._records]
        header = {"schema": "repro.obs.trace/v1",
                  "started_unix": self.started_unix,
                  "n_spans": len(records)}
        with path.open("w") as fh:
            fh.write(json.dumps(header) + "\n")
            for record in sorted(records, key=lambda r: r["t_start"]):
                fh.write(json.dumps(record, default=str) + "\n")
        return path


# ---------------------------------------------------------------------------
# process-wide tracer
# ---------------------------------------------------------------------------
_tracer: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is off."""
    return _tracer


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear, with None) the process-wide tracer."""
    global _tracer
    old = _tracer
    _tracer = tracer
    return old


def span(name: str, **attrs):
    """Open a span under the installed tracer (no-op when tracing is off)."""
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return Span(tracer, name, attrs)
