"""Chrome/Perfetto trace-event export for merged federation traces.

Converts the ``trace.jsonl`` a :class:`~repro.obs.session.TelemetrySession`
writes into the Chrome trace-event JSON format (the ``chrome://tracing`` /
`Perfetto <https://ui.perfetto.dev>`_ ``traceEvents`` array).  Each repro
process (server, site-1, ...) becomes one Chrome "process" row and each
thread within it one "thread" row, so the clock-aligned merged timeline —
``round`` on the server enclosing every worker's ``client_task`` /
``local_train`` — renders as nested bars exactly as recorded.

Timestamps are the run-relative seconds from the trace (already shifted
onto the server's timeline by the per-process clock offsets) converted to
the microseconds Chrome expects.  Spans a crashed worker never closed
(``t_end: null``, status ``aborted``) are emitted as zero-duration events
flagged ``status: aborted`` so they stay visible in the viewer.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["to_chrome_trace", "export_chrome_trace"]


def _stable_ids(records: list[dict]) -> tuple[dict[str, int], dict[tuple, int]]:
    """Map process names -> pid and (process, thread) -> tid, first-seen order."""
    pids: dict[str, int] = {}
    tids: dict[tuple, int] = {}
    per_process: dict[str, int] = {}
    for record in records:
        process = record.get("process", "server")
        pids.setdefault(process, len(pids) + 1)
        key = (process, record.get("thread", "MainThread"))
        if key not in tids:
            per_process[process] = per_process.get(process, 0) + 1
            tids[key] = per_process[process]
    return pids, tids


def to_chrome_trace(records: list[dict],
                    trace_id: str | None = None) -> dict:
    """Build a Chrome trace-event payload from parsed trace records.

    ``records`` may be the full event stream (header/process markers/footer
    included) or just spans; anything without a ``span_id`` contributes
    metadata only.
    """
    spans = [r for r in records if "span_id" in r]
    header = next((r for r in records if r.get("schema")), None)
    if trace_id is None and header is not None:
        trace_id = header.get("trace_id")

    pids, tids = _stable_ids(spans)
    events: list[dict] = []
    for process, pid in pids.items():
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": process}})
    for (process, thread), tid in tids.items():
        events.append({"name": "thread_name", "ph": "M",
                       "pid": pids[process], "tid": tid,
                       "args": {"name": thread}})

    for record in spans:
        process = record.get("process", "server")
        t_start = record.get("t_start", 0.0)
        t_end = record.get("t_end")
        aborted = t_end is None
        args = dict(record.get("attrs") or {})
        args["span_id"] = record["span_id"]
        if record.get("parent_id"):
            args["parent_id"] = record["parent_id"]
        if aborted or record.get("status") == "aborted":
            args["status"] = "aborted"
        events.append({
            "name": record.get("name", "?"),
            "cat": "aborted" if aborted else "span",
            "ph": "X",
            "ts": round(t_start * 1e6, 1),
            "dur": 0.0 if aborted else round((t_end - t_start) * 1e6, 1),
            "pid": pids[process],
            "tid": tids[(process, record.get("thread", "MainThread"))],
            "args": args,
        })

    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if trace_id:
        payload["otherData"] = {"trace_id": trace_id}
    return payload


def export_chrome_trace(trace_path: str | Path,
                        out_path: str | Path | None = None) -> Path:
    """Convert a ``trace.jsonl`` into ``<stem>.chrome.json`` (or ``out_path``)."""
    from .report import load_trace_events

    trace_path = Path(trace_path)
    payload = to_chrome_trace(load_trace_events(trace_path))
    if out_path is None:
        out_path = trace_path.parent / (trace_path.stem + ".chrome.json")
    out_path = Path(out_path)
    out_path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return out_path
