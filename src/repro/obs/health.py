"""Live federation health: per-client drift diagnostics and anomaly alerts.

The telemetry layer (metrics/trace/profile) records what a run *did*; this
module interprets it while the run is still going.  In a multi-site clinical
deployment the operator's question is "which hospital's updates are hurting
the global model, and is this run on track?" — so at every aggregation the
controller feeds a :class:`HealthMonitor` one snapshot per contributing
client (update norm, cosine alignment with the aggregated global update,
loss/accuracy trajectory, task latency, staleness, payload bytes) and a set
of pluggable :class:`Detector` rules turns the stream into severity-ranked
:class:`Alert` events.

Artifacts and surfaces:

- ``<run_dir>/health.jsonl`` — a schema header line, then one ``round``
  event per federated round (all client diagnostics inline) and one
  ``alert`` event per alert.
- tagged metrics ``health.client.*{client=...}`` and
  ``health.alerts{detector=,severity=}`` in the process-wide registry.
- ``RunStats.alerts`` — every alert, round-tripping through
  ``RunStats.to_dict``/``from_dict``.
- a one-line per-round status summary the controller sends through the
  existing console logger.

Cosine similarities are computed on a deterministic *coordinate sample* of
the flattened update vector (a few thousand coordinates, allocated across
parameters proportionally to size), so the monitor never retains a full
model copy per client — the streaming-aggregation memory property of the
controller is preserved.  Norms and max-abs are exact.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from . import metrics as obs_metrics

__all__ = [
    "Alert", "ClientRoundHealth", "RoundHealth", "Detector",
    "NonFiniteUpdateDetector", "DivergingClientDetector", "StragglerDetector",
    "StalledConvergenceDetector", "WireBlowupDetector",
    "HealthMonitor", "default_detectors", "HEALTH_FILE",
]

HEALTH_FILE = "health.jsonl"
HEALTH_SCHEMA = "repro.obs.health/v1"

SEVERITIES = ("info", "warning", "critical")

# L2-norm buckets for the health.client.update_norm histogram: update norms
# live on a very different scale from the registry's seconds buckets.
NORM_BUCKETS: tuple[float, ...] = tuple(10.0 ** e for e in range(-4, 7))


def _severity_rank(severity: str) -> int:
    return SEVERITIES.index(severity) if severity in SEVERITIES else 0


@dataclass
class Alert:
    """One anomaly verdict emitted by a detector."""

    detector: str
    severity: str  # "info" | "warning" | "critical"
    round_number: int
    message: str
    client: str | None = None
    value: float | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, "
                             f"got {self.severity!r}")

    def to_dict(self) -> dict:
        payload = {"detector": self.detector, "severity": self.severity,
                   "round_number": self.round_number, "message": self.message}
        if self.client is not None:
            payload["client"] = self.client
        if self.value is not None:
            payload["value"] = float(self.value)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Alert":
        return cls(detector=payload["detector"], severity=payload["severity"],
                   round_number=int(payload["round_number"]),
                   message=payload["message"], client=payload.get("client"),
                   value=payload.get("value"))


@dataclass
class ClientRoundHealth:
    """Diagnostics for one client's contribution to one round."""

    client: str
    round_number: int
    # Exact L2 norm / max-abs of the update (client payload minus the
    # broadcast global for WEIGHTS payloads; the payload itself for diffs).
    update_norm: float = 0.0
    update_max_abs: float = 0.0
    # Cosine of the update against the aggregated global update, estimated
    # on the coordinate sample (NaN until aggregation, or when either side
    # has ~zero norm).
    cosine_to_global: float = float("nan")
    # Cosine against the coordinate-wise *median* of all clients' update
    # sketches.  Robust: one dominant outlier drags the aggregate direction
    # with it (making honest clients look misaligned), but not the median.
    cosine_to_peers: float = float("nan")
    train_loss: float = float("nan")
    valid_acc: float = float("nan")
    num_steps: int = 0
    # Client-reported local training wall-clock.
    train_seconds: float = 0.0
    # Server-observed broadcast->result latency (includes the wire, so
    # injected straggler delays are visible here but not in train_seconds).
    latency_seconds: float = 0.0
    # Rounds since this client last contributed (1 = contributed last round).
    staleness: int = 0
    # Raw tensor bytes of the decoded payload.
    payload_bytes: int = 0
    quarantined: bool = False


@dataclass
class RoundHealth:
    """Everything the detectors see about one round."""

    round_number: int
    clients: dict[str, ClientRoundHealth] = field(default_factory=dict)
    participants: list[str] = field(default_factory=list)
    seconds: float = 0.0
    bytes_on_wire: int = 0
    quorum_met: bool = True
    aggregate_update_norm: float = float("nan")
    global_metrics: dict[str, float] = field(default_factory=dict)
    quarantined: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# detectors
# ---------------------------------------------------------------------------
class Detector:
    """One anomaly rule over the round-health stream.

    ``observe`` sees the just-finished round plus the full history of prior
    rounds (oldest first) and returns any alerts it wants to raise.
    Detectors are stateless with respect to the monitor — anything they need
    to remember across rounds they read back out of ``history``.
    """

    name = "detector"

    def observe(self, current: RoundHealth,
                history: list[RoundHealth]) -> list[Alert]:
        raise NotImplementedError


class NonFiniteUpdateDetector(Detector):
    """NaN/Inf or exploding client updates (the classic silent killer).

    Fires ``critical`` when a client's update norm or reported training loss
    is non-finite, or when the update norm exceeds ``max_norm``.
    """

    name = "nan-update"

    def __init__(self, max_norm: float = 1e6) -> None:
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        self.max_norm = max_norm

    def observe(self, current: RoundHealth,
                history: list[RoundHealth]) -> list[Alert]:
        alerts: list[Alert] = []
        for name, c in current.clients.items():
            if not math.isfinite(c.update_norm):
                alerts.append(Alert(
                    detector=self.name, severity="critical",
                    round_number=current.round_number, client=name,
                    value=c.update_norm,
                    message=f"client {name} shipped a non-finite update "
                            f"(norm={c.update_norm})"))
            elif c.update_norm > self.max_norm:
                alerts.append(Alert(
                    detector=self.name, severity="critical",
                    round_number=current.round_number, client=name,
                    value=c.update_norm,
                    message=f"client {name} update norm {c.update_norm:.3g} "
                            f"exceeds {self.max_norm:.3g} (exploding gradients?)"))
            elif math.isinf(c.train_loss):
                # NaN means "not reported" (the meta default), so only an
                # explicit infinity is alert-worthy here; NaN *weights* are
                # caught above via the update norm.
                alerts.append(Alert(
                    detector=self.name, severity="critical",
                    round_number=current.round_number, client=name,
                    value=c.train_loss,
                    message=f"client {name} reported a non-finite train loss"))
        return alerts


class DivergingClientDetector(Detector):
    """A client whose updates persistently point away from the consensus.

    Two signals, evaluated per client per round:

    - **cosine** — alignment of the client's update with the peer
      *consensus* direction (the coordinate-wise median of all clients'
      update sketches; falls back to the aggregated global update when the
      consensus is unavailable) below ``cosine_floor`` — negative means the
      client is actively pulling against the cohort;
    - **norm z-score** — the client's update norm is ``z_threshold`` robust
      standard deviations above the rolling norm distribution of *all*
      clients over the last ``window`` rounds (median/MAD based, so one
      outlier cannot mask itself).

    One bad round is ``warning``; ``persist`` consecutive bad rounds make it
    ``critical`` (which is what drives quarantine).
    """

    name = "diverging-client"

    def __init__(self, cosine_floor: float = 0.0, z_threshold: float = 4.0,
                 window: int = 8, persist: int = 2) -> None:
        if window < 1 or persist < 1:
            raise ValueError("window and persist must be >= 1")
        self.cosine_floor = cosine_floor
        self.z_threshold = z_threshold
        self.window = window
        self.persist = persist

    # ------------------------------------------------------------------
    def _is_suspect(self, c: ClientRoundHealth, norms: list[float]) -> tuple[bool, str, float]:
        cosine = c.cosine_to_peers
        against = "the peer consensus"
        if not math.isfinite(cosine):
            cosine = c.cosine_to_global
            against = "the aggregated update"
        if math.isfinite(cosine) and cosine < self.cosine_floor:
            return True, (f"update cosine {cosine:.3f} to {against} below "
                          f"{self.cosine_floor:.3f}"), cosine
        finite = [n for n in norms if math.isfinite(n)]
        if len(finite) >= 3 and math.isfinite(c.update_norm):
            median = float(np.median(finite))
            mad = float(np.median(np.abs(np.asarray(finite) - median)))
            scale = 1.4826 * mad if mad > 0 else max(abs(median), 1e-12)
            z = (c.update_norm - median) / scale
            if z > self.z_threshold:
                return True, (f"update norm {c.update_norm:.3g} is "
                              f"{z:.1f} robust std-devs above the rolling "
                              f"median {median:.3g}"), z
        return False, "", 0.0

    def observe(self, current: RoundHealth,
                history: list[RoundHealth]) -> list[Alert]:
        recent = history[-(self.window - 1):] if self.window > 1 else []
        norms = [c.update_norm for rh in [*recent, current]
                 for c in rh.clients.values()]
        alerts: list[Alert] = []
        for name, c in current.clients.items():
            suspect, why, value = self._is_suspect(c, norms)
            if not suspect:
                continue
            streak = 1
            for rh in reversed(history):
                prior = rh.clients.get(name)
                if prior is None:
                    break
                was, _, _ = self._is_suspect(
                    prior, [x.update_norm for x in rh.clients.values()])
                if not was:
                    break
                streak += 1
            severity = "critical" if streak >= self.persist else "warning"
            alerts.append(Alert(
                detector=self.name, severity=severity,
                round_number=current.round_number, client=name, value=value,
                message=f"client {name} diverging at round "
                        f"{current.round_number}: {why} "
                        f"({streak} consecutive round(s))"))
        return alerts


class StragglerDetector(Detector):
    """A client whose task latency dominates the round.

    Compares each client's server-observed broadcast-to-result latency with
    the round's median; ``ratio`` times the median (and at least
    ``min_seconds``) is a ``warning``.  Latency — not client-reported
    training time — so slow links and injected transport delays count.
    """

    name = "straggler"

    def __init__(self, ratio: float = 3.0, min_seconds: float = 0.05) -> None:
        if ratio <= 1.0:
            raise ValueError("ratio must be > 1")
        self.ratio = ratio
        self.min_seconds = min_seconds

    def observe(self, current: RoundHealth,
                history: list[RoundHealth]) -> list[Alert]:
        latencies = [c.latency_seconds for c in current.clients.values()
                     if c.latency_seconds > 0]
        if len(latencies) < 2:
            return []
        median = float(np.median(latencies))
        alerts: list[Alert] = []
        for name, c in current.clients.items():
            if c.latency_seconds >= max(self.ratio * median, self.min_seconds) \
                    and c.latency_seconds > median:
                alerts.append(Alert(
                    detector=self.name, severity="warning",
                    round_number=current.round_number, client=name,
                    value=c.latency_seconds,
                    message=f"client {name} took {c.latency_seconds:.2f}s "
                            f"(round median {median:.2f}s) — straggling"))
        return alerts


class StalledConvergenceDetector(Detector):
    """The tracked global metric has stopped improving.

    Fires ``warning`` once the best value of ``metric`` has not improved by
    ``min_delta`` for ``patience`` consecutive rounds (and again every
    ``patience`` rounds while still stalled, so long plateaus stay visible
    without spamming one alert per round).
    """

    name = "stalled-convergence"

    def __init__(self, metric: str = "valid_acc", mode: str = "max",
                 patience: int = 5, min_delta: float = 1e-4) -> None:
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.metric = metric
        self.mode = mode
        self.patience = patience
        self.min_delta = min_delta

    def observe(self, current: RoundHealth,
                history: list[RoundHealth]) -> list[Alert]:
        series = [(rh.round_number, rh.global_metrics[self.metric])
                  for rh in [*history, current]
                  if self.metric in rh.global_metrics]
        if len(series) < self.patience + 1:
            return []
        values = [v for _, v in series]
        # rounds since the running best last improved by min_delta
        best = values[0]
        last_improvement = 0
        for i, value in enumerate(values[1:], start=1):
            improved = value > best + self.min_delta if self.mode == "max" \
                else value < best - self.min_delta
            if improved:
                best = value
                last_improvement = i
        stalled = len(values) - 1 - last_improvement
        if stalled >= self.patience and stalled % self.patience == 0:
            return [Alert(
                detector=self.name, severity="warning",
                round_number=current.round_number, value=best,
                message=f"global {self.metric} has not improved for "
                        f"{stalled} round(s) (best {best:.4g})")]
        return []


class WireBlowupDetector(Detector):
    """Round wire traffic jumping far above the run's steady state.

    Compares this round's delivered bytes with the median of the previous
    rounds (at least ``min_history`` of them); ``ratio`` times the median is
    a ``warning`` — e.g. a delta-compression path silently falling back to
    full broadcasts.
    """

    name = "wire-blowup"

    def __init__(self, ratio: float = 2.5, min_history: int = 2) -> None:
        if ratio <= 1.0:
            raise ValueError("ratio must be > 1")
        self.ratio = ratio
        self.min_history = max(1, min_history)

    def observe(self, current: RoundHealth,
                history: list[RoundHealth]) -> list[Alert]:
        prior = [rh.bytes_on_wire for rh in history if rh.bytes_on_wire > 0]
        if len(prior) < self.min_history or current.bytes_on_wire <= 0:
            return []
        median = float(np.median(prior))
        if current.bytes_on_wire > self.ratio * median:
            return [Alert(
                detector=self.name, severity="warning",
                round_number=current.round_number,
                value=float(current.bytes_on_wire),
                message=f"round {current.round_number} put "
                        f"{current.bytes_on_wire} bytes on the wire, "
                        f"{current.bytes_on_wire / median:.1f}x the prior "
                        f"median ({median:.0f})")]
        return []


def default_detectors() -> list[Detector]:
    """The built-in rule set the simulator arms by default."""
    return [NonFiniteUpdateDetector(), DivergingClientDetector(),
            StragglerDetector(), StalledConvergenceDetector(),
            WireBlowupDetector()]


# ---------------------------------------------------------------------------
# the monitor
# ---------------------------------------------------------------------------
def _jsonable(value):
    """Deep-copy ``value`` into strict JSON: non-finite floats become null."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (float, np.floating)):
        return float(value) if math.isfinite(value) else None
    if isinstance(value, (int, np.integer, str, bool)) or value is None:
        return value
    return str(value)


def _key_seed(key: str, seed: int) -> int:
    digest = hashlib.blake2b(f"{seed}|{key}".encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HealthMonitor:
    """Streaming per-round health evaluation for a federated run.

    Driven by the controller at aggregation time::

        monitor.begin_round(r, participants, reference=global_weights)
        for sender, dxo in ...:
            monitor.record_update(sender, dxo.data, dxo.data_kind, meta=...)
        round_health, alerts = monitor.end_round(record, new_global)

    Parameters
    ----------
    run_dir:
        Where ``health.jsonl`` is appended (``None`` keeps everything
        in memory only).
    detectors:
        Rule set; defaults to :func:`default_detectors`.
    sample_size:
        Total flattened coordinates sampled for cosine estimation,
        allocated across parameters proportionally to their size.
    quarantine_after:
        Quarantine a client after this many *consecutive* rounds with a
        critical ``diverging-client`` alert.  0 (default) disables
        quarantine entirely.
    quarantine_rounds:
        How many rounds a quarantined client sits out before re-admission.
    seed:
        Seeds the deterministic coordinate sample.
    """

    def __init__(self, run_dir: str | Path | None = None,
                 detectors: list[Detector] | None = None,
                 sample_size: int = 4096,
                 quarantine_after: int = 0, quarantine_rounds: int = 2,
                 seed: int = 0) -> None:
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        if quarantine_after < 0 or quarantine_rounds < 1:
            raise ValueError("quarantine_after must be >= 0 and "
                             "quarantine_rounds >= 1")
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.detectors = list(detectors) if detectors is not None \
            else default_detectors()
        self.sample_size = sample_size
        self.quarantine_after = quarantine_after
        self.quarantine_rounds = quarantine_rounds
        self.seed = seed
        self.history: list[RoundHealth] = []
        self.alerts: list[Alert] = []
        self._sample_indices: dict[tuple[str, int], np.ndarray] = {}
        self._current: RoundHealth | None = None
        self._reference: dict[str, np.ndarray] | None = None
        self._sketches: dict[str, np.ndarray] = {}
        self._last_contributed: dict[str, int] = {}
        self._suspect_streak: dict[str, int] = {}
        # client -> first round it is re-admitted at
        self._quarantined_until: dict[str, int] = {}
        self._header_written = False

    # ------------------------------------------------------------------
    @property
    def health_path(self) -> Path | None:
        return self.run_dir / HEALTH_FILE if self.run_dir is not None else None

    def is_quarantined(self, client: str, round_number: int | None = None) -> bool:
        """Is ``client`` excluded from aggregation this round?"""
        if round_number is None:
            round_number = self._current.round_number if self._current else 0
        return round_number < self._quarantined_until.get(client, -1)

    @property
    def quarantined_clients(self) -> list[str]:
        """Clients currently serving a quarantine window, sorted.

        Mid-round this means "excluded from the round in flight"; between
        rounds it is forward-looking ("would be excluded next round").
        """
        if self._current is not None:
            current = self._current.round_number
        elif self.history:
            current = self.history[-1].round_number + 1
        else:
            current = 0
        return sorted(c for c, until in self._quarantined_until.items()
                      if current < until)

    # ------------------------------------------------------------------
    def begin_round(self, round_number: int, participants: list[str],
                    reference: dict[str, np.ndarray]) -> None:
        """Start a round; ``reference`` is the broadcast global model."""
        self._current = RoundHealth(round_number=round_number,
                                    participants=list(participants))
        self._reference = reference
        self._sketches = {}
        self._current.quarantined = [
            c for c in participants if self.is_quarantined(c, round_number)]

    def _indices_for(self, key: str, size: int, quota: int) -> np.ndarray:
        cache_key = (key, size)
        cached = self._sample_indices.get(cache_key)
        if cached is not None and cached.size == min(quota, size):
            return cached
        rng = np.random.default_rng(_key_seed(key, self.seed))
        if quota >= size:
            indices = np.arange(size)
        else:
            indices = np.sort(rng.choice(size, size=quota, replace=False))
        self._sample_indices[cache_key] = indices
        return indices

    def _sample_update(self, update_by_key: dict[str, np.ndarray]) -> np.ndarray:
        """Deterministic coordinate sample of the flattened update vector."""
        sizes = {key: int(np.asarray(v).size) for key, v in update_by_key.items()}
        total = sum(sizes.values()) or 1
        parts: list[np.ndarray] = []
        for key in sorted(update_by_key):
            size = sizes[key]
            if size == 0:
                continue
            quota = max(1, min(size, int(round(self.sample_size * size / total))))
            indices = self._indices_for(key, size, quota)
            flat = np.asarray(update_by_key[key], dtype=np.float64).ravel()
            parts.append(flat[indices])
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    def record_update(self, client: str, data: dict[str, np.ndarray],
                      data_kind: str = "WEIGHTS",
                      meta: dict | None = None,
                      latency_seconds: float = 0.0) -> ClientRoundHealth:
        """Fold one client's decoded payload into the round's diagnostics.

        ``data`` is only read — per-key deltas are transient, so the monitor
        holds no model-sized state per client (just the coordinate sample).
        """
        if self._current is None:
            raise RuntimeError("record_update() outside begin_round()/end_round()")
        meta = meta or {}
        round_number = self._current.round_number
        is_diff = data_kind == "WEIGHT_DIFF"
        reference = self._reference or {}
        norm_sq = 0.0
        max_abs = 0.0
        payload_bytes = 0
        deltas: dict[str, np.ndarray] = {}
        for key, value in data.items():
            array = np.asarray(value)
            payload_bytes += array.nbytes
            if array.dtype.kind not in "fiu" or array.size == 0:
                continue
            if is_diff or key not in reference:
                delta = array.astype(np.float64, copy=False)
            else:
                delta = array.astype(np.float64, copy=False) - \
                    np.asarray(reference[key], dtype=np.float64)
            norm_sq += float(np.dot(delta.ravel(), delta.ravel()))
            if delta.size:
                max_abs = max(max_abs, float(np.max(np.abs(delta))))
            deltas[key] = delta
        self._sketches[client] = self._sample_update(deltas)
        last = self._last_contributed.get(client)
        health = ClientRoundHealth(
            client=client, round_number=round_number,
            update_norm=math.sqrt(norm_sq) if math.isfinite(norm_sq)
            else float("inf"),
            update_max_abs=max_abs,
            train_loss=float(meta.get("train_loss", float("nan"))),
            valid_acc=float(meta.get("valid_acc", float("nan"))),
            num_steps=int(meta.get("NUM_STEPS_CURRENT_ROUND", 0)),
            train_seconds=float(meta.get("train_seconds", 0.0)),
            latency_seconds=float(latency_seconds),
            staleness=(round_number - last) if last is not None else 0,
            payload_bytes=payload_bytes,
            quarantined=self.is_quarantined(client, round_number),
        )
        self._last_contributed[client] = round_number
        self._current.clients[client] = health
        return health

    # ------------------------------------------------------------------
    def end_round(self, *, seconds: float = 0.0, bytes_on_wire: int = 0,
                  quorum_met: bool = True,
                  global_metrics: dict[str, float] | None = None,
                  new_global: dict[str, np.ndarray] | None = None
                  ) -> tuple[RoundHealth, list[Alert]]:
        """Close the round: cosines, detectors, quarantine, artifacts."""
        if self._current is None:
            raise RuntimeError("end_round() without begin_round()")
        current = self._current
        current.seconds = float(seconds)
        current.bytes_on_wire = int(bytes_on_wire)
        current.quorum_met = bool(quorum_met)
        current.global_metrics = dict(global_metrics or {})

        # Aggregated-update sketch: by linearity the sample of (new - ref)
        # is the difference of samples, so one pass over the new global.
        agg_sketch = None
        if new_global is not None and self._reference is not None and quorum_met:
            agg_delta = {}
            for key in new_global:
                if key not in self._reference:
                    continue
                agg_delta[key] = (
                    np.asarray(new_global[key], dtype=np.float64)
                    - np.asarray(self._reference[key], dtype=np.float64))
            agg_sketch = self._sample_update(agg_delta)
            full_sq = sum(float(np.dot(d.ravel(), d.ravel()))
                          for d in agg_delta.values())
            current.aggregate_update_norm = math.sqrt(full_sq)
        agg_norm = float(np.linalg.norm(agg_sketch)) if agg_sketch is not None \
            else 0.0
        for client, health in current.clients.items():
            sketch = self._sketches.get(client)
            if sketch is None or agg_sketch is None or agg_norm <= 1e-12 \
                    or sketch.shape != agg_sketch.shape:
                continue
            norm = float(np.linalg.norm(sketch))
            if norm <= 1e-12:
                continue
            health.cosine_to_global = float(
                np.dot(sketch, agg_sketch) / (norm * agg_norm))

        # Peer-consensus direction: coordinate-wise median of the finite
        # client sketches (modal shape wins when payload layouts differ).
        # Needs no aggregation result, so it exists even under quorum loss.
        by_shape: dict[tuple, list[str]] = {}
        for client, sketch in self._sketches.items():
            if sketch.size and bool(np.isfinite(sketch).all()):
                by_shape.setdefault(sketch.shape, []).append(client)
        members = max(by_shape.values(), key=len) if by_shape else []
        if len(members) >= 2:
            consensus = np.median(
                np.stack([self._sketches[c] for c in members]), axis=0)
            consensus_norm = float(np.linalg.norm(consensus))
            if consensus_norm > 1e-12:
                for client in members:
                    sketch = self._sketches[client]
                    norm = float(np.linalg.norm(sketch))
                    if norm > 1e-12 and client in current.clients:
                        current.clients[client].cosine_to_peers = float(
                            np.dot(sketch, consensus)
                            / (norm * consensus_norm))

        alerts: list[Alert] = []
        for detector in self.detectors:
            try:
                alerts.extend(detector.observe(current, self.history))
            except Exception as error:  # one broken rule must not kill a run
                alerts.append(Alert(
                    detector=detector.name, severity="info",
                    round_number=current.round_number,
                    message=f"detector {detector.name} failed: {error!r}"))
        alerts.extend(self._update_quarantine(current, alerts))
        alerts.sort(key=lambda a: -_severity_rank(a.severity))

        self.alerts.extend(alerts)
        self.history.append(current)
        self._export_round(current, alerts)
        self._record_metrics(current, alerts)
        self._current = None
        self._reference = None
        self._sketches = {}
        return current, alerts

    # ------------------------------------------------------------------
    def _update_quarantine(self, current: RoundHealth,
                           alerts: list[Alert]) -> list[Alert]:
        """Track diverging streaks; quarantine / re-admit clients."""
        extra: list[Alert] = []
        flagged = {a.client for a in alerts
                   if a.detector == DivergingClientDetector.name
                   and a.client is not None}
        for client in current.clients:
            if client in flagged:
                self._suspect_streak[client] = \
                    self._suspect_streak.get(client, 0) + 1
            else:
                self._suspect_streak[client] = 0
        ending = {client for client, until in self._quarantined_until.items()
                  if until == current.round_number + 1}
        if self.quarantine_after > 0:
            for client, streak in self._suspect_streak.items():
                if streak >= self.quarantine_after \
                        and not self.is_quarantined(client,
                                                    current.round_number + 1):
                    until = current.round_number + 1 + self.quarantine_rounds
                    self._quarantined_until[client] = until
                    self._suspect_streak[client] = 0
                    # still diverging at the re-admission boundary: the new
                    # sentence replaces the re-admission notice
                    ending.discard(client)
                    extra.append(Alert(
                        detector="quarantine", severity="critical",
                        round_number=current.round_number, client=client,
                        value=float(self.quarantine_rounds),
                        message=f"client {client} quarantined from "
                                f"aggregation for {self.quarantine_rounds} "
                                f"round(s) after {streak} consecutive "
                                f"diverging round(s)"))
        for client in sorted(ending):
            extra.append(Alert(
                detector="quarantine", severity="info",
                round_number=current.round_number, client=client,
                message=f"client {client} re-admitted to aggregation "
                        f"from round {current.round_number + 1}"))
        return extra

    # ------------------------------------------------------------------
    def _record_metrics(self, current: RoundHealth,
                        alerts: list[Alert]) -> None:
        for client, c in current.clients.items():
            obs_metrics.gauge("health.client.cosine", client=client).set(
                c.cosine_to_global if math.isfinite(c.cosine_to_global)
                else 0.0)
            obs_metrics.gauge("health.client.cosine_peers", client=client).set(
                c.cosine_to_peers if math.isfinite(c.cosine_to_peers)
                else 0.0)
            obs_metrics.histogram("health.client.update_norm",
                                  buckets=NORM_BUCKETS,
                                  client=client).observe(
                c.update_norm if math.isfinite(c.update_norm) else 0.0)
            obs_metrics.gauge("health.client.staleness",
                              client=client).set(c.staleness)
            obs_metrics.histogram("health.client.latency_seconds",
                                  client=client).observe(c.latency_seconds)
        for alert in alerts:
            obs_metrics.counter("health.alerts", detector=alert.detector,
                                severity=alert.severity).inc()

    def _export_round(self, current: RoundHealth, alerts: list[Alert]) -> None:
        if self.health_path is None:
            return
        self.health_path.parent.mkdir(parents=True, exist_ok=True)
        lines: list[str] = []
        if not self._header_written:
            lines.append(json.dumps({"schema": HEALTH_SCHEMA}))
            self._header_written = True
        event = {"event": "round", **asdict(current)}
        lines.append(json.dumps(_jsonable(event)))
        for alert in alerts:
            lines.append(json.dumps({"event": "alert", **alert.to_dict()}))
        with self.health_path.open("a") as fh:
            fh.write("\n".join(lines) + "\n")

    # ------------------------------------------------------------------
    def status_line(self, current: RoundHealth | None = None,
                    alerts: list[Alert] | None = None) -> str:
        """One console line summarizing the (last) round's health."""
        if current is None:
            if not self.history:
                return "health: no rounds observed"
            current = self.history[-1]
        if alerts is None:
            alerts = [a for a in self.alerts
                      if a.round_number == current.round_number]
        n = len(current.clients)
        norms = [c.update_norm for c in current.clients.values()
                 if math.isfinite(c.update_norm)]
        cosines = [c.cosine_to_peers if math.isfinite(c.cosine_to_peers)
                   else c.cosine_to_global for c in current.clients.values()]
        cosines = [v for v in cosines if math.isfinite(v)]
        parts = [f"health r{current.round_number}:",
                 f"{n} update(s)"]
        if norms:
            parts.append(f"norm med {float(np.median(norms)):.3g}")
        if cosines:
            parts.append(f"cos min {min(cosines):.2f}")
        counts = {s: sum(1 for a in alerts if a.severity == s)
                  for s in SEVERITIES}
        if any(counts.values()):
            parts.append("alerts " + "/".join(
                f"{counts[s]} {s}" for s in SEVERITIES if counts[s]))
            worst = alerts[0]
            parts.append(f"[{worst.detector}" +
                         (f": {worst.client}]" if worst.client else "]"))
        else:
            parts.append("ok")
        if current.quarantined:
            parts.append("quarantined: " + ",".join(current.quarantined))
        return " ".join(parts)

    # ------------------------------------------------------------------
    def finalize(self) -> Path | None:
        """Make sure ``health.jsonl`` exists and ends with a summary event.

        Idempotent enough for a ``finally:`` block: the summary is appended
        once per call, so call it when the run is over.
        """
        if self.health_path is None:
            return None
        self.health_path.parent.mkdir(parents=True, exist_ok=True)
        lines: list[str] = []
        if not self._header_written:
            lines.append(json.dumps({"schema": HEALTH_SCHEMA}))
            self._header_written = True
        lines.append(json.dumps(_jsonable({
            "event": "summary",
            "rounds": len(self.history),
            "alerts": self.alerts_by_severity(),
            "quarantined_ever": sorted({c for rh in self.history
                                        for c in rh.quarantined}),
        })))
        with self.health_path.open("a") as fh:
            fh.write("\n".join(lines) + "\n")
        return self.health_path

    # ------------------------------------------------------------------
    def alerts_by_severity(self) -> dict[str, int]:
        counts = {s: 0 for s in SEVERITIES}
        for alert in self.alerts:
            counts[alert.severity] = counts.get(alert.severity, 0) + 1
        return counts
