"""Prometheus/OpenMetrics exporter: a loopback HTTP view of a live run.

Zero new dependencies: :class:`MetricsExporter` runs a stdlib
``http.server`` in a daemon thread, bound to loopback only, serving

- ``/metrics`` — the live :class:`~repro.obs.metrics.MetricsRegistry`
  (plus any extra snapshot sources: the bus's private registry, the wire
  codec's, each worker's latest streamed snapshot) rendered in the
  Prometheus text exposition format, tags mapped to labels;
- ``/healthz`` — a JSON view of the
  :class:`~repro.obs.health.HealthMonitor`'s current state: alert feed,
  per-severity counts, quarantine set, rounds observed.

Fully off by default; arm it with ``SimulatorRunner(metrics_port=...)`` or
``TelemetrySession(exporter=...)``.  Rendering happens per scrape on the
server thread — the run itself pays nothing between scrapes, keeping the
established <3% telemetry overhead budget.

Metric names are sanitized Prometheus-style (``sys.rss_bytes`` becomes
``sys_rss_bytes``); :func:`parse_prometheus_text` is the matching
minimal parser used by the dashboard and the ``live-smoke`` CI gate.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

__all__ = ["MetricsExporter", "render_prometheus", "parse_prometheus_text",
           "sanitize_metric_name", "escape_label_value"]

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>[^\s]+)\s*$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str) -> str:
    """``transport.bytes_delivered`` -> ``transport_bytes_delivered``."""
    name = _NAME_BAD.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name or "_"


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _unescape_label_value(value: str) -> str:
    return (value.replace(r"\n", "\n").replace(r"\"", '"')
            .replace("\\\\", "\\"))


def _label_str(tags: dict, extra: dict | None = None) -> str:
    merged = dict(tags or {})
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(str(k))}="{escape_label_value(v)}"'
        for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshots: list[dict]) -> str:
    """Render ``repro.obs.metrics/v1`` snapshots as Prometheus text.

    Later snapshots win on exact (name, labelset) collisions — sources are
    ordered live-registry-first, so a worker's fresher streamed snapshot
    overrides a stale merge, and the output never carries the duplicate
    series real scrapers reject.
    """
    types: dict[str, str] = {}
    # family -> {labelstr: line(s)}; insertion-ordered for stable output
    series: dict[str, dict[str, list[str]]] = {}

    def put(family: str, kind: str, label_str: str, lines: list[str]) -> None:
        types.setdefault(family, kind)
        series.setdefault(family, {})[label_str] = lines

    for snapshot in snapshots:
        if not isinstance(snapshot, dict):
            continue
        for entry in snapshot.get("counters", []):
            name = sanitize_metric_name(entry["name"])
            labels = _label_str(entry.get("tags"))
            put(name, "counter", labels,
                [f"{name}{labels} {_fmt(entry['value'])}"])
        for entry in snapshot.get("gauges", []):
            name = sanitize_metric_name(entry["name"])
            labels = _label_str(entry.get("tags"))
            put(name, "gauge", labels,
                [f"{name}{labels} {_fmt(entry['value'])}"])
        for entry in snapshot.get("histograms", []):
            name = sanitize_metric_name(entry["name"])
            tags = entry.get("tags") or {}
            lines = []
            cumulative = 0
            bounds = list(entry.get("buckets", []))
            counts = list(entry.get("bucket_counts", []))
            for bound, count in zip(bounds, counts):
                cumulative += int(count)
                lines.append(f"{name}_bucket"
                             f"{_label_str(tags, {'le': _fmt(bound)})} "
                             f"{cumulative}")
            lines.append(f"{name}_bucket{_label_str(tags, {'le': '+Inf'})} "
                         f"{int(entry.get('count', 0))}")
            base = _label_str(tags)
            lines.append(f"{name}_sum{base} {_fmt(entry.get('sum', 0.0))}")
            lines.append(f"{name}_count{base} {int(entry.get('count', 0))}")
            put(name, "histogram", base, lines)

    out: list[str] = []
    for family in sorted(series):
        out.append(f"# TYPE {family} {types[family]}")
        for label_str in sorted(series[family]):
            out.extend(series[family][label_str])
    out.append("")  # trailing newline
    return "\n".join(out)


def parse_prometheus_text(text: str) -> list[tuple[str, dict[str, str], float]]:
    """Minimal parser for the text format :func:`render_prometheus` emits.

    Returns ``(name, labels, value)`` triples, skipping comments.  Raises
    :class:`ValueError` on a malformed sample line — the ``live-smoke`` CI
    gate relies on that to call a scrape "parseable".
    """
    samples: list[tuple[str, dict[str, str], float]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable metrics line: {raw!r}")
        labels = {key: _unescape_label_value(value)
                  for key, value in _LABEL.findall(match.group("labels") or "")}
        samples.append((match.group("name"), labels,
                        float(match.group("value"))))
    return samples


class _Handler(BaseHTTPRequestHandler):
    exporter: "MetricsExporter"  # set on the server class per instance

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path.split("?")[0] in ("/metrics", "/"):
                body = self.exporter.render().encode()
                self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                           body)
            elif self.path.split("?")[0] == "/healthz":
                payload = self.exporter.healthz()
                self._send(200, "application/json",
                           json.dumps(payload, indent=2).encode())
            else:
                self._send(404, "text/plain", b"not found\n")
        except BrokenPipeError:  # pragma: no cover - client hung up
            pass
        except Exception as error:  # never kill the serving thread
            try:
                self._send(500, "text/plain", f"error: {error}\n".encode())
            except Exception:  # pragma: no cover
                pass

    def log_message(self, *args) -> None:  # noqa: D102 - silence stderr
        pass


class MetricsExporter:
    """Loopback HTTP endpoint over live metric snapshots + health state.

    ``sources`` are zero-argument callables returning either one
    ``repro.obs.metrics/v1`` snapshot dict or a list of them (or ``None``);
    they are invoked per scrape, so the endpoint always shows the live
    registry — including gauges a :class:`~repro.obs.sysmon.SysMonitor`
    updated a moment ago and the latest streamed snapshot of every worker
    process.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 sources: list[Callable[[], object]] | None = None,
                 health=None) -> None:
        self.host = host
        self.requested_port = port
        self.health = health
        self._sources: list[Callable[[], object]] = list(sources or [])
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def add_source(self, source: Callable[[], object]) -> None:
        with self._lock:
            self._sources.append(source)

    def snapshots(self) -> list[dict]:
        with self._lock:
            sources = list(self._sources)
        flat: list[dict] = []
        for source in sources:
            try:
                result = source()
            except Exception:
                continue  # a racing teardown must not break a scrape
            if isinstance(result, dict):
                flat.append(result)
            elif isinstance(result, (list, tuple)):
                flat.extend(r for r in result if isinstance(r, dict))
        return flat

    def render(self) -> str:
        return render_prometheus(self.snapshots())

    def healthz(self) -> dict:
        """JSON health view: alerts, severity counts, quarantine set."""
        monitor = self.health
        if monitor is None:
            return {"status": "ok", "health_monitor": False}
        alerts = list(monitor.alerts)
        counts: dict[str, int] = {}
        for alert in alerts:
            counts[alert.severity] = counts.get(alert.severity, 0) + 1
        quarantined = list(monitor.quarantined_clients)
        status = "ok"
        if counts.get("critical") or quarantined:
            status = "critical"
        elif counts.get("warning"):
            status = "warning"
        return {
            "status": status,
            "health_monitor": True,
            "rounds": len(monitor.history),
            "alert_counts": counts,
            "quarantined": quarantined,
            "alerts": [alert.to_dict() for alert in alerts[-100:]],
        }

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsExporter":
        if self._server is not None:
            return self
        server = ThreadingHTTPServer((self.host, self.requested_port),
                                     _Handler)
        server.daemon_threads = True
        server.RequestHandlerClass = type(
            "_BoundHandler", (_Handler,), {"exporter": self})
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever,
                                        name="metrics-exporter", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
