"""Process-wide metrics registry: counters, gauges and histograms.

One registry is the sink for everything the federation measures — transport
traffic, fault injections, round progress, training throughput, benchmark
timings — so every artifact (``metrics.json``, ``BENCH_*.json``) shares one
schema and the run-report CLI can render any of them.

Design goals, in order:

1. **Cheap when disabled.**  A disabled registry hands out shared null
   instruments whose methods are empty; instrumented hot paths (one bus
   delivery, one training step) pay a dict lookup and a no-op call.
2. **Tagged instruments.**  ``registry.counter("transport.faults",
   kind="drop")`` keeps one time series per tag combination, NVFlare/
   Prometheus style.
3. **Fixed-bucket histograms.**  Percentiles are estimated from bucket
   counts by linear interpolation — O(buckets) memory regardless of how
   many observations a run makes, and two histograms merge exactly.

Thread safety: instrument creation and every update take the registry's
lock; the federated simulator updates from the server thread and every
client thread concurrently.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "EXACT_SAMPLE_LIMIT", "get_registry", "set_registry",
    "counter", "gauge", "histogram",
]

# Log-spaced seconds buckets covering ~100 microseconds to ~2 minutes: wide
# enough for per-op kernels and whole federated rounds alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


def _tag_key(tags: dict[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in tags.items()))


class Counter:
    """Monotonically-increasing count (messages, bytes, faults...)."""

    __slots__ = ("name", "tags", "_value", "_lock")

    def __init__(self, name: str, tags: dict[str, str], lock: threading.Lock) -> None:
        self.name = name
        self.tags = tags
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict:
        return {"name": self.name, "tags": dict(self.tags), "value": self._value}


class Gauge:
    """Last-written value (throughput, queue depth, model size...)."""

    __slots__ = ("name", "tags", "_value", "_lock")

    def __init__(self, name: str, tags: dict[str, str], lock: threading.Lock) -> None:
        self.name = name
        self.tags = tags
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict:
        return {"name": self.name, "tags": dict(self.tags), "value": self._value}


# Up to this many observations a histogram also keeps the raw samples, so
# small-sample percentiles are exact (p50 of one observation IS that
# observation) instead of bucket-bound estimates.  Beyond it the reservoir
# is dropped and percentiles fall back to bucket interpolation.
EXACT_SAMPLE_LIMIT = 64


class Histogram:
    """Fixed-bucket distribution with interpolated percentiles.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in an implicit overflow bucket.  Up to
    :data:`EXACT_SAMPLE_LIMIT` observations the raw values are retained and
    percentiles are exact; past that, ``percentile`` assumes a uniform
    spread inside each bucket (the standard Prometheus estimate), clamped
    by the exact observed min/max.
    """

    __slots__ = ("name", "tags", "buckets", "_counts", "_count", "_sum",
                 "_min", "_max", "_samples", "_lock")

    def __init__(self, name: str, tags: dict[str, str], lock: threading.Lock,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.tags = tags
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # + overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._samples: list[float] | None = []
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if self._samples is not None:
                if self._count <= EXACT_SAMPLE_LIMIT:
                    self._samples.append(value)
                else:
                    self._samples = None

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (``p`` in [0, 100]).

        Exact (linear interpolation between order statistics, numpy's
        default method) while the raw-sample reservoir is alive; a bucket
        estimate afterwards.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self._count == 0:
            return 0.0
        if self._samples is not None and len(self._samples) == self._count:
            ordered = sorted(self._samples)
            rank = (p / 100.0) * (len(ordered) - 1)
            low = int(rank)
            high = min(low + 1, len(ordered) - 1)
            return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)
        rank = (p / 100.0) * self._count
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lo = self.buckets[i - 1] if i > 0 else min(self._min, self.buckets[0])
                hi = self.buckets[i] if i < len(self.buckets) else self._max
                lo = max(lo, self._min)
                hi = min(hi, self._max) if hi >= lo else lo
                fraction = (rank - cumulative) / bucket_count
                return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return self._max

    def to_dict(self) -> dict:
        return {
            "name": self.name, "tags": dict(self.tags),
            "count": self._count, "sum": self._sum,
            "min": self.min, "max": self.max, "mean": self.mean,
            "p50": self.percentile(50), "p90": self.percentile(90),
            "p99": self.percentile(99),
            "buckets": list(self.buckets), "bucket_counts": list(self._counts),
        }


class _NullInstrument:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()
    name = ""
    tags: dict[str, str] = {}
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def to_dict(self) -> dict:
        return {}


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named, tagged instruments behind one lock.

    A registry is either *enabled* (real instruments) or *disabled* (every
    accessor returns the shared null instrument).  The process-wide default
    registry starts disabled; a telemetry session installs an enabled one
    for the duration of a run.  Components that must always count — the
    message bus keeps its delivery totals regardless of telemetry — own a
    private always-enabled registry instead.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **tags: object) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = (name, _tag_key(tags))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(
                    key, Counter(name, {k: str(v) for k, v in tags.items()}, self._lock))
        return instrument

    def gauge(self, name: str, **tags: object) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = (name, _tag_key(tags))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(
                    key, Gauge(name, {k: str(v) for k, v in tags.items()}, self._lock))
        return instrument

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  **tags: object) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = (name, _tag_key(tags))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(name, {k: str(v) for k, v in tags.items()},
                                   self._lock, buckets or DEFAULT_BUCKETS))
        return instrument

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's totals into this one.

        Counters add, gauges take the other's value, histograms add bucket
        by bucket (exact — both sides share the fixed bucket layout).  Used
        to fold a message bus's private registry into a run's telemetry
        registry before export.
        """
        if not self.enabled or not other.enabled:
            return
        for key, src in other._counters.items():
            self.counter(src.name, **src.tags).inc(src.value)
        for key, src in other._gauges.items():
            self.gauge(src.name, **src.tags).set(src.value)
        for key, src in other._histograms.items():
            dst = self.histogram(src.name, buckets=src.buckets, **src.tags)
            if dst.buckets != src.buckets:
                raise ValueError(
                    f"cannot merge histogram {src.name!r}: bucket layouts differ")
            with dst._lock:
                for i, c in enumerate(src._counts):
                    dst._counts[i] += c
                dst._count += src._count
                dst._sum += src._sum
                dst._min = min(dst._min, src._min)
                dst._max = max(dst._max, src._max)
                # keep exact percentiles when both reservoirs fit
                if dst._samples is not None and src._samples is not None \
                        and len(dst._samples) + len(src._samples) \
                        <= EXACT_SAMPLE_LIMIT:
                    dst._samples = dst._samples + list(src._samples)
                else:
                    dst._samples = None

    def merge_dict(self, snapshot: dict) -> None:
        """Fold a :meth:`to_dict` snapshot into this registry.

        The cross-process counterpart of :meth:`merge`: a forked client
        worker cannot hand its parent a live registry, so it ships the JSON
        snapshot over the bus (the ``__telemetry__`` message) and the parent
        reconstructs.  Counters add, gauges take the snapshot's value,
        histograms add bucket by bucket — count/sum/min/max survive exactly;
        only the small-sample reservoir is lost, so merged percentiles fall
        back to bucket interpolation.
        """
        if not self.enabled:
            return
        for entry in snapshot.get("counters", []):
            self.counter(entry["name"], **entry.get("tags", {})).inc(entry["value"])
        for entry in snapshot.get("gauges", []):
            self.gauge(entry["name"], **entry.get("tags", {})).set(entry["value"])
        for entry in snapshot.get("histograms", []):
            if not entry.get("count"):
                continue
            buckets = tuple(entry["buckets"])
            dst = self.histogram(entry["name"], buckets=buckets,
                                 **entry.get("tags", {}))
            if dst.buckets != buckets:
                raise ValueError(f"cannot merge histogram {entry['name']!r}: "
                                 "bucket layouts differ")
            with dst._lock:
                for i, c in enumerate(entry["bucket_counts"]):
                    dst._counts[i] += int(c)
                dst._count += int(entry["count"])
                dst._sum += float(entry["sum"])
                dst._min = min(dst._min, float(entry["min"]))
                dst._max = max(dst._max, float(entry["max"]))
                dst._samples = None  # snapshots carry no reservoir

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe snapshot: the ``metrics.json`` schema."""
        with self._lock:
            counters = [c.to_dict() for c in self._counters.values()]
            gauges = [g.to_dict() for g in self._gauges.values()]
        histograms = [h.to_dict() for h in self._histograms.values()]
        return {"schema": "repro.obs.metrics/v1",
                "counters": sorted(counters, key=lambda c: (c["name"], sorted(c["tags"].items()))),
                "gauges": sorted(gauges, key=lambda g: (g["name"], sorted(g["tags"].items()))),
                "histograms": sorted(histograms, key=lambda h: (h["name"], sorted(h["tags"].items())))}

    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path


# ---------------------------------------------------------------------------
# process-wide default registry
# ---------------------------------------------------------------------------
_global_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide registry (disabled until a telemetry session starts)."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide default; returns the old one."""
    global _global_registry
    old = _global_registry
    _global_registry = registry
    return old


def counter(name: str, **tags: object) -> Counter:
    """Shorthand for ``get_registry().counter(...)``."""
    return _global_registry.counter(name, **tags)


def gauge(name: str, **tags: object) -> Gauge:
    """Shorthand for ``get_registry().gauge(...)``."""
    return _global_registry.gauge(name, **tags)


def histogram(name: str, buckets: tuple[float, ...] | None = None,
              **tags: object) -> Histogram:
    """Shorthand for ``get_registry().histogram(...)``."""
    return _global_registry.histogram(name, buckets=buckets, **tags)
