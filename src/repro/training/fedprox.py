"""FedProx proximal regularisation (Li et al., MLSys 2020).

An aggregation-robustness ablation beyond the paper's plain FedAvg: each
client adds ``(mu / 2) * ||w - w_global||²`` to its local loss, pulling
local updates toward the round's global model.  This damps client drift on
heterogeneous (non-IID) shards — exactly the imbalanced-hospital setting of
the paper's Table III.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..autograd import Module, Tensor

__all__ = ["make_proximal_regularizer"]


def make_proximal_regularizer(mu: float,
                              reference: Mapping[str, np.ndarray]
                              ) -> Callable[[Module], Tensor]:
    """Build ``model -> (mu/2)·||w - w_ref||²`` over the shared parameters.

    Parameters named in ``reference`` contribute; any others (e.g. a local
    head kept on-site by an ExcludeVars filter) are unconstrained.
    """
    if mu < 0:
        raise ValueError("mu must be non-negative")
    frozen = {name: np.asarray(value).copy() for name, value in reference.items()}

    def regularizer(model: Module) -> Tensor:
        penalty: Tensor | None = None
        for name, param in model.named_parameters():
            anchor = frozen.get(name)
            if anchor is None:
                continue
            diff = param - Tensor(anchor.astype(param.data.dtype))
            term = (diff * diff).sum()
            penalty = term if penalty is None else penalty + term
        if penalty is None:
            return Tensor(np.zeros(()))
        return penalty * (mu / 2.0)

    return regularizer
