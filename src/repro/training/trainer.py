"""Local training loops for classification and masked-LM objectives.

These loops are shared by every scheme in the paper: the centralized and
standalone baselines call them directly, and the federated learners call
them once per round inside a client.
"""

from __future__ import annotations

import time

import numpy as np

from ..autograd import Adam, Module, clip_grad_norm, functional as F, no_grad
from ..autograd.clip import grad_global_norm
from ..data import IGNORE_INDEX, ClassificationDataset, MlmCollator, SequenceDataset
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .metrics import EpochMetrics, MetricAverager, top1_accuracy

__all__ = ["TrainConfig", "train_classifier", "evaluate_classifier",
           "train_mlm", "evaluate_mlm"]


class TrainConfig:
    """Hyperparameters of a local training run (paper Table I defaults).

    ``class_weights`` enables cost-sensitive training for the imbalanced ADR
    task; ``early_stopping_patience`` stops after that many epochs without
    validation-accuracy improvement and restores the best weights.
    """

    def __init__(self, epochs: int = 10, batch_size: int = 32, lr: float = 1e-2,
                 max_grad_norm: float | None = 1.0, seed: int = 0,
                 log_every: int = 0, class_weights: np.ndarray | None = None,
                 early_stopping_patience: int | None = None) -> None:
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if early_stopping_patience is not None and early_stopping_patience <= 0:
            raise ValueError("early_stopping_patience must be positive")
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.max_grad_norm = max_grad_norm
        self.seed = seed
        self.log_every = log_every
        self.class_weights = class_weights
        self.early_stopping_patience = early_stopping_patience


# Gradient norms live on a very different scale from the registry's default
# seconds buckets.
_GRAD_NORM_BUCKETS: tuple[float, ...] = tuple(10.0 ** e for e in range(-4, 7))


def _step(model: Module, optimizer: Adam, loss, max_grad_norm: float | None) -> float:
    """One optimizer step; returns the pre-clipping global gradient norm.

    When clipping is off the norm is only computed while a telemetry
    registry is armed — the extra full-gradient reduction must not tax
    un-instrumented runs.
    """
    model.zero_grad()
    loss.backward()
    if max_grad_norm is not None:
        norm = clip_grad_norm(model.parameters(), max_grad_norm)
    elif obs_metrics.get_registry().enabled:
        norm = grad_global_norm(model.parameters())
    else:
        norm = 0.0
    optimizer.step()
    return norm


def train_classifier(model: Module, dataset: ClassificationDataset,
                     config: TrainConfig,
                     valid: ClassificationDataset | None = None,
                     optimizer: Adam | None = None,
                     regularizer=None) -> list[EpochMetrics]:
    """Train a classifier; returns per-epoch metrics.

    ``regularizer`` is an optional ``model -> Tensor`` penalty added to every
    batch loss (used for the FedProx proximal term in federated learners).
    """
    optimizer = optimizer or Adam(model.parameters(), lr=config.lr)
    rng = np.random.default_rng(config.seed)
    history: list[EpochMetrics] = []
    best_acc: float | None = None
    best_state = None
    stale_epochs = 0
    step_hist = obs_metrics.histogram("train.step_seconds", objective="classifier")
    token_counter = obs_metrics.counter("train.tokens", objective="classifier")
    grad_hist = obs_metrics.histogram("train.grad_norm",
                                      buckets=_GRAD_NORM_BUCKETS,
                                      objective="classifier")
    nonfinite_counter = obs_metrics.counter("train.nonfinite_steps",
                                            objective="classifier")
    for epoch in range(config.epochs):
        started = time.perf_counter()
        model.train()
        averager = MetricAverager()
        tokens = 0
        with obs_trace.span("local_train", objective="classifier", epoch=epoch):
            for ids, mask, labels in dataset.iter_batches(config.batch_size,
                                                          shuffle=True, rng=rng):
                step_started = time.perf_counter()
                with obs_trace.span("step"):
                    logits = model(ids, attention_mask=mask)
                    loss = F.cross_entropy(logits, labels,
                                           class_weights=config.class_weights)
                    if regularizer is not None:
                        loss = loss + regularizer(model)
                    grad_norm = _step(model, optimizer, loss, config.max_grad_norm)
                step_hist.observe(time.perf_counter() - step_started)
                grad_hist.observe(grad_norm)
                tokens += int(ids.size)
                loss_value = loss.item()
                if not np.isfinite(loss_value) or not np.isfinite(grad_norm):
                    nonfinite_counter.inc()
                averager.update(loss_value, weight=len(labels))
        elapsed = time.perf_counter() - started
        token_counter.inc(tokens)
        if elapsed > 0:
            obs_metrics.gauge("train.tokens_per_sec",
                              objective="classifier").set(tokens / elapsed)
        obs_metrics.gauge("train.loss", objective="classifier").set(averager.average)
        metrics = EpochMetrics(epoch=epoch, train_loss=averager.average,
                               seconds=elapsed)
        if valid is not None and len(valid):
            metrics.valid_acc, metrics.valid_loss = evaluate_classifier(model, valid,
                                                                        config.batch_size)
        history.append(metrics)
        if config.early_stopping_patience is not None and metrics.valid_acc is not None:
            if best_acc is None or metrics.valid_acc > best_acc:
                best_acc = metrics.valid_acc
                best_state = model.state_dict()
                stale_epochs = 0
            else:
                stale_epochs += 1
                if stale_epochs >= config.early_stopping_patience:
                    break
    if best_state is not None:
        model.load_state_dict(best_state)
    return history


def evaluate_classifier(model: Module, dataset: ClassificationDataset,
                        batch_size: int = 64) -> tuple[float, float]:
    """Return ``(top1_accuracy, mean_loss)`` on a dataset."""
    model.eval()
    accuracy = MetricAverager()
    loss_avg = MetricAverager()
    with no_grad():
        for ids, mask, labels in dataset.iter_batches(batch_size):
            logits = model(ids, attention_mask=mask)
            loss = F.cross_entropy(logits, labels)
            accuracy.update(top1_accuracy(logits.data, labels), weight=len(labels))
            loss_avg.update(loss.item(), weight=len(labels))
    model.train()
    return accuracy.average, loss_avg.average


def train_mlm(model: Module, dataset: SequenceDataset, collator: MlmCollator,
              config: TrainConfig, valid: SequenceDataset | None = None,
              optimizer: Adam | None = None) -> list[EpochMetrics]:
    """Masked-LM pretraining; ``train_loss`` holds the MLM loss (Fig. 2)."""
    optimizer = optimizer or Adam(model.parameters(), lr=config.lr)
    rng = np.random.default_rng(config.seed)
    history: list[EpochMetrics] = []
    step_hist = obs_metrics.histogram("train.step_seconds", objective="mlm")
    token_counter = obs_metrics.counter("train.tokens", objective="mlm")
    grad_hist = obs_metrics.histogram("train.grad_norm",
                                      buckets=_GRAD_NORM_BUCKETS,
                                      objective="mlm")
    nonfinite_counter = obs_metrics.counter("train.nonfinite_steps",
                                            objective="mlm")
    for epoch in range(config.epochs):
        started = time.perf_counter()
        model.train()
        averager = MetricAverager()
        tokens = 0
        with obs_trace.span("local_train", objective="mlm", epoch=epoch):
            for ids, mask in dataset.iter_batches(config.batch_size, shuffle=True, rng=rng):
                example = collator(ids, mask)
                n_targets = int((example.labels != IGNORE_INDEX).sum())
                if n_targets == 0:
                    continue  # tiny batch where masking selected nothing
                step_started = time.perf_counter()
                with obs_trace.span("step"):
                    logits = model(example.input_ids,
                                   attention_mask=example.attention_mask)
                    # fused cross_entropy flattens (batch, seq, vocab) internally
                    loss = F.cross_entropy(logits, example.labels.reshape(-1),
                                           ignore_index=IGNORE_INDEX)
                    grad_norm = _step(model, optimizer, loss, config.max_grad_norm)
                step_hist.observe(time.perf_counter() - step_started)
                grad_hist.observe(grad_norm)
                tokens += int(ids.size)
                loss_value = loss.item()
                if not np.isfinite(loss_value) or not np.isfinite(grad_norm):
                    nonfinite_counter.inc()
                averager.update(loss_value, weight=n_targets)
        elapsed = time.perf_counter() - started
        token_counter.inc(tokens)
        if elapsed > 0:
            obs_metrics.gauge("train.tokens_per_sec",
                              objective="mlm").set(tokens / elapsed)
        obs_metrics.gauge("train.loss", objective="mlm").set(averager.average)
        metrics = EpochMetrics(epoch=epoch, train_loss=averager.average,
                               seconds=elapsed)
        if valid is not None and len(valid):
            metrics.valid_loss = evaluate_mlm(model, valid, collator, config.batch_size)
        history.append(metrics)
    return history


def evaluate_mlm(model: Module, dataset: SequenceDataset, collator: MlmCollator,
                 batch_size: int = 64) -> float:
    """Mean MLM loss over a held-out set."""
    model.eval()
    averager = MetricAverager()
    with no_grad():
        for ids, mask in dataset.iter_batches(batch_size):
            example = collator(ids, mask)
            n_targets = int((example.labels != IGNORE_INDEX).sum())
            if n_targets == 0:
                continue
            logits = model(example.input_ids, attention_mask=example.attention_mask)
            loss = F.cross_entropy(logits, example.labels.reshape(-1),
                                   ignore_index=IGNORE_INDEX)
            averager.update(loss.item(), weight=n_targets)
    model.train()
    return averager.average
