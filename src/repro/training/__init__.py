"""``repro.training`` — learners, loops, metrics and the three schemes."""

from .classification import ClinicalClassificationLearner
from .fedprox import make_proximal_regularizer
from .metrics import (
    EpochMetrics,
    brier_score,
    expected_calibration_error,
    MetricAverager,
    confusion_matrix,
    precision_recall_f1,
    roc_auc,
    top1_accuracy,
)
from .mlm_learner import MlmPretrainLearner
from .schemes import (
    FederatedResult,
    SchemeResult,
    StandaloneResult,
    run_centralized,
    run_centralized_mlm,
    run_federated,
    run_federated_mlm,
    run_standalone,
)
from .trainer import (
    TrainConfig,
    evaluate_classifier,
    evaluate_mlm,
    train_classifier,
    train_mlm,
)

__all__ = [
    "top1_accuracy", "confusion_matrix", "precision_recall_f1", "roc_auc",
    "brier_score", "expected_calibration_error",
    "make_proximal_regularizer",
    "MetricAverager", "EpochMetrics",
    "TrainConfig", "train_classifier", "evaluate_classifier",
    "train_mlm", "evaluate_mlm",
    "ClinicalClassificationLearner", "MlmPretrainLearner",
    "SchemeResult", "StandaloneResult", "FederatedResult",
    "run_centralized", "run_standalone", "run_federated",
    "run_centralized_mlm", "run_federated_mlm",
]
