"""Evaluation metrics: top-1 accuracy (the paper's Table III metric) & friends."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["top1_accuracy", "confusion_matrix", "precision_recall_f1",
           "roc_auc", "brier_score", "expected_calibration_error",
           "MetricAverager", "EpochMetrics"]


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the label."""
    logits = np.asarray(logits)
    labels = np.asarray(labels).reshape(-1)
    if logits.shape[0] != labels.shape[0]:
        raise ValueError("logits/labels batch mismatch")
    if logits.shape[0] == 0:
        return 0.0
    predictions = logits.argmax(axis=-1)
    return float((predictions == labels).mean())


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """``(num_classes, num_classes)`` matrix, rows = true, cols = predicted."""
    predictions = np.asarray(predictions, dtype=np.int64).reshape(-1)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def precision_recall_f1(predictions: np.ndarray, labels: np.ndarray,
                        positive_class: int = 1) -> tuple[float, float, float]:
    """Binary precision/recall/F1 for the given positive class."""
    predictions = np.asarray(predictions).reshape(-1) == positive_class
    labels = np.asarray(labels).reshape(-1) == positive_class
    tp = float(np.sum(predictions & labels))
    fp = float(np.sum(predictions & ~labels))
    fn = float(np.sum(~predictions & labels))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) formula.

    ``scores`` are continuous positive-class scores (e.g. logit or
    probability of class 1); ties get the average rank.  Returns 0.5 when a
    class is absent (no ranking information).
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels).reshape(-1).astype(bool)
    if scores.shape != labels.shape:
        raise ValueError("scores/labels length mismatch")
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, scores.size + 1)
    # average ranks over ties
    sorted_scores = scores[order]
    start = 0
    for stop in range(1, scores.size + 1):
        if stop == scores.size or sorted_scores[stop] != sorted_scores[start]:
            ranks[order[start:stop]] = 0.5 * (start + 1 + stop)
            start = stop
    rank_sum = ranks[labels].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


class MetricAverager:
    """Weighted running average (for per-batch losses with ragged batches)."""

    def __init__(self) -> None:
        self._total = 0.0
        self._weight = 0.0

    def update(self, value: float, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._total += value * weight
        self._weight += weight

    @property
    def average(self) -> float:
        return self._total / self._weight if self._weight else 0.0

    @property
    def count(self) -> float:
        return self._weight


@dataclass
class EpochMetrics:
    """Summary of one training epoch."""

    epoch: int
    train_loss: float
    valid_acc: float | None = None
    valid_loss: float | None = None
    seconds: float = 0.0


def brier_score(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean squared error between positive-class probability and outcome.

    The standard clinical calibration summary (lower is better; 0.25 is the
    score of always predicting 0.5).
    """
    probabilities = np.asarray(probabilities, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if probabilities.shape != labels.shape:
        raise ValueError("probabilities/labels length mismatch")
    if probabilities.size == 0:
        return 0.0
    if probabilities.min() < 0 or probabilities.max() > 1:
        raise ValueError("probabilities must lie in [0, 1]")
    return float(np.mean((probabilities - labels) ** 2))


def expected_calibration_error(probabilities: np.ndarray, labels: np.ndarray,
                               n_bins: int = 10) -> float:
    """ECE: |accuracy − confidence| averaged over equal-width probability bins.

    Measures whether "p = 0.8" events actually happen 80% of the time — the
    property a clinical risk model must have before its scores are clinically
    actionable.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    probabilities = np.asarray(probabilities, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if probabilities.shape != labels.shape:
        raise ValueError("probabilities/labels length mismatch")
    if probabilities.size == 0:
        return 0.0
    bins = np.clip((probabilities * n_bins).astype(int), 0, n_bins - 1)
    total = probabilities.size
    ece = 0.0
    for b in range(n_bins):
        in_bin = bins == b
        count = int(in_bin.sum())
        if count == 0:
            continue
        confidence = probabilities[in_bin].mean()
        accuracy = labels[in_bin].mean()
        ece += (count / total) * abs(accuracy - confidence)
    return float(ece)
