"""The paper's three training schemes: centralized, standalone, federated.

- *Centralized*: one model trained on all pooled data (upper bound).
- *Standalone*: each site trains alone on its own shard; the reported score
  is the mean over sites (lower bound — small local datasets).
- *FL*: NVFlare-style ScatterAndGather over the same shards.

Each scheme evaluates on the same held-out validation split, so Table III
comparisons are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..autograd import Module
from ..data import ClassificationDataset, MlmCollator, SequenceDataset
from ..flare import FLJob, SimulationResult, SimulatorRunner
from .classification import ClinicalClassificationLearner
from .metrics import EpochMetrics
from .mlm_learner import MlmPretrainLearner
from .trainer import TrainConfig, evaluate_classifier, evaluate_mlm, train_classifier, train_mlm

__all__ = ["SchemeResult", "StandaloneResult", "FederatedResult",
           "run_centralized", "run_standalone", "run_federated",
           "run_centralized_mlm", "run_federated_mlm"]

ModelFactory = Callable[[], Module]


@dataclass
class SchemeResult:
    """Outcome of a single-model training scheme."""

    final_acc: float
    best_acc: float
    history: list[EpochMetrics] = field(default_factory=list)


@dataclass
class StandaloneResult:
    """Per-site standalone outcomes."""

    site_accs: dict[str, float]

    @property
    def mean_acc(self) -> float:
        return float(np.mean(list(self.site_accs.values()))) if self.site_accs else 0.0

    @property
    def best_acc(self) -> float:
        return max(self.site_accs.values()) if self.site_accs else 0.0


@dataclass
class FederatedResult:
    """Federated run outcome: accuracy plus the full simulation result."""

    final_acc: float
    best_acc: float
    simulation: SimulationResult


# ---------------------------------------------------------------------------
# classification schemes
# ---------------------------------------------------------------------------
def run_centralized(model_factory: ModelFactory, train: ClassificationDataset,
                    valid: ClassificationDataset, epochs: int = 10,
                    batch_size: int = 32, lr: float = 1e-2,
                    seed: int = 0, class_weights=None) -> SchemeResult:
    """Upper-bound scheme: pooled training."""
    model = model_factory()
    config = TrainConfig(epochs=epochs, batch_size=batch_size, lr=lr, seed=seed,
                         class_weights=class_weights)
    history = train_classifier(model, train, config, valid=valid)
    accs = [m.valid_acc for m in history if m.valid_acc is not None]
    final_acc, _ = evaluate_classifier(model, valid, batch_size)
    return SchemeResult(final_acc=final_acc,
                        best_acc=max(accs + [final_acc]),
                        history=history)


def run_standalone(model_factory: ModelFactory,
                   shards: dict[str, ClassificationDataset],
                   valid: ClassificationDataset, epochs: int = 10,
                   batch_size: int = 32, lr: float = 1e-2,
                   seed: int = 0, class_weights=None) -> StandaloneResult:
    """Lower-bound scheme: every site trains only on its own shard."""
    site_accs: dict[str, float] = {}
    for index, (site, shard) in enumerate(sorted(shards.items())):
        model = model_factory()
        config = TrainConfig(epochs=epochs, batch_size=batch_size, lr=lr,
                             seed=seed + index, class_weights=class_weights)
        train_classifier(model, shard, config)
        accuracy, _ = evaluate_classifier(model, valid, batch_size)
        site_accs[site] = accuracy
    return StandaloneResult(site_accs=site_accs)


def run_federated(model_factory: ModelFactory,
                  shards: dict[str, ClassificationDataset],
                  valid: ClassificationDataset, num_rounds: int = 10,
                  local_epochs: int = 10, batch_size: int = 32, lr: float = 1e-2,
                  seed: int = 0, job_name: str = "clinical-fl",
                  threads: bool = True, run_dir=None,
                  task_result_filters=None, class_weights=None,
                  fedprox_mu: float = 0.0,
                  transport: str | None = None) -> FederatedResult:
    """The paper's FL scheme: ScatterAndGather over the site shards."""
    site_names = sorted(shards)

    eval_model = model_factory()

    def evaluator(weights: dict[str, np.ndarray]) -> dict[str, float]:
        eval_model.load_state_dict({k: np.asarray(v) for k, v in weights.items()},
                                   strict=False)
        accuracy, loss = evaluate_classifier(eval_model, valid, batch_size)
        return {"valid_acc": accuracy, "valid_loss": loss}

    def learner_factory(client_name: str) -> ClinicalClassificationLearner:
        shard = shards[client_name]
        return ClinicalClassificationLearner(
            site_name=client_name, model_factory=model_factory,
            train_data=shard, valid_data=valid,
            local_epochs=local_epochs, batch_size=batch_size, lr=lr,
            seed=seed + hash(client_name) % 1000,
            class_weights=class_weights, fedprox_mu=fedprox_mu)

    job = FLJob(name=job_name,
                initial_weights=model_factory().state_dict(),
                learner_factory=learner_factory,
                num_rounds=num_rounds,
                evaluator=evaluator,
                task_result_filters=list(task_result_filters or []))
    runner = SimulatorRunner(job, n_clients=len(site_names), seed=seed,
                             threads=threads, run_dir=run_dir,
                             transport=transport)
    simulation = runner.run()
    history = simulation.stats.global_metric_history("valid_acc")
    return FederatedResult(final_acc=history[-1] if history else 0.0,
                           best_acc=max(history) if history else 0.0,
                           simulation=simulation)


# ---------------------------------------------------------------------------
# MLM pretraining schemes (Fig. 2)
# ---------------------------------------------------------------------------
def run_centralized_mlm(model_factory: ModelFactory, train: SequenceDataset,
                        valid: SequenceDataset, collator: MlmCollator,
                        epochs: int = 10, batch_size: int = 32, lr: float = 1e-3,
                        seed: int = 0) -> list[EpochMetrics]:
    """Centralized MLM pretraining; returns the per-epoch loss history."""
    model = model_factory()
    config = TrainConfig(epochs=epochs, batch_size=batch_size, lr=lr, seed=seed)
    return train_mlm(model, train, collator, config, valid=valid)


def run_federated_mlm(model_factory: ModelFactory,
                      shards: dict[str, SequenceDataset],
                      valid: SequenceDataset, collator: MlmCollator,
                      num_rounds: int = 10, local_epochs: int = 1,
                      batch_size: int = 32, lr: float = 1e-3, seed: int = 0,
                      job_name: str = "mlm-fl", threads: bool = True,
                      transport: str | None = None
                      ) -> tuple[list[float], SimulationResult]:
    """Federated MLM pretraining; returns per-round global MLM loss."""
    eval_model = model_factory()

    def evaluator(weights: dict[str, np.ndarray]) -> dict[str, float]:
        eval_model.load_state_dict({k: np.asarray(v) for k, v in weights.items()},
                                   strict=False)
        return {"mlm_loss": evaluate_mlm(eval_model, valid, collator, batch_size)}

    def learner_factory(client_name: str) -> MlmPretrainLearner:
        return MlmPretrainLearner(
            site_name=client_name, model_factory=model_factory,
            train_data=shards[client_name], collator=collator,
            local_epochs=local_epochs, batch_size=batch_size, lr=lr,
            seed=seed + hash(client_name) % 1000)

    job = FLJob(name=job_name,
                initial_weights=model_factory().state_dict(),
                learner_factory=learner_factory,
                num_rounds=num_rounds,
                evaluator=evaluator)
    runner = SimulatorRunner(job, n_clients=len(shards), seed=seed,
                             threads=threads, transport=transport)
    simulation = runner.run()
    return simulation.stats.global_metric_history("mlm_loss"), simulation
