"""The client-side classification learner (the paper's ``CiBertLearner``).

Each federated round: load the incoming global weights, run the configured
local epochs of Adam on the site's shard, log per-epoch lines in the Fig. 3
format, and return the updated weights with sample-count metadata.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..autograd import Adam, Module
from ..data import ClassificationDataset
from ..flare import DXO, DataKind, FLContext, Learner, MetaKey
from .trainer import TrainConfig, evaluate_classifier, train_classifier

__all__ = ["ClinicalClassificationLearner"]

ModelFactory = Callable[[], Module]


class ClinicalClassificationLearner(Learner):
    """Binary ADR classification on one site's local data."""

    def __init__(self, site_name: str, model_factory: ModelFactory,
                 train_data: ClassificationDataset,
                 valid_data: ClassificationDataset | None,
                 local_epochs: int = 10, batch_size: int = 32, lr: float = 1e-2,
                 seed: int = 0, send_diff: bool = False,
                 fedprox_mu: float = 0.0,
                 class_weights=None) -> None:
        super().__init__(name="CiBertLearner")
        if len(train_data) == 0:
            raise ValueError(f"{site_name}: empty training shard")
        self.site_name = site_name
        self.model_factory = model_factory
        self.train_data = train_data
        self.valid_data = valid_data
        self.local_epochs = local_epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.send_diff = send_diff
        if fedprox_mu < 0:
            raise ValueError("fedprox_mu must be non-negative")
        self.fedprox_mu = fedprox_mu
        self.class_weights = class_weights
        self.model: Module | None = None
        self.epoch_seconds: list[float] = []

    # ------------------------------------------------------------------
    def initialize(self, fl_ctx: FLContext) -> None:
        self.model = self.model_factory()

    def _require_model(self) -> Module:
        if self.model is None:
            raise RuntimeError("learner used before initialize()")
        return self.model

    # ------------------------------------------------------------------
    def train(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        model = self._require_model()
        incoming = {key: np.asarray(value) for key, value in dxo.data.items()}
        model.load_state_dict(incoming, strict=False)
        round_number = fl_ctx.get_prop("current_round",
                                       fl_ctx.get_prop("__round_number__", 0))

        config = TrainConfig(epochs=1, batch_size=self.batch_size, lr=self.lr,
                             seed=self.seed + 1000 * int(round_number),
                             class_weights=self.class_weights)
        optimizer = Adam(model.parameters(), lr=self.lr)
        regularizer = None
        if self.fedprox_mu > 0:
            from .fedprox import make_proximal_regularizer

            regularizer = make_proximal_regularizer(self.fedprox_mu, incoming)
        last_loss = float("nan")
        valid_acc = float("nan")
        for epoch in range(self.local_epochs):
            started = time.perf_counter()
            history = train_classifier(model, self.train_data, config,
                                       optimizer=optimizer,
                                       regularizer=regularizer)
            last_loss = history[-1].train_loss
            if self.valid_data is not None and len(self.valid_data):
                valid_acc, _ = evaluate_classifier(model, self.valid_data,
                                                   self.batch_size)
            self.epoch_seconds.append(time.perf_counter() - started)
            self.log_info(
                "Local epoch %s: %d/%d (lr=%s), train_loss=%.3f, valid_acc=%.3f",
                self.site_name, epoch + 1, self.local_epochs, self.lr,
                last_loss, valid_acc)
        if self.epoch_seconds:
            self.log_info("Training cost: %.1f sec/local epoch",
                          sum(self.epoch_seconds) / len(self.epoch_seconds))

        updated = model.state_dict()
        if self.send_diff:
            payload = {key: np.asarray(updated[key]) - incoming[key]
                       for key in updated if key in incoming}
            kind = DataKind.WEIGHT_DIFF
        else:
            payload = {key: np.asarray(value) for key, value in updated.items()}
            kind = DataKind.WEIGHTS
        mean_epoch_seconds = (sum(self.epoch_seconds) / len(self.epoch_seconds)
                              if self.epoch_seconds else float("nan"))
        meta = {
            MetaKey.NUM_STEPS_CURRENT_ROUND: len(self.train_data) * self.local_epochs,
            "train_loss": last_loss,
            "valid_acc": valid_acc,
            "site": self.site_name,
            # local-training throughput: the dominant term of federated
            # round wall-clock time, surfaced so the server can spot slow
            # sites from the aggregation logs alone
            "seconds_per_epoch": mean_epoch_seconds,
            "samples_per_second": len(self.train_data) / mean_epoch_seconds
            if mean_epoch_seconds > 0 else float("nan"),
        }
        return DXO(data_kind=kind, data=payload, meta=meta)

    # ------------------------------------------------------------------
    def validate(self, dxo: DXO, fl_ctx: FLContext) -> dict[str, float]:
        model = self._require_model()
        model.load_state_dict({key: np.asarray(value) for key, value in dxo.data.items()},
                              strict=False)
        data = self.valid_data if self.valid_data is not None and len(self.valid_data) \
            else self.train_data
        accuracy, loss = evaluate_classifier(model, data, self.batch_size)
        return {"valid_acc": accuracy, "valid_loss": loss}
