"""The client-side masked-LM learner (BERT federated pretraining, Fig. 2)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..autograd import Adam, Module
from ..data import MlmCollator, SequenceDataset
from ..flare import DXO, DataKind, FLContext, Learner, MetaKey
from .trainer import TrainConfig, evaluate_mlm, train_mlm

__all__ = ["MlmPretrainLearner"]

ModelFactory = Callable[[], Module]


class MlmPretrainLearner(Learner):
    """Federated MLM pretraining on one site's unlabeled sequences."""

    def __init__(self, site_name: str, model_factory: ModelFactory,
                 train_data: SequenceDataset, collator: MlmCollator,
                 valid_data: SequenceDataset | None = None,
                 local_epochs: int = 1, batch_size: int = 32, lr: float = 1e-3,
                 seed: int = 0) -> None:
        super().__init__(name="MlmPretrainLearner")
        if len(train_data) == 0:
            raise ValueError(f"{site_name}: empty pretraining shard")
        self.site_name = site_name
        self.model_factory = model_factory
        self.train_data = train_data
        self.valid_data = valid_data
        self.collator = collator
        self.local_epochs = local_epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.model: Module | None = None

    def initialize(self, fl_ctx: FLContext) -> None:
        self.model = self.model_factory()

    def train(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        if self.model is None:
            raise RuntimeError("learner used before initialize()")
        self.model.load_state_dict(
            {key: np.asarray(value) for key, value in dxo.data.items()}, strict=False)
        round_number = int(fl_ctx.get_prop("current_round", 0))
        config = TrainConfig(epochs=self.local_epochs, batch_size=self.batch_size,
                             lr=self.lr, seed=self.seed + 1000 * round_number)
        optimizer = Adam(self.model.parameters(), lr=self.lr)
        history = train_mlm(self.model, self.train_data, self.collator, config,
                            optimizer=optimizer)
        mlm_loss = history[-1].train_loss
        epoch_seconds = sum(m.seconds for m in history) / len(history)
        self.log_info("Local epoch %s: %d/%d (lr=%s), mlm_loss=%.3f",
                      self.site_name, self.local_epochs, self.local_epochs,
                      self.lr, mlm_loss)
        return DXO(
            data_kind=DataKind.WEIGHTS,
            data={key: np.asarray(value) for key, value in self.model.state_dict().items()},
            meta={MetaKey.NUM_STEPS_CURRENT_ROUND: len(self.train_data) * self.local_epochs,
                  "train_loss": mlm_loss, "site": self.site_name,
                  "seconds_per_epoch": epoch_seconds,
                  "samples_per_second": len(self.train_data) / epoch_seconds
                  if epoch_seconds > 0 else float("nan")},
        )

    def validate(self, dxo: DXO, fl_ctx: FLContext) -> dict[str, float]:
        if self.model is None:
            raise RuntimeError("learner used before initialize()")
        self.model.load_state_dict(
            {key: np.asarray(value) for key, value in dxo.data.items()}, strict=False)
        data = self.valid_data if self.valid_data is not None and len(self.valid_data) \
            else self.train_data
        return {"mlm_loss": evaluate_mlm(self.model, data, self.collator, self.batch_size)}
