"""repro — reproduction of "Multi-Site Clinical Federated Learning using
Recursive and Attentive Models and NVFlare" (ICDCS 2023).

Subpackages
-----------
``repro.autograd``
    From-scratch reverse-mode autodiff + optimisers (the PyTorch stand-in).
``repro.nn``
    Neural-network layers (attention, transformer, LSTM, heads).
``repro.models``
    The paper's models: BERT, BERT-mini, LSTM classifier (Table II presets).
``repro.data``
    Synthetic clopidogrel EHR cohort, tokenizer, partitioners, MLM masking.
``repro.flare``
    The NVFlare-style federated framework: provisioning, secure transport,
    ScatterAndGather, aggregation, filters, simulator.
``repro.training``
    Learners, training loops and the centralized/standalone/FL schemes.
``repro.experiments``
    Reproductions of Table III, Fig. 2 and Fig. 3.
``repro.obs``
    Federation-wide telemetry: metrics registry, trace spans, op profiler
    and the ``python -m repro.obs report`` CLI.
"""

from . import autograd, data, experiments, flare, models, nn, obs, training

__version__ = "1.0.0"

__all__ = ["autograd", "nn", "models", "data", "flare", "training",
           "experiments", "obs", "__version__"]
