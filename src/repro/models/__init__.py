"""``repro.models`` — the paper's NLP models (Table II) and a factory."""

from .bert import BertForMaskedLM, BertForSequenceClassification, BertModel
from .config import BertConfig, LstmConfig, PRESETS, get_preset
from .lstm import LstmClassifier
from .registry import MODEL_NAMES, build_classifier, build_mlm_model

__all__ = [
    "BertModel", "BertForSequenceClassification", "BertForMaskedLM",
    "LstmClassifier",
    "BertConfig", "LstmConfig", "PRESETS", "get_preset",
    "build_classifier", "build_mlm_model", "MODEL_NAMES",
]
