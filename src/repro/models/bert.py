"""BERT encoder and its task heads (classification, masked LM).

The paper's "attentive" models: BERT (hidden 128, 6 heads, 12 layers) and
BERT-mini (hidden 50, 2 heads, 6 layers), used both for masked-language-model
pretraining (Fig. 2) and for ADR binary classification (Table III).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Tensor, functional as F
from ..nn import (
    ClassificationHead,
    Dropout,
    Embedding,
    LayerNorm,
    MLMHead,
    PositionalEmbedding,
    TransformerEncoder,
    cls_pool,
)
from .config import BertConfig

__all__ = ["BertModel", "BertForSequenceClassification", "BertForMaskedLM"]


class BertModel(Module):
    """Token + position embeddings followed by a transformer encoder stack."""

    def __init__(self, config: BertConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.hidden_dim,
                                         padding_idx=0, rng=rng)
        self.position_embedding = PositionalEmbedding(config.max_seq_len,
                                                      config.hidden_dim, rng=rng)
        self.embed_norm = LayerNorm(config.hidden_dim)
        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.encoder = TransformerEncoder(
            config.num_layers, config.hidden_dim, config.num_heads,
            ffn_dim=config.ffn_dim, dropout=config.dropout, rng=rng)

    def forward(self, input_ids: np.ndarray,
                attention_mask: np.ndarray | None = None) -> Tensor:
        """Encode ``(batch, seq)`` token ids to ``(batch, seq, hidden)`` states."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        # lookup + position add + norm + embedding dropout as one fused node
        embedded = F.embed_layer_norm(
            self.token_embedding.weight, self.position_embedding.weight,
            input_ids, self.embed_norm.weight, self.embed_norm.bias,
            eps=self.embed_norm.eps, dropout_p=self.embed_dropout.p,
            training=self.embed_dropout.training, rng=self.embed_dropout._rng)
        return self.encoder(embedded, attention_mask=attention_mask)


class BertForSequenceClassification(Module):
    """BERT encoder + [CLS] pooling + classification head.

    This is the fine-tuning model of the paper's Table III experiments
    (binary ADR / treatment-failure detection).
    """

    def __init__(self, config: BertConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        self.bert = BertModel(config, rng=rng)
        self.head = ClassificationHead(config.hidden_dim, config.num_classes,
                                       dropout=config.dropout, rng=rng)

    def forward(self, input_ids: np.ndarray,
                attention_mask: np.ndarray | None = None) -> Tensor:
        hidden = self.bert(input_ids, attention_mask=attention_mask)
        return self.head(cls_pool(hidden))

    def load_encoder_weights(self, state: dict) -> int:
        """Copy pretrained encoder weights (``bert.*`` keys) from ``state``.

        Returns the number of parameter tensors loaded; classification-head
        weights are left at their fresh initialisation, matching the standard
        pretrain-then-finetune recipe.
        """
        own = dict(self.named_parameters())
        loaded = 0
        for name, value in state.items():
            target = name if name.startswith("bert.") else f"bert.{name}"
            if target in own and own[target].data.shape == np.asarray(value).shape:
                own[target].data[...] = value
                loaded += 1
        return loaded


class BertForMaskedLM(Module):
    """BERT encoder + tied-weight MLM head (the Fig. 2 pretraining model)."""

    def __init__(self, config: BertConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        self.bert = BertModel(config, rng=rng)
        self.mlm_head = MLMHead(config.hidden_dim, config.vocab_size,
                                tied_embedding=self.bert.token_embedding.weight, rng=rng)

    def forward(self, input_ids: np.ndarray,
                attention_mask: np.ndarray | None = None) -> Tensor:
        """Return ``(batch, seq, vocab)`` logits for masked-token prediction."""
        hidden = self.bert(input_ids, attention_mask=attention_mask)
        return self.mlm_head(hidden)

    def encoder_state_dict(self) -> dict:
        """State dict of just the encoder, for transfer into a classifier."""
        return {name: value for name, value in self.state_dict().items()
                if name.startswith("bert.")}
