"""Model factory keyed by preset name.

Gives the experiment harness a single entry point:
``build_classifier("lstm", vocab_size=...)`` etc., with deterministic
initialisation from a seed.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module
from .bert import BertForMaskedLM, BertForSequenceClassification
from .config import BertConfig, LstmConfig, get_preset
from .lstm import LstmClassifier

__all__ = ["build_classifier", "build_mlm_model", "MODEL_NAMES"]

MODEL_NAMES = ("bert", "bert-mini", "lstm", "bert-tiny", "lstm-tiny")


def build_classifier(name: str, vocab_size: int, seed: int = 0, **overrides) -> Module:
    """Build a sequence classifier for one of the Table II presets."""
    config = get_preset(name, vocab_size, **overrides)
    rng = np.random.default_rng(seed)
    if isinstance(config, BertConfig):
        return BertForSequenceClassification(config, rng=rng)
    if isinstance(config, LstmConfig):
        return LstmClassifier(config, rng=rng)
    raise TypeError(f"unsupported config type {type(config)!r}")


def build_mlm_model(name: str, vocab_size: int, seed: int = 0, **overrides) -> BertForMaskedLM:
    """Build a masked-LM model; only the attentive (BERT) family supports MLM."""
    config = get_preset(name, vocab_size, **overrides)
    if not isinstance(config, BertConfig):
        raise ValueError(f"preset {name!r} is not a BERT-family model; MLM needs one")
    return BertForMaskedLM(config, rng=np.random.default_rng(seed))
