"""Model configurations and the Table II presets.

Table II of the paper:

========================  ======  =========  ====
Specification / Model      BERT   BERT-mini  LSTM
========================  ======  =========  ====
Hidden dimension            128       50      128
# of attention heads         6         2       --
# of hidden layers           12        6       3
========================  ======  =========  ====

(BERT-mini's hidden width of 50 is used as published even though 50 is not
divisible by 2 heads times a power-of-two head size; 50 / 2 heads = 25-wide
heads, which the attention layer supports.)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["BertConfig", "LstmConfig", "PRESETS", "get_preset"]


@dataclass(frozen=True)
class BertConfig:
    """Hyperparameters of a BERT encoder."""

    vocab_size: int
    hidden_dim: int = 128
    num_heads: int = 6
    num_layers: int = 12
    ffn_dim: int | None = None
    max_seq_len: int = 128
    dropout: float = 0.1
    num_classes: int = 2
    name: str = "bert"

    def __post_init__(self) -> None:
        if self.vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        if self.num_heads <= 0 or self.num_layers <= 0:
            raise ValueError("num_heads and num_layers must be positive")

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class LstmConfig:
    """Hyperparameters of the LSTM classifier."""

    vocab_size: int
    hidden_dim: int = 128
    num_layers: int = 3
    embed_dim: int | None = None  # defaults to hidden_dim
    dropout: float = 0.1
    num_classes: int = 2
    bidirectional: bool = False
    name: str = "lstm"

    def __post_init__(self) -> None:
        if self.vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")

    def to_dict(self) -> dict:
        return asdict(self)


def _bert_preset(vocab_size: int, **overrides) -> BertConfig:
    return BertConfig(vocab_size=vocab_size, **overrides)


PRESETS: dict[str, dict] = {
    # Paper Table II.  BERT-mini's published width (50) is indivisible by a
    # conventional 64-wide head; heads are 25-wide here.
    "bert": {"hidden_dim": 128, "num_heads": 6, "num_layers": 12, "kind": "bert"},
    "bert-mini": {"hidden_dim": 50, "num_heads": 2, "num_layers": 6, "kind": "bert"},
    "lstm": {"hidden_dim": 128, "num_layers": 3, "kind": "lstm"},
    # Scaled-down variants used by tests/benches so CPU runs stay fast; same
    # architecture family, fewer layers.
    "bert-tiny": {"hidden_dim": 32, "num_heads": 2, "num_layers": 2, "kind": "bert"},
    "lstm-tiny": {"hidden_dim": 32, "num_layers": 1, "kind": "lstm"},
}


def get_preset(name: str, vocab_size: int, **overrides) -> BertConfig | LstmConfig:
    """Build a config for one of the named presets (Table II plus tiny variants)."""
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; choose from {sorted(PRESETS)}")
    spec = dict(PRESETS[name])
    kind = spec.pop("kind")
    spec.update(overrides)
    if kind == "bert":
        return BertConfig(vocab_size=vocab_size, name=name, **spec)
    return LstmConfig(vocab_size=vocab_size, name=name, **spec)
