"""The paper's "recursive" model: a multi-layer LSTM classifier.

Table II: hidden dimension 128, 3 hidden layers.  The classifier reads the
EHR code sequence through an embedding layer, runs the LSTM stack, takes the
hidden state at the last valid position and maps it to class logits.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Tensor
from ..nn import LSTM, Dropout, Embedding, Linear, last_valid_pool
from .config import LstmConfig

__all__ = ["LstmClassifier"]


class LstmClassifier(Module):
    """Embedding → stacked LSTM → last-valid-state pooling → linear logits."""

    def __init__(self, config: LstmConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        embed_dim = config.embed_dim or config.hidden_dim
        self.embedding = Embedding(config.vocab_size, embed_dim, padding_idx=0, rng=rng)
        self.lstm = LSTM(embed_dim, config.hidden_dim, num_layers=config.num_layers,
                         dropout=config.dropout, bidirectional=config.bidirectional,
                         rng=rng)
        self.dropout = Dropout(config.dropout, rng=rng)
        out_width = config.hidden_dim * (2 if config.bidirectional else 1)
        self.classifier = Linear(out_width, config.num_classes, rng=rng)

    def forward(self, input_ids: np.ndarray,
                attention_mask: np.ndarray | None = None) -> Tensor:
        """Return ``(batch, num_classes)`` logits for ``(batch, seq)`` token ids."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        embedded = self.embedding(input_ids)
        outputs, _ = self.lstm(embedded, mask=attention_mask)
        pooled = last_valid_pool(outputs, attention_mask)
        return self.classifier(self.dropout(pooled))
