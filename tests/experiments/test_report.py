"""Report rendering."""

from __future__ import annotations

from repro.experiments import ascii_plot, format_series, format_table


def test_format_table_alignment():
    text = format_table(["a", "long-header"], [["x", 1], ["yy", 22]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long-header" in lines[1]
    assert "---" in lines[2]
    assert len(lines) == 5


def test_format_series():
    assert format_series("loss", [1.0, 0.5]) == "loss: [1.000, 0.500]"


def test_ascii_plot_contains_series_markers():
    plot = ascii_plot({"a": [3, 2, 1], "b": [1, 2, 3]}, width=20, height=5)
    assert "o=a" in plot and "x=b" in plot
    assert "3.000" in plot and "1.000" in plot


def test_ascii_plot_empty():
    assert ascii_plot({}) == "(no data)"


def test_ascii_plot_constant_series_safe():
    plot = ascii_plot({"flat": [1.0, 1.0, 1.0]})
    assert "flat" in plot
