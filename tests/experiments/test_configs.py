"""Paper constants (Tables I-III) and run scales."""

from __future__ import annotations

import pytest

from repro.experiments import (
    PAPER_PARAMETERS,
    SCALES,
    TABLE2_MODELS,
    TABLE3_PAPER_ACCURACY,
    get_scale,
)


class TestTable1:
    def test_eight_clients(self):
        assert PAPER_PARAMETERS["num_clients"] == 8

    def test_adam_at_1e2(self):
        assert PAPER_PARAMETERS["optimizer"] == "Adam"
        assert PAPER_PARAMETERS["learning_rate"] == pytest.approx(1e-2)

    def test_data_counts(self):
        data = PAPER_PARAMETERS["data"]
        assert data["pretrain_train"] == 453_377
        assert data["pretrain_valid"] == 8_683
        assert data["finetune_train"] == 6_927
        assert data["finetune_valid"] == 1_732

    def test_split_is_80_20(self):
        data = PAPER_PARAMETERS["data"]
        total = data["finetune_train"] + data["finetune_valid"]
        assert abs(data["finetune_train"] / total - 0.8) < 0.01


class TestTable2:
    def test_exact_transcription(self):
        assert TABLE2_MODELS["bert"] == {"hidden_dim": 128, "num_heads": 6,
                                         "num_layers": 12}
        assert TABLE2_MODELS["bert-mini"] == {"hidden_dim": 50, "num_heads": 2,
                                              "num_layers": 6}
        assert TABLE2_MODELS["lstm"]["num_layers"] == 3


class TestTable3Reference:
    def test_shape_claims_hold_in_paper_numbers(self):
        """The claims we reproduce must at least hold in the paper's table."""
        ref = TABLE3_PAPER_ACCURACY
        for model in ("bert", "bert-mini", "lstm"):
            assert ref["fl"][model] >= ref["centralized"][model] - 5.0
            assert ref["standalone"][model] < ref["fl"][model]
        assert ref["fl"]["lstm"] == max(ref["fl"].values())
        assert ref["centralized"]["lstm"] == max(ref["centralized"].values())


class TestScales:
    def test_paper_scale_full_counts(self):
        scale = SCALES["paper"]
        assert scale.cohort_size == 8_638
        assert scale.pretrain_sequences == 453_377
        assert scale.num_rounds == 10 and scale.local_epochs == 10

    def test_all_scales_use_paper_lr(self):
        for scale in SCALES.values():
            assert scale.lr == pytest.approx(1e-2)

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale().name == "smoke"

    def test_get_scale_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale("bench").name == "bench"

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_bench_models_are_table2(self):
        assert set(SCALES["bench"].models) == {"bert", "bert-mini", "lstm"}
