"""The `python -m repro.experiments` CLI."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


def test_table3_smoke(capsys):
    code = main(["table3", "--scale", "smoke"])
    out = capsys.readouterr().out
    assert "Table III" in out
    assert code in (0, 1)  # shape checks may not all hold at smoke scale


def test_fig3_smoke(capsys):
    code = main(["fig3", "--scale", "smoke"])
    out = capsys.readouterr().out
    assert "sec/local epoch" in out
    assert code == 0  # transcript stages must always be present


def test_unknown_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["fig9"])


def test_unknown_scale_rejected():
    with pytest.raises(SystemExit):
        main(["table3", "--scale", "galactic"])
