"""Smoke-scale runs of the three paper artifacts (Table III, Fig. 2, Fig. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    REGIMES,
    SCALES,
    Table3Result,
    TRANSCRIPT_STAGES,
    prepare_fig2_data,
    prepare_table3_data,
    run_fig2,
    run_fig3,
    run_table3_cell,
)

SMOKE = SCALES["smoke"]


class TestDataPreparation:
    def test_table3_shards_are_imbalanced_8way(self):
        train, valid, shards, vocab_size = prepare_table3_data(SMOKE)
        assert len(shards) == 8
        sizes = [len(s) for s in shards.values()]
        assert max(sizes) > 3 * min(sizes)  # paper ratios: 0.29 vs 0.02
        assert sum(sizes) == len(train)
        assert vocab_size > 5

    def test_table3_valid_is_fifth(self):
        train, valid, _, _ = prepare_table3_data(SMOKE)
        assert abs(len(valid) / (len(train) + len(valid)) - 0.2) < 0.02

    def test_fig2_data_sizes(self):
        train, valid, vocab, collator = prepare_fig2_data(SMOKE)
        assert len(train) == SMOKE.pretrain_sequences
        assert len(valid) == SMOKE.pretrain_valid
        assert collator.mask_prob == pytest.approx(0.15)


class TestTable3Cells:
    @pytest.mark.parametrize("scheme", ["centralized", "standalone", "fl"])
    def test_cell_runs_and_returns_percent(self, scheme):
        value = run_table3_cell(scheme, "lstm-tiny", scale=SMOKE)
        assert 0.0 <= value <= 100.0

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            run_table3_cell("quantum", "lstm-tiny", scale=SMOKE)

    def test_result_table_rendering(self):
        result = Table3Result(scale_name="smoke")
        result.set_cell("fl", "lstm", 87.5)
        result.set_cell("centralized", "lstm", 87.9)
        text = result.to_text()
        assert "87.5" in text and "(paper: 87.9)" in text

    def test_shape_checks_logic(self):
        result = Table3Result()
        result.set_cell("centralized", "lstm", 88.0)
        result.set_cell("fl", "lstm", 87.0)
        result.set_cell("standalone", "lstm", 67.0)
        result.set_cell("centralized", "bert", 80.0)
        result.set_cell("fl", "bert", 80.0)
        result.set_cell("standalone", "bert", 72.0)
        checks = result.shape_checks()
        assert all(checks.values()), checks


class TestFig2:
    def test_all_regimes_produce_curves(self):
        result = run_fig2(scale=SMOKE)
        assert set(result.curves) == set(REGIMES)
        for curve in result.curves.values():
            assert len(curve) == SMOKE.mlm_epochs
            assert all(np.isfinite(curve))

    def test_losses_start_near_log_vocab(self):
        result = run_fig2(scale=SMOKE, regimes=("centralized",))
        _, _, vocab, _ = prepare_fig2_data(SMOKE)
        assert abs(result.curves["centralized"][0] - np.log(len(vocab))) < 1.5

    def test_unknown_regime(self):
        with pytest.raises(ValueError):
            run_fig2(scale=SMOKE, regimes=("quantum",))

    def test_to_text_renders(self):
        result = run_fig2(scale=SMOKE, regimes=("centralized", "small"))
        text = result.to_text()
        assert "centralized" in text and "MLM loss" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def fig3(self):
        return run_fig3(scale=SMOKE)

    def test_all_stages_present(self, fig3):
        missing = [s for s, found in fig3.stages_found.items() if not found]
        assert not missing, f"missing stages: {missing}\n{fig3.transcript[:2000]}"

    def test_eight_tokens_issued(self, fig3):
        assert len(fig3.tokens) == 8
        assert all(len(t) == 36 for t in fig3.tokens.values())

    def test_timing_measured(self, fig3):
        assert fig3.seconds_per_local_epoch > 0

    def test_stage_patterns_match_paper_log_lines(self):
        """Regexes must match the literal lines from the paper's Fig. 3."""
        import re

        paper_lines = {
            "client_registration": "Client: New client site-1@127.0.0.1 joined. "
                                   "Sent token: 2c15ddc6-d8d3-4a98-8243-d850f27ac052. "
                                   "Total clients: 1",
            "local_epoch": "Local epoch site-3: 1/10 (lr=0.01), "
                           "train_loss=1.010, valid_acc=0.456",
            "aggregation": "aggregating 8 update(s) at round 9",
            "round_started": "Round 10 started.",
        }
        for stage, line in paper_lines.items():
            assert re.search(TRANSCRIPT_STAGES[stage], line), stage

    def test_to_text(self, fig3):
        text = fig3.to_text()
        assert "sec/local epoch" in text
