"""FLContext and the event/logging component base."""

from __future__ import annotations

from repro.flare import FLComponent, FLContext, LogCapture


class TestFLContext:
    def test_props(self):
        ctx = FLContext(identity="server", job_id="j1")
        ctx.set_prop("round", 3)
        assert ctx.get_prop("round") == 3
        assert ctx.get_prop("missing", "d") == "d"
        ctx.remove_prop("round")
        assert ctx.get_prop("round") is None

    def test_peer_props(self):
        ctx = FLContext()
        ctx.set_peer_prop("name", "site-1")
        assert ctx.get_peer_prop("name") == "site-1"

    def test_clone_is_independent(self):
        ctx = FLContext(identity="server")
        ctx.set_prop("a", 1)
        clone = ctx.clone(identity="site-1")
        clone.set_prop("a", 2)
        assert ctx.get_prop("a") == 1
        assert clone.identity == "site-1"

    def test_props_snapshot(self):
        ctx = FLContext()
        ctx.set_prop("a", 1)
        snapshot = ctx.props()
        snapshot["a"] = 99
        assert ctx.get_prop("a") == 1

    def test_repr(self):
        assert "server" in repr(FLContext(identity="server"))


class TestFLComponent:
    def test_default_name_is_class_name(self):
        class MyThing(FLComponent):
            pass

        assert MyThing().name == "MyThing"

    def test_events_delivered_to_targets(self):
        seen = []

        class Listener(FLComponent):
            def handle_event(self, event_type, fl_ctx):
                seen.append((self.name, event_type))

        a, b = Listener(name="a"), Listener(name="b")
        FLComponent().fire_event("ROUND_STARTED", FLContext(), targets=[a, b])
        assert seen == [("a", "ROUND_STARTED"), ("b", "ROUND_STARTED")]

    def test_fire_event_defaults_to_self(self):
        seen = []

        class Listener(FLComponent):
            def handle_event(self, event_type, fl_ctx):
                seen.append(event_type)

        Listener().fire_event("X", FLContext())
        assert seen == ["X"]

    def test_log_capture_collects_lines(self):
        capture = LogCapture().attach()
        try:
            component = FLComponent(name="TestComp")
            component.log_info("hello %s", "world")
        finally:
            capture.detach()
        assert any("TestComp" in line and "hello world" in line
                   for line in capture.lines)

    def test_log_format_matches_fig3_style(self):
        capture = LogCapture().attach()
        try:
            FLComponent(name="ScatterAndGather").log_info("Round %d started.", 0)
        finally:
            capture.detach()
        line = capture.lines[-1]
        # "2023-04-07 06:33:33,911 - ScatterAndGather - INFO - ..." shape
        assert " - ScatterAndGather - INFO - Round 0 started." in line
        assert line[:4].isdigit()
