"""Learner base class contract."""

from __future__ import annotations

import pytest

from repro.flare import DXO, DataKind, FLContext, Learner


def test_train_is_abstract():
    with pytest.raises(NotImplementedError):
        Learner().train(DXO(DataKind.WEIGHTS, data={}), FLContext())


def test_validate_is_abstract():
    with pytest.raises(NotImplementedError):
        Learner().validate(DXO(DataKind.WEIGHTS, data={}), FLContext())


def test_initialize_and_finalize_default_noop():
    learner = Learner()
    learner.initialize(FLContext())
    learner.finalize(FLContext())


def test_learner_is_component_with_name():
    assert Learner().name == "Learner"
