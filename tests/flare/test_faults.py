"""Deterministic chaos suite: full simulator runs over a faulty bus.

The acceptance scenario from the fault-injection issue: 8 clients with
drop_prob=0.2, one crashed site and two stragglers must complete every round
via partial aggregation, report the dropped sites and retry counts in
``RunStats``, and reproduce bit-identical final weights across runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import DXO, DataKind, FaultPlan, FLJob, MetaKey, SimulatorRunner

from .helpers import ToyLearner, toy_weights

pytestmark = pytest.mark.chaos

# The issue's reference chaos scenario: lossy links, one dead site, two slow
# ones.  Kept fast (tiny straggler delays) so the suite stays well under 60s.
CHAOS_PLAN = FaultPlan(
    seed=7,
    drop_prob=0.2,
    duplicate_prob=0.1,
    crashed_clients=("site-3",),
    stragglers={"site-5": 0.05, "site-7": 0.05},
)


def chaos_job(num_rounds: int = 3, **kw) -> FLJob:
    kw.setdefault("min_clients", 4)
    kw.setdefault("result_timeout", 10.0)
    return FLJob(name="chaos", initial_weights=toy_weights(0.0),
                 learner_factory=lambda name: ToyLearner(name, delta=1.0),
                 num_rounds=num_rounds, **kw)


def run_chaos(tmp_dir, plan=CHAOS_PLAN, num_rounds: int = 3, **kw):
    return SimulatorRunner(chaos_job(num_rounds, **kw), n_clients=8, seed=0,
                           run_dir=tmp_dir, capture_log=False,
                           fault_plan=plan).run()


class TestChaosScenario:
    def test_completes_all_rounds_via_partial_aggregation(self, tmp_path):
        result = run_chaos(tmp_path)
        assert result.stats.num_rounds == 3
        assert all(record.quorum_met for record in result.stats.rounds)
        # partial aggregation: the crashed site never contributes
        for record in result.stats.rounds:
            assert len(record.client_records) < 8

    def test_converges_to_clean_run_weights_when_quorum_holds(self, tmp_path):
        chaos = run_chaos(tmp_path / "chaos")
        clean = SimulatorRunner(chaos_job(), n_clients=8, seed=0,
                                run_dir=tmp_path / "clean",
                                capture_log=False).run()
        # every ToyLearner applies the same +delta, so FedAvg over any quorum
        # equals the full average and the chaos run must match exactly
        for key, value in clean.final_weights.items():
            assert np.array_equal(chaos.final_weights[key], value)

    def test_reports_dropped_clients_and_retries(self, tmp_path):
        result = run_chaos(tmp_path)
        assert "site-3" in result.stats.dropped_clients
        for record in result.stats.rounds:
            assert "site-3" in record.dropped_clients
        # the server re-sends to the crashed site every round, so retries
        # must have been recorded
        assert result.stats.retries > 0
        payload = result.stats.to_dict()
        assert payload["dropped_clients"] == result.stats.dropped_clients
        assert payload["retries"] == result.stats.retries

    def test_bit_identical_weights_across_same_seed_runs(self, tmp_path):
        first = run_chaos(tmp_path / "a")
        second = run_chaos(tmp_path / "b")
        assert set(first.final_weights) == set(second.final_weights)
        for key, value in first.final_weights.items():
            assert np.array_equal(second.final_weights[key], value)
        assert first.stats.dropped_clients == second.stats.dropped_clients


class TestDuplicatesAndQuorum:
    def test_duplicated_messages_counted_once(self, tmp_path):
        plan = FaultPlan(seed=3, duplicate_prob=1.0)
        job = chaos_job(num_rounds=2, min_clients=2)
        result = SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path,
                                 capture_log=False, fault_plan=plan).run()
        # every envelope was sent twice; dedup keeps each contribution single
        for record in result.stats.rounds:
            assert len(record.client_records) == 2
        np.testing.assert_allclose(result.final_weights["layer.weight"], 2.0)

    def test_under_quorum_round_keeps_model_and_continues(self, tmp_path):
        job = FLJob(name="quorum", initial_weights=toy_weights(0.0),
                    learner_factory=lambda n: ToyLearner(n, fail_on_round=1),
                    num_rounds=3, max_failed_rounds=1, result_timeout=10.0)
        result = SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path,
                                 capture_log=False).run()
        stats = result.stats
        assert stats.num_rounds == 3
        assert [r.quorum_met for r in stats.rounds] == [True, False, True]
        assert stats.failed_rounds == 1
        assert stats.rounds[1].dropped_clients == ["site-1", "site-2"]
        # round 1 kept the previous global model; rounds 0 and 2 advanced it
        np.testing.assert_allclose(result.final_weights["layer.weight"], 2.0)

    def test_aborts_after_consecutive_under_quorum_rounds(self, tmp_path):
        class FailFromRoundOne(ToyLearner):
            def train(self, dxo: DXO, fl_ctx) -> DXO:
                if int(fl_ctx.get_prop("current_round", 0)) >= 1:
                    raise RuntimeError("site offline")
                return super().train(dxo, fl_ctx)

        job = FLJob(name="abort", initial_weights=toy_weights(0.0),
                    learner_factory=FailFromRoundOne, num_rounds=5,
                    max_failed_rounds=1, result_timeout=10.0)
        with pytest.raises(RuntimeError, match="usable results"):
            SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path,
                            capture_log=False).run()


class TestFaultPlanValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="drop_prob"):
            FaultPlan(drop_prob=1.5)
        with pytest.raises(ValueError, match="corrupt_prob"):
            FaultPlan(corrupt_prob=-0.1)

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError, match="max_delay"):
            FaultPlan(max_delay=-1.0)
        with pytest.raises(ValueError, match="straggler"):
            FaultPlan(stragglers={"site-1": -0.5})

    def test_decisions_are_deterministic(self):
        plan_a = FaultPlan(seed=11, drop_prob=0.5)
        plan_b = FaultPlan(seed=11, drop_prob=0.5)
        keys = [f"s|r|train|{i}|0" for i in range(50)]
        assert [plan_a.unit("drop", k) for k in keys] == \
               [plan_b.unit("drop", k) for k in keys]
        assert any(plan_a.unit("drop", k) < 0.5 for k in keys)
        assert any(plan_a.unit("drop", k) >= 0.5 for k in keys)
