"""Property-based tests of the wire formats (DXO / Shareable / transport)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flare import DXO, DataKind, MessageBus, Shareable, from_dxo, to_dxo
from repro.flare.transport import _decode_shareable, _encode_shareable

header_keys = st.text(alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
                      min_size=1, max_size=12)
header_values = st.one_of(st.integers(-10**6, 10**6),
                          st.floats(-1e6, 1e6, allow_nan=False),
                          st.text(max_size=30), st.booleans(), st.none())


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(header_keys, header_values, max_size=6))
def test_shareable_header_roundtrip(headers):
    shareable = Shareable(headers)
    restored = _decode_shareable(_encode_shareable(shareable))
    assert dict(restored) == dict(shareable)


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(header_keys, st.floats(-1e6, 1e6, allow_nan=False),
                       min_size=1, max_size=4),
       st.integers(1, 40))
def test_dxo_through_shareable_roundtrip(metrics, n):
    dxo = DXO(DataKind.WEIGHTS,
              data={"w": np.arange(float(n))},
              meta=dict(metrics))
    shareable = from_dxo(dxo)
    restored = to_dxo(_decode_shareable(_encode_shareable(shareable)))
    np.testing.assert_array_equal(restored.data["w"], np.arange(float(n)))
    assert restored.meta == dxo.meta


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=0, max_size=64))
def test_bus_delivers_arbitrary_payload_bytes(byte_values):
    bus = MessageBus()
    bus.register_endpoint("a")
    bus.register_endpoint("b")
    bus.install_session_key("a", b"ka")
    bus.install_session_key("b", b"kb")
    shareable = Shareable({"blob": "x"})
    shareable["DXO"] = bytes(byte_values)
    bus.send_shareable("a", "b", "topic", shareable)
    _, _, received = bus.receive("b", timeout=1.0)
    assert received.get("DXO", b"") == bytes(byte_values)
