"""LogCapture and set_console_level: capture survives console quieting."""

from __future__ import annotations

import logging

import pytest

from repro.flare import LogCapture, set_console_level
from repro.flare.events import FLComponent, get_fl_logger


@pytest.fixture
def console_level():
    """Restore the console handler level the session fixture set."""
    handler = next(h for h in get_fl_logger().handlers
                   if h.get_name() == "fl-console")
    level = handler.level
    yield handler
    handler.setLevel(level)


class TestConsoleLevelInterplay:
    def test_quiet_console_still_captured(self, console_level):
        set_console_level(logging.ERROR)
        capture = LogCapture().attach()
        try:
            FLComponent(name="probe").log_info("info while console is quiet")
        finally:
            capture.detach()
        assert "info while console is quiet" in capture.text()

    def test_set_console_level_only_touches_console(self, console_level):
        capture = LogCapture().attach()
        try:
            set_console_level(logging.CRITICAL)
            assert console_level.level == logging.CRITICAL
            assert capture.level == logging.NOTSET  # untouched
        finally:
            capture.detach()

    def test_capture_formats_like_fig3(self, console_level):
        capture = LogCapture().attach()
        try:
            FLComponent(name="ScatterAndGather").log_info("Round %d started.", 0)
        finally:
            capture.detach()
        (line,) = capture.lines
        assert " - ScatterAndGather - INFO - Round 0 started." in line

    def test_detach_stops_collection(self):
        capture = LogCapture().attach()
        capture.detach()
        FLComponent(name="probe").log_info("after detach")
        assert capture.text() == ""

    def test_two_captures_see_the_same_lines(self):
        first, second = LogCapture().attach(), LogCapture().attach()
        try:
            FLComponent(name="probe").log_info("fan-out")
        finally:
            first.detach()
            second.detach()
        assert first.lines[-1] == second.lines[-1]
