"""Chaos suite for the health monitor: detectors must fire under injection.

The fault plans reuse the seeded :class:`FaultyMessageBus` machinery, so
every scenario is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import DXO, DataKind, FLJob, MetaKey, SimulatorRunner
from repro.flare.faults import FaultPlan
from repro.flare.stats import RunStats
from repro.obs import HealthMonitor
from repro.obs.health import DivergingClientDetector, StragglerDetector

from .helpers import ToyLearner, toy_weights

pytestmark = pytest.mark.chaos


class DivergingLearner(ToyLearner):
    """Honest ToyLearner everywhere except one site pulling hard backwards."""

    def __init__(self, site_name: str, bad_site: str = "site-3",
                 magnitude: float = 50.0) -> None:
        super().__init__(site_name, delta=1.0)
        self.bad_site = bad_site
        self.magnitude = magnitude

    def train(self, dxo: DXO, fl_ctx) -> DXO:
        result = super().train(dxo, fl_ctx)
        if self.site_name == self.bad_site:
            result.data = {k: np.asarray(v) - self.magnitude
                           for k, v in dxo.data.items()}
        return result


def run_job(learner_factory, *, n_clients=4, num_rounds=3, monitor=None,
            fault_plan=None, run_dir=None):
    job = FLJob(name="health-chaos", initial_weights=toy_weights(),
                learner_factory=learner_factory, num_rounds=num_rounds,
                min_clients=2)
    runner = SimulatorRunner(job, n_clients=n_clients, seed=0,
                             run_dir=run_dir, fault_plan=fault_plan,
                             health=monitor if monitor is not None else True)
    return runner.run()


class TestStragglerUnderInjection:
    def test_injected_transport_delay_raises_straggler_alert(self, tmp_path):
        plan = FaultPlan(seed=7, stragglers={"site-2": 0.25})
        monitor = HealthMonitor(
            run_dir=tmp_path,
            detectors=[StragglerDetector(ratio=3.0, min_seconds=0.05)])
        result = run_job(lambda name: ToyLearner(name, delta=1.0),
                         monitor=monitor, fault_plan=plan, run_dir=tmp_path)
        stragglers = [a for a in result.stats.alerts
                      if a.detector == "straggler"]
        assert stragglers, "injected 0.25s delay must trip the detector"
        assert {a.client for a in stragglers} == {"site-2"}


class TestDivergingUnderInjection:
    def test_diverging_client_flagged_with_right_identity(self, tmp_path):
        monitor = HealthMonitor(
            run_dir=tmp_path,
            detectors=[DivergingClientDetector(persist=2)])
        result = run_job(lambda name: DivergingLearner(name),
                         monitor=monitor, run_dir=tmp_path)
        diverging = [a for a in result.stats.alerts
                     if a.detector == "diverging-client"]
        assert diverging
        assert {a.client for a in diverging} == {"site-3"}
        # escalates: round 0 warning, persistent rounds critical
        severities = {a.round_number: a.severity for a in diverging}
        assert severities[0] == "warning"
        assert severities[2] == "critical"

    def test_detection_survives_a_lossy_bus(self, tmp_path):
        plan = FaultPlan(seed=3, drop_prob=0.05, duplicate_prob=0.05)
        monitor = HealthMonitor(
            run_dir=tmp_path,
            detectors=[DivergingClientDetector(persist=2)])
        result = run_job(lambda name: DivergingLearner(name),
                         monitor=monitor, fault_plan=plan, run_dir=tmp_path,
                         num_rounds=4)
        flagged = {a.client for a in result.stats.alerts
                   if a.detector == "diverging-client"}
        assert flagged == {"site-3"}


class TestQuarantineRoundTrip:
    def test_quarantine_and_readmission_through_runstats(self, tmp_path):
        monitor = HealthMonitor(
            run_dir=tmp_path,
            detectors=[DivergingClientDetector(persist=2)],
            quarantine_after=2, quarantine_rounds=2)
        result = run_job(lambda name: DivergingLearner(name),
                         monitor=monitor, run_dir=tmp_path, num_rounds=6)
        stats = result.stats
        assert "site-3" in stats.quarantined_clients
        quarantined_rounds = [r.round_number for r in stats.rounds
                              if "site-3" in r.quarantined_clients]
        assert quarantined_rounds, "some rounds must record the exclusion"
        # the excluded client must not block quorum for honest clients
        assert all(r.quorum_met for r in stats.rounds)

        # full serialization round-trip: alerts + per-round quarantine
        clone = RunStats.from_dict(stats.to_dict())
        assert [a.to_dict() for a in clone.alerts] == \
            [a.to_dict() for a in stats.alerts]
        assert clone.quarantined_clients == stats.quarantined_clients
        assert any(a.detector == "quarantine" and a.severity == "critical"
                   for a in clone.alerts)

    def test_readmitted_client_contributes_again(self, tmp_path):
        # misbehaves in rounds 0-1 only; after the 2-round sentence it is
        # re-admitted and its contributions count again
        class Recovering(DivergingLearner):
            def train(self, dxo, fl_ctx):
                round_number = int(fl_ctx.get_prop("current_round", 0))
                if round_number >= 2:
                    return ToyLearner.train(self, dxo, fl_ctx)
                return DivergingLearner.train(self, dxo, fl_ctx)

        monitor = HealthMonitor(
            run_dir=tmp_path,
            detectors=[DivergingClientDetector(persist=2)],
            quarantine_after=2, quarantine_rounds=2)
        result = run_job(lambda name: Recovering(name), monitor=monitor,
                         run_dir=tmp_path, num_rounds=6)
        readmissions = [a for a in result.stats.alerts
                        if a.detector == "quarantine" and a.severity == "info"]
        assert readmissions and readmissions[0].client == "site-3"
        assert monitor.quarantined_clients == []
        last_round = result.stats.rounds[-1]
        assert "site-3" not in last_round.quarantined_clients
