"""AsyncScatterAndGather: buffered async commits, staleness and reproducibility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import FLJob, SimulatorRunner, staleness_discount

from .helpers import ToyLearner, toy_weights


def async_job(**overrides) -> FLJob:
    defaults = dict(name="async", initial_weights=toy_weights(0.0),
                    learner_factory=lambda name: ToyLearner(name, delta=1.0),
                    num_rounds=3, mode="async", buffer_size=2, concurrency=4,
                    staleness_alpha=0.5)
    defaults.update(overrides)
    return FLJob(**defaults)


def run_job(job: FLJob, n_clients: int = 6, seed: int = 0):
    return SimulatorRunner(job, n_clients=n_clients, seed=seed,
                           threads=False, key_bits=128).run()


class TestStalenessDiscount:
    def test_fresh_updates_undiscounted(self):
        assert staleness_discount(0, 0.5) == 1.0

    def test_polynomial_decay(self):
        assert staleness_discount(1, 0.5) == pytest.approx(1 / np.sqrt(2))
        assert staleness_discount(3, 1.0) == pytest.approx(0.25)

    def test_alpha_zero_disables(self):
        assert staleness_discount(7, 0.0) == 1.0


class TestAsyncCommits:
    def test_every_window_commits_buffer_size_updates(self):
        result = run_job(async_job())
        assert result.stats.num_rounds == 3
        for record in result.stats.rounds:
            assert record.quorum_met
            assert len(record.client_records) == 2

    def test_staleness_observed_when_concurrency_exceeds_buffer(self):
        # 4 in flight, commits every 2: some updates must land >= 1 commit
        # after their dispatch, and the record keeps the count
        result = run_job(async_job())
        staleness = [c.staleness for r in result.stats.rounds
                     for c in r.client_records]
        assert max(staleness) >= 1
        assert min(staleness) == 0

    def test_same_seed_runs_are_bit_identical(self):
        a = run_job(async_job())
        b = run_job(async_job())
        for key in a.final_weights:
            assert np.array_equal(a.final_weights[key], b.final_weights[key])
        assert [c.staleness for r in a.stats.rounds for c in r.client_records] \
            == [c.staleness for r in b.stats.rounds for c in r.client_records]

    def test_discounted_fold_matches_closed_form(self):
        # one commit, buffer 2, concurrency 2: both updates are fresh, all
        # learners add +1 to a zero model, so the committed global is exactly 1
        result = run_job(async_job(num_rounds=1, buffer_size=2, concurrency=2))
        np.testing.assert_allclose(result.final_weights["layer.bias"],
                                   np.full(2, 1.0), rtol=1e-6)

    def test_peak_materialization_stays_constant(self):
        # streaming fold: only one decoded update is ever alive at a time,
        # regardless of cohort or buffer size
        result = run_job(async_job(buffer_size=4, concurrency=6), n_clients=12)
        assert result.stats.peak_materialized_updates == 1

    def test_bounded_concurrency(self):
        # no more than `concurrency` distinct sites hold a task per window
        result = run_job(async_job(num_rounds=1, buffer_size=2, concurrency=3))
        assert len(result.stats.rounds[0].client_records) <= 3


class TestAsyncFailureModes:
    def test_failed_clients_skipped_and_window_refills(self):
        # version-0 tasks hit the injected failure; redispatched waves (still
        # version 0) also fail, so windows only fill once version advances —
        # with every site failing at version 0, the first window can never
        # fill and under-quorum streaks abort the run
        job = async_job(learner_factory=lambda name: ToyLearner(
            name, delta=1.0, fail_on_round=0), max_failed_rounds=0,
            result_timeout=2.0)
        with pytest.raises(RuntimeError, match="under-quorum"):
            run_job(job)

    def test_under_quorum_windows_tolerated(self):
        job = async_job(num_rounds=2, max_failed_rounds=2, result_timeout=1.0,
                        learner_factory=lambda name: ToyLearner(
                            name, delta=1.0, fail_on_round=0))
        result = run_job(job)
        assert [r.quorum_met for r in result.stats.rounds] == [False, False]
        # global never moved
        np.testing.assert_array_equal(result.final_weights["layer.bias"],
                                      np.zeros(2, dtype=np.float32))

    def test_max_staleness_discards_old_updates(self):
        # max_staleness=0: stale updates are still received and recorded,
        # but never folded — every commit is a mean of fresh (+1) updates,
        # so the global advances by exactly 1 per commit; folding the v0
        # stragglers into window 1 would have pulled it below 2
        result = run_job(async_job(max_staleness=0, num_rounds=2))
        staleness = [c.staleness for r in result.stats.rounds
                     for c in r.client_records]
        assert max(staleness) >= 1
        np.testing.assert_allclose(result.final_weights["layer.bias"],
                                   np.full(2, 2.0), rtol=1e-6)

    def test_min_clients_cannot_exceed_buffer_size(self):
        with pytest.raises(ValueError, match="can never be met"):
            run_job(async_job(min_clients=5, buffer_size=2))

    def test_async_rejects_compression(self):
        with pytest.raises(ValueError, match="incompatible"):
            async_job(compression="delta+fp16")


class TestAsyncStatsRoundTrip:
    def test_staleness_survives_json_round_trip(self):
        from repro.flare import RunStats

        stats = run_job(async_job()).stats
        clone = RunStats.from_dict(stats.to_dict())
        assert [c.staleness for r in clone.rounds for c in r.client_records] \
            == [c.staleness for r in stats.rounds for c in r.client_records]
        assert clone.peak_materialized_updates == stats.peak_materialized_updates
