"""End-to-end multi-process federation over the shared-memory transport.

Acceptance bar, same as the socket runtime: the *same job, same seed* must
produce bit-identical global checkpoints whether the clients are threads on
the in-memory bus, processes on TCP loopback, or processes on the
fork-inherited shm fabric.  Plus the shm-specific properties: tensor bodies
cross mmap'd segments as zero-copy 64-byte-aligned views, segments never
outlive their message, and worker processes re-apply the parent's runtime
(dtype / backend / BLAS threads) after the fork.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.autograd import get_backend, get_default_dtype
from repro.flare import (
    FLJob,
    FLServer,
    ProcessClientRunner,
    Provisioner,
    Shareable,
    ShmMessageBus,
    SimulatorRunner,
    TransportError,
    WorkerRuntime,
    default_project,
)
from repro.flare.codec import decode_tensors, encode_tensors
from repro.flare.runner import TELEMETRY_TOPIC

from .helpers import ToyLearner, toy_weights


def toy_job(num_rounds: int = 2, min_clients: int = 4) -> FLJob:
    return FLJob(name="shm-e2e", initial_weights=toy_weights(0.0),
                 learner_factory=lambda name: ToyLearner(name, delta=1.0),
                 num_rounds=num_rounds, min_clients=min_clients,
                 result_timeout=60.0)


def run_sim(job: FLJob, transport: str, tmp_path, tag: str, **kwargs):
    runner = SimulatorRunner(job, n_clients=4, seed=7,
                             run_dir=tmp_path / f"{tag}-{transport}",
                             transport=transport, **kwargs)
    return runner.run()


class TestShmFabric:
    """Unit-level properties of the ShmMessageBus itself."""

    def _bus(self, **kwargs) -> ShmMessageBus:
        bus = ShmMessageBus(**kwargs)
        for name in ("server", "site-1"):
            bus.register_endpoint(name)
            bus.install_session_key(name, b"k" * 32)
        return bus

    def test_large_body_is_zero_copy_and_aligned(self):
        with self._bus() as bus:
            arrays = {"w": np.arange(256 * 256, dtype=np.float32).reshape(256, 256)}
            shareable = Shareable({"task": "train"})
            shareable["DXO"] = encode_tensors(arrays, {"data_kind": "WEIGHTS"})
            bus.send_shareable("site-1", "server", "result", shareable)
            _, _, received = bus.receive("server", timeout=5.0)
            body = received["DXO"]
            assert isinstance(body, memoryview)
            decoded, _ = decode_tensors(body)
            view = decoded["w"]
            assert not view.flags.owndata  # a view over the mapped segment
            assert view.ctypes.data % 64 == 0
            np.testing.assert_array_equal(view, arrays["w"])

    def test_small_body_rides_inline(self):
        with self._bus() as bus:
            before = int(bus.metrics.counter("transport.shm_segments").value)
            bus.send_shareable("server", "site-1", "ping", Shareable({"a": 1}))
            _, _, received = bus.receive("site-1", timeout=5.0)
            assert received["a"] == 1
            assert int(bus.metrics.counter("transport.shm_segments").value) == before

    def test_segments_are_unlinked_after_receive(self):
        with self._bus(inline_limit=0) as bus:
            shareable = Shareable({"t": "x"})
            shareable["DXO"] = os.urandom(1 << 16)
            bus.send_shareable("server", "site-1", "blob", shareable)
            assert len(os.listdir(bus.segment_dir)) == 1  # in flight
            bus.receive("site-1", timeout=5.0)
            assert os.listdir(bus.segment_dir) == []

    def test_close_removes_segment_dir(self):
        bus = self._bus()
        directory = bus.segment_dir
        assert os.path.isdir(directory)
        bus.close()
        assert not os.path.exists(directory)
        with pytest.raises(TransportError, match="closed"):
            bus.send_shareable("server", "site-1", "late", Shareable({}))

    def test_views_survive_after_bus_close(self):
        # decoded tensors must stay readable for as long as the caller
        # holds them: the mapping, not the bus, owns the pages
        bus = self._bus()
        arrays = {"w": np.full((128, 128), 3.0, dtype=np.float32)}
        shareable = Shareable({"t": "x"})
        shareable["DXO"] = encode_tensors(arrays)
        bus.send_shareable("server", "site-1", "blob", shareable)
        _, _, received = bus.receive("site-1", timeout=5.0)
        decoded, _ = decode_tensors(received["DXO"])
        bus.close()
        np.testing.assert_array_equal(decoded["w"], arrays["w"])


class TestShmEndToEnd:
    def test_toy_job_bit_identical_across_all_transports(self, tmp_path):
        job = toy_job()
        memory_result = run_sim(job, "memory", tmp_path, "toy")
        shm_result = run_sim(job, "shm", tmp_path, "toy")
        assert set(memory_result.final_weights) == set(shm_result.final_weights)
        for key in memory_result.final_weights:
            np.testing.assert_array_equal(memory_result.final_weights[key],
                                          shm_result.final_weights[key])
        assert memory_result.tokens == shm_result.tokens
        assert shm_result.stats.num_rounds == 2
        assert all(record.quorum_met for record in shm_result.stats.rounds)

    def test_telemetry_covers_worker_processes(self, tmp_path):
        result = run_sim(toy_job(), "shm", tmp_path, "telemetry",
                         telemetry=True)
        counters = json.loads(
            (result.run_dir / "metrics.json").read_text())["counters"]
        names = {entry["name"] for entry in counters}
        # parent-side segment accounting and child-side delivery totals both
        # landed in the one exported registry
        assert "transport.shm_segments" in names
        assert "transport.messages_delivered" in names

    def test_job_transport_field_drives_runner(self, tmp_path):
        job = toy_job()
        job.transport = "shm"
        result = SimulatorRunner(job, n_clients=4, seed=7,
                                 run_dir=tmp_path / "job-field").run()
        assert result.stats.num_rounds == 2


class TestRunnerOnShm:
    def _provision(self, n: int = 2):
        project = default_project(n_clients=n, name="t")
        kits = Provisioner(project, seed=0, key_bits=512).provision()
        hub = ShmMessageBus()
        server = FLServer(kits["server"], hub, seed=0)
        return kits, hub, server

    def test_client_processes_exit_cleanly(self):
        kits, hub, server = self._provision()
        runner = ProcessClientRunner(lambda name: ToyLearner(name), kits, server)
        names = ["site-1", "site-2"]
        tokens = runner.launch(names)
        assert set(tokens) == set(names)
        assert set(runner.alive()) == set(names)
        server.stop_clients(names)
        exit_codes = runner.join(timeout=20.0)
        assert exit_codes == {"site-1": 0, "site-2": 0}
        hub.close()

    def test_drain_telemetry_collects_every_worker(self):
        kits, hub, server = self._provision()
        runtime = WorkerRuntime.capture(2, telemetry=True)
        runner = ProcessClientRunner(lambda name: ToyLearner(name), kits,
                                     server, runtime=runtime)
        names = ["site-1", "site-2"]
        runner.launch(names)
        server.stop_clients(names)
        snapshots = runner.drain_telemetry(timeout=20.0)
        assert set(snapshots) == set(names)
        for name, snapshot in snapshots.items():
            assert snapshot["client"] == name
            assert snapshot["metrics"]["schema"] == "repro.obs.metrics/v1"
            assert snapshot["profile"]["schema"] == "repro.obs.profile/v1"
        runner.join(timeout=20.0)
        hub.close()

    def test_shm_requires_fork(self):
        kits, hub, server = self._provision()
        try:
            if "spawn" in __import__("multiprocessing").get_all_start_methods():
                with pytest.raises(ValueError, match="fork"):
                    ProcessClientRunner(lambda name: ToyLearner(name), kits,
                                        server, start_method="spawn")
        finally:
            hub.close()

    def test_child_side_registration_after_fork_fails_loudly(self):
        bus = ShmMessageBus()
        bus.register_endpoint("server")
        bus._owner_pid = os.getpid() + 1  # simulate "we are the child"
        with pytest.raises(TransportError, match="before the fork"):
            bus.register_endpoint("site-9")
        bus._owner_pid = os.getpid()
        bus.close()


class TestWorkerRuntime:
    def test_capture_snapshots_parent_state(self):
        runtime = WorkerRuntime.capture(4, telemetry=True)
        assert runtime.default_dtype == np.dtype(get_default_dtype()).name
        assert runtime.backend == get_backend()
        assert runtime.blas_threads >= 1
        assert runtime.telemetry

    def test_apply_restores_state(self):
        from repro.autograd import set_default_dtype

        runtime = WorkerRuntime(default_dtype="float64", backend="numpy",
                                blas_threads=1)
        previous = np.dtype(get_default_dtype()).name
        try:
            runtime.apply()
            assert np.dtype(get_default_dtype()).name == "float64"
            assert get_backend() == "numpy"
        finally:
            set_default_dtype(previous)
