"""Test helpers: a toy learner with predictable arithmetic behaviour."""

from __future__ import annotations

import numpy as np

from repro.flare import DXO, DataKind, FLContext, Learner, MetaKey


class ToyLearner(Learner):
    """'Trains' by adding a fixed delta to every incoming weight.

    Deterministic and instant, so controller/simulator logic can be verified
    exactly: after FedAvg of identical learners, global weights advance by
    ``delta`` per round.
    """

    def __init__(self, site_name: str, delta: float = 1.0, steps: int = 10,
                 fail_on_round: int | None = None) -> None:
        super().__init__(name="ToyLearner")
        self.site_name = site_name
        self.delta = delta
        self.steps = steps
        self.fail_on_round = fail_on_round
        self.initialized = False
        self.finalized = False
        self.train_calls = 0
        self.seen_rounds: list[int] = []

    def initialize(self, fl_ctx: FLContext) -> None:
        self.initialized = True

    def train(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        round_number = int(fl_ctx.get_prop("current_round", 0))
        self.seen_rounds.append(round_number)
        self.train_calls += 1
        if self.fail_on_round is not None and round_number == self.fail_on_round:
            raise RuntimeError("injected failure")
        updated = {key: np.asarray(value) + self.delta
                   for key, value in dxo.data.items()}
        return DXO(DataKind.WEIGHTS, data=updated,
                   meta={MetaKey.NUM_STEPS_CURRENT_ROUND: self.steps,
                         "train_loss": 1.0 / (1 + round_number),
                         "valid_acc": 0.5 + 0.01 * round_number})

    def validate(self, dxo: DXO, fl_ctx: FLContext) -> dict[str, float]:
        mean = float(np.mean([np.mean(np.asarray(v)) for v in dxo.data.values()]))
        return {"valid_acc": mean, "valid_loss": -mean}

    def finalize(self, fl_ctx: FLContext) -> None:
        self.finalized = True


def toy_weights(value: float = 0.0) -> dict[str, np.ndarray]:
    return {"layer.weight": np.full((2, 2), value, dtype=np.float32),
            "layer.bias": np.full(2, value, dtype=np.float32)}
