"""End-to-end multi-process federation over the socket transport.

The acceptance bar for the socket runtime: the *same job, same seed* must
produce bit-identical global checkpoints whether the clients are threads on
the in-memory bus or separate OS processes on TCP loopback.  FedAvg
accumulates contributions in float64 and casts the aggregate to float32,
so arrival-order differences between the fabrics wash out below the stored
precision — any surviving difference is a transport bug.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import MlmCollator, SequenceDataset, partition_balanced
from repro.flare import (
    FederatedClient,
    FLJob,
    FLServer,
    MessageBus,
    ProcessClientRunner,
    Provisioner,
    ReceiveTimeout,
    SimulatorRunner,
    default_project,
)
from repro.models import build_mlm_model
from repro.training import MlmPretrainLearner

from .helpers import ToyLearner, toy_weights


def toy_job(num_rounds: int = 2, min_clients: int = 4) -> FLJob:
    return FLJob(name="socket-e2e", initial_weights=toy_weights(0.0),
                 learner_factory=lambda name: ToyLearner(name, delta=1.0),
                 num_rounds=num_rounds, min_clients=min_clients)


def run_sim(job: FLJob, transport: str, tmp_path, tag: str, **kwargs):
    runner = SimulatorRunner(job, n_clients=4, seed=7,
                             run_dir=tmp_path / f"{tag}-{transport}",
                             transport=transport, **kwargs)
    return runner.run()


def assert_bit_identical(memory_result, socket_result) -> None:
    assert set(memory_result.final_weights) == set(socket_result.final_weights)
    for key in memory_result.final_weights:
        np.testing.assert_array_equal(memory_result.final_weights[key],
                                      socket_result.final_weights[key])


class TestSocketEndToEnd:
    def test_toy_job_bit_identical_across_transports(self, tmp_path):
        job = toy_job()
        memory_result = run_sim(job, "memory", tmp_path, "toy")
        socket_result = run_sim(job, "socket", tmp_path, "toy")
        assert_bit_identical(memory_result, socket_result)
        for key in memory_result.best_weights:
            np.testing.assert_array_equal(memory_result.best_weights[key],
                                          socket_result.best_weights[key])
        # seeded provisioning: the same sites get the same join tokens
        assert memory_result.tokens == socket_result.tokens
        assert socket_result.stats.num_rounds == 2
        assert all(record.quorum_met for record in socket_result.stats.rounds)

    def test_mlm_job_bit_identical_across_transports(self, tmp_path,
                                                     tiny_sequences,
                                                     tiny_cohort, vocab_size):
        """The ISSUE acceptance criterion: a 2-round federated MLM job."""
        shard_indices = partition_balanced(len(tiny_sequences), 4, seed=0)
        shards = {f"site-{i + 1}": tiny_sequences.subset(s)
                  for i, s in enumerate(shard_indices)}
        site_seeds = {name: 100 + i for i, name in enumerate(sorted(shards))}

        def model_factory():
            return build_mlm_model("bert-tiny", vocab_size=vocab_size, seed=0,
                                   max_seq_len=24)

        def learner_factory(client_name: str) -> MlmPretrainLearner:
            # per-site collator: MlmCollator is stateful (its masking RNG
            # advances per call), so sharing one across sites would tie the
            # masks to thread/process scheduling instead of the seed
            collator = MlmCollator(tiny_cohort.vocab,
                                   seed=site_seeds[client_name])
            return MlmPretrainLearner(
                site_name=client_name, model_factory=model_factory,
                train_data=shards[client_name], collator=collator,
                local_epochs=1, batch_size=16, lr=1e-3,
                seed=site_seeds[client_name])

        job = FLJob(name="mlm-socket", initial_weights=model_factory().state_dict(),
                    learner_factory=learner_factory, num_rounds=2, min_clients=4)
        memory_result = run_sim(job, "memory", tmp_path, "mlm")
        socket_result = run_sim(job, "socket", tmp_path, "mlm")
        assert_bit_identical(memory_result, socket_result)

    def test_health_monitor_over_sockets(self, tmp_path):
        result = run_sim(toy_job(), "socket", tmp_path, "health", health=True)
        health_path = result.run_dir / "health.jsonl"
        assert health_path.exists()
        records = [json.loads(line)
                   for line in health_path.read_text().splitlines() if line]
        rounds_seen = {record["round_number"] for record in records
                       if record.get("event") == "round"}
        assert rounds_seen == {0, 1}

    def test_telemetry_over_sockets(self, tmp_path):
        result = run_sim(toy_job(), "socket", tmp_path, "telemetry",
                         telemetry=True)
        counters = json.loads(
            (result.run_dir / "metrics.json").read_text())["counters"]
        names = {entry["name"] for entry in counters}
        # hub-side delivery totals made it into the run's telemetry export
        assert "transport.messages_delivered" in names

    def test_compression_over_sockets_matches_memory(self, tmp_path):
        job = toy_job()
        memory_result = run_sim(job, "memory", tmp_path, "comp",
                                compression="delta+fp16")
        socket_result = run_sim(job, "socket", tmp_path, "comp",
                                compression="delta+fp16")
        for key in memory_result.final_weights:
            np.testing.assert_allclose(memory_result.final_weights[key],
                                       socket_result.final_weights[key],
                                       atol=1e-3)


class TestRunnerAndConfig:
    def test_transport_validation(self):
        with pytest.raises(ValueError, match="transport"):
            SimulatorRunner(toy_job(), transport="carrier-pigeon")
        with pytest.raises(ValueError, match="transport"):
            FLJob(name="bad", initial_weights=toy_weights(),
                  learner_factory=lambda name: ToyLearner(name),
                  transport="carrier-pigeon")

    def test_socket_requires_threads(self):
        with pytest.raises(ValueError, match="threads"):
            SimulatorRunner(toy_job(), transport="socket", threads=False)

    def test_job_transport_field_drives_runner(self, tmp_path):
        job = toy_job()
        job.transport = "socket"
        result = SimulatorRunner(job, n_clients=4, seed=7,
                                 run_dir=tmp_path / "job-field").run()
        assert result.stats.num_rounds == 2

    def test_runner_rejects_memory_bus(self):
        project = default_project(n_clients=1, name="t")
        kits = Provisioner(project, seed=0, key_bits=512).provision()
        server = FLServer(kits["server"], MessageBus(), seed=0)
        with pytest.raises(TypeError, match="SocketMessageBus"):
            ProcessClientRunner(lambda name: ToyLearner(name), kits, server)

    def test_client_processes_exit_cleanly(self, tmp_path):
        from repro.flare.socket_transport import SocketMessageBus

        project = default_project(n_clients=2, name="t")
        kits = Provisioner(project, seed=0, key_bits=512).provision()
        hub = SocketMessageBus()
        server = FLServer(kits["server"], hub, seed=0)
        runner = ProcessClientRunner(lambda name: ToyLearner(name), kits,
                                     server, heartbeat_interval=0.5)
        names = ["site-1", "site-2"]
        tokens = runner.launch(names)
        assert set(tokens) == set(names)
        assert set(runner.alive()) == set(names)
        server.stop_clients(names)
        exit_codes = runner.join(timeout=20.0)
        assert exit_codes == {"site-1": 0, "site-2": 0}
        hub.close()

    def test_poll_once_timeout_names_the_stalled_wait(self):
        """Regression: a client's idle receive names topic and server peer."""
        project = default_project(n_clients=1, name="t")
        kits = Provisioner(project, seed=0, key_bits=512).provision()
        bus = MessageBus()
        server = FLServer(kits["server"], bus, seed=0)
        client = FederatedClient(kits["site-1"], ToyLearner("site-1"), bus)
        client.register(server)
        with pytest.raises(ReceiveTimeout) as excinfo:
            client.poll_once(timeout=0.05)
        assert excinfo.value.endpoint == "site-1"
        assert excinfo.value.topic == "task"
        assert excinfo.value.peer == server.name
        assert "expected topic 'task'" in str(excinfo.value)
