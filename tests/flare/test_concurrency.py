"""Simulator concurrency control: the max_parallel gate and thread hygiene."""

from __future__ import annotations

import threading
import time

import pytest

from repro.flare import DXO, DataKind, FaultPlan, FLJob, MetaKey, SimulatorRunner
from repro.flare.learner import Learner

from .helpers import ToyLearner, toy_weights


class ConcurrencyProbe(Learner):
    """Counts how many train() calls overlap in time."""

    lock = threading.Lock()
    active = 0
    peak = 0

    def __init__(self, site_name: str) -> None:
        super().__init__(name="ConcurrencyProbe")
        self.site_name = site_name

    def train(self, dxo: DXO, fl_ctx) -> DXO:
        cls = ConcurrencyProbe
        with cls.lock:
            cls.active += 1
            cls.peak = max(cls.peak, cls.active)
        time.sleep(0.05)
        with cls.lock:
            cls.active -= 1
        return DXO(DataKind.WEIGHTS, data=dict(dxo.data),
                   meta={MetaKey.NUM_STEPS_CURRENT_ROUND: 1})

    def validate(self, dxo, fl_ctx):
        return {}


@pytest.fixture(autouse=True)
def _reset_probe():
    ConcurrencyProbe.active = 0
    ConcurrencyProbe.peak = 0
    yield


def run_sim(max_parallel: int, n_clients: int = 6, tmp_dir=None):
    job = FLJob(name="probe", initial_weights=toy_weights(),
                learner_factory=ConcurrencyProbe, num_rounds=2)
    SimulatorRunner(job, n_clients=n_clients, seed=0, run_dir=tmp_dir,
                    max_parallel=max_parallel, capture_log=False).run()
    return ConcurrencyProbe.peak


def test_semaphore_caps_concurrent_training(tmp_path):
    peak = run_sim(max_parallel=2, tmp_dir=tmp_path)
    assert peak <= 2


def test_serialized_when_max_parallel_one(tmp_path):
    peak = run_sim(max_parallel=1, tmp_dir=tmp_path)
    assert peak == 1


def test_higher_cap_allows_overlap(tmp_path):
    peak = run_sim(max_parallel=6, tmp_dir=tmp_path)
    assert peak >= 2  # threads genuinely overlap when allowed


def test_invalid_max_parallel():
    job = FLJob(name="x", initial_weights=toy_weights(),
                learner_factory=ConcurrencyProbe)
    with pytest.raises(ValueError):
        SimulatorRunner(job, n_clients=2, max_parallel=0)


class TestNoThreadLeaks:
    """Every client worker thread must be joined, however the run ends."""

    @staticmethod
    def _live_threads() -> set[threading.Thread]:
        return {t for t in threading.enumerate() if t.is_alive()}

    def test_no_leak_after_faulted_run(self, tmp_path):
        before = self._live_threads()
        job = FLJob(name="leak-faulted", initial_weights=toy_weights(),
                    learner_factory=lambda n: ToyLearner(n), num_rounds=2,
                    min_clients=1, result_timeout=5.0)
        plan = FaultPlan(seed=1, drop_prob=0.3, crashed_clients=("site-2",))
        SimulatorRunner(job, n_clients=3, seed=0, run_dir=tmp_path,
                        capture_log=False, fault_plan=plan).run()
        assert self._live_threads() <= before

    def test_threads_joined_when_controller_aborts(self, tmp_path):
        before = self._live_threads()
        job = FLJob(name="leak-abort", initial_weights=toy_weights(),
                    learner_factory=lambda n: ToyLearner(n, fail_on_round=0),
                    num_rounds=3, result_timeout=5.0)
        with pytest.raises(RuntimeError, match="usable results"):
            SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path,
                            capture_log=False).run()
        assert self._live_threads() <= before
