"""End-to-end wire efficiency: compressed runs vs the uncompressed baseline.

The whole chain — downlink quantize/delta, client-side reconstruction,
uplink delta/quantize, server-side dequantize and streaming aggregation —
must produce the same federated trajectory as the plain path: bit-exact for
lossless configurations, within fp16 rounding otherwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    CompressionConfig,
    FLJob,
    SimulatorRunner,
    get_wire_codec,
    set_wire_codec,
)

from .helpers import ToyLearner, toy_weights


def run_sim(tmp_path, sub: str, *, learner=ToyLearner, rounds: int = 4,
            n_clients: int = 3, **kwargs):
    job = FLJob(name=f"e2e-{sub}", initial_weights=toy_weights(),
                learner_factory=lambda name: learner(name),
                num_rounds=rounds)
    return SimulatorRunner(job, n_clients=n_clients, seed=0,
                           run_dir=tmp_path / sub, capture_log=False,
                           **kwargs).run()


def max_abs_diff(a: dict, b: dict) -> float:
    assert set(a) == set(b)
    return max(float(np.max(np.abs(np.asarray(a[k], dtype=np.float64)
                                   - np.asarray(b[k], dtype=np.float64))))
               if np.asarray(a[k]).size else 0.0
               for k in a)


# ---------------------------------------------------------------------------
# parity
# ---------------------------------------------------------------------------
def test_delta_only_run_is_bit_exact(tmp_path):
    plain = run_sim(tmp_path, "plain")
    delta = run_sim(tmp_path, "delta",
                    compression=CompressionConfig(delta=True, float16=False))
    assert max_abs_diff(plain.final_weights, delta.final_weights) == 0.0
    for key in plain.final_weights:
        assert delta.final_weights[key].dtype == plain.final_weights[key].dtype


def test_deflate_run_is_bit_exact(tmp_path):
    plain = run_sim(tmp_path, "plain")
    packed = run_sim(tmp_path, "deflate",
                     compression=CompressionConfig(delta=True, float16=False,
                                                   deflate=True))
    assert max_abs_diff(plain.final_weights, packed.final_weights) == 0.0


def test_fp16_run_stays_within_quantization_tolerance(tmp_path):
    plain = run_sim(tmp_path, "plain")
    quantized = run_sim(tmp_path, "fp16", compression="delta+fp16")
    # toy weights stay small integers, exactly representable in fp16; with
    # real models the bound is fp16 rounding per round (documented in
    # docs/WIRE_FORMAT.md)
    assert max_abs_diff(plain.final_weights, quantized.final_weights) < 1e-2
    assert not quantized.stats.dropped_clients
    assert quantized.stats.failed_rounds == 0


def test_npz_codec_matches_raw_codec_bit_exactly(tmp_path):
    raw = run_sim(tmp_path, "raw-codec", wire_codec="raw")
    npz = run_sim(tmp_path, "npz-codec", wire_codec="npz")
    assert max_abs_diff(raw.final_weights, npz.final_weights) == 0.0
    # the process-wide codec is restored after each run
    assert get_wire_codec() == "raw"


def test_topk_run_converges_with_bounded_distortion(tmp_path):
    plain = run_sim(tmp_path, "plain", rounds=3)
    sparse = run_sim(tmp_path, "topk", rounds=3,
                     compression=CompressionConfig(delta=True, float16=False,
                                                   top_k=0.5))
    # toy tensors are below TopKSparsify's min_size, so they stay dense and
    # the run is exact — the point is the whole chain stays consistent
    assert max_abs_diff(plain.final_weights, sparse.final_weights) == 0.0


# ---------------------------------------------------------------------------
# wire accounting
# ---------------------------------------------------------------------------
def test_run_stats_carry_wire_byte_totals(tmp_path):
    result = run_sim(tmp_path, "accounting", compression="delta+fp16")
    assert result.stats.wire_bytes_raw > 0
    assert result.stats.wire_bytes_encoded > 0
    assert all(record.bytes_on_wire > 0 for record in result.stats.rounds)
    payload = result.stats.to_dict()
    assert payload["wire_bytes_raw"] == result.stats.wire_bytes_raw
    assert payload["rounds"][0]["bytes_on_wire"] > 0


def test_compression_reduces_tensor_bytes_on_wire(tmp_path):
    """With a model large enough that manifests don't dominate, delta+fp16
    more than halves the raw tensor traffic and deflate shrinks the blobs."""
    big = {"weight": np.zeros((128, 128), dtype=np.float32),
           "bias": np.zeros(128, dtype=np.float32)}

    def run(sub, **kwargs):
        job = FLJob(name=f"bytes-{sub}", initial_weights=big,
                    learner_factory=lambda name: ToyLearner(name, delta=0.25),
                    num_rounds=3)
        return SimulatorRunner(job, n_clients=2, seed=0,
                               run_dir=tmp_path / sub, capture_log=False,
                               **kwargs).run()

    plain = run("plain")
    packed = run("packed", compression="delta+fp16+deflate")
    assert packed.stats.bytes_delivered < plain.stats.bytes_delivered / 2
    # deflate makes encoded blobs smaller than their tensor payload
    assert packed.stats.wire_bytes_encoded < packed.stats.wire_bytes_raw
    assert max_abs_diff(plain.final_weights, packed.final_weights) < 1e-2


# ---------------------------------------------------------------------------
# robustness of the versioned downlink
# ---------------------------------------------------------------------------
def test_failing_client_keeps_downlink_versions_in_sync(tmp_path):
    class FlakyLearner(ToyLearner):
        def __init__(self, site_name):
            super().__init__(site_name,
                             fail_on_round=1 if site_name == "site-1" else None)

    job = FLJob(name="e2e-flaky", initial_weights=toy_weights(),
                learner_factory=lambda name: FlakyLearner(name),
                num_rounds=4, min_clients=2)
    result = SimulatorRunner(job, n_clients=3, seed=0,
                             run_dir=tmp_path / "flaky", capture_log=False,
                             compression="delta+fp16").run()
    # site-1 crashed in round 1 (after decoding the task), so it stays
    # synced and the run finishes with everyone contributing again
    assert result.stats.rounds[1].dropped_clients == ["site-1"]
    assert result.stats.rounds[2].dropped_clients == []
    assert result.stats.rounds[3].dropped_clients == []
    assert result.stats.failed_rounds == 0


def test_job_level_compression_spec_is_honoured(tmp_path):
    job = FLJob(name="e2e-jobspec", initial_weights=toy_weights(),
                learner_factory=lambda name: ToyLearner(name),
                num_rounds=2, compression="delta+fp16")
    assert isinstance(job.compression, CompressionConfig)
    runner = SimulatorRunner(job, n_clients=2, seed=0,
                             run_dir=tmp_path / "jobspec", capture_log=False)
    assert runner.compression is job.compression
    assert runner.wire_codec == "raw"
    result = runner.run()
    assert result.stats.wire_bytes_raw > 0


def test_sequential_mode_supports_compression(tmp_path):
    plain = run_sim(tmp_path, "seq-plain", threads=False)
    packed = run_sim(tmp_path, "seq-packed", threads=False,
                     compression=CompressionConfig(delta=True, float16=False))
    assert max_abs_diff(plain.final_weights, packed.final_weights) == 0.0


@pytest.mark.parametrize("config", [
    CompressionConfig(delta=True, float16=False),
    CompressionConfig(delta=True, float16=True),
    CompressionConfig(delta=True, float16=False, top_k=0.2),
    CompressionConfig(delta=True, float16=True, top_k=0.2),
], ids=["delta", "delta+fp16", "delta+topk", "delta+fp16+topk"])
def test_downlink_keeps_server_and_clients_bit_identical(config):
    """The sync invariant the whole delta protocol rests on: after every
    broadcast — full or (error-feedback truncated) delta — a synced client's
    reconstruction equals the server's canonical global model bit for bit."""
    from repro.flare import FLContext, InTimeAccumulateWeightedAggregator
    from repro.flare.controller import ScatterAndGather
    from repro.flare.shareable import to_dxo

    rng = np.random.default_rng(3)
    weights = {"w": rng.normal(size=600).astype(np.float32),
               "b": rng.normal(size=8).astype(np.float32)}
    controller = ScatterAndGather(
        server=object(), client_names=["site-1", "site-2"],
        initial_weights=weights,
        aggregator=InTimeAccumulateWeightedAggregator(),
        num_rounds=6, compression=config)
    ctx = FLContext(identity="server")
    client_filters = config.client_task_filters()

    def client_receive(shareable):
        dxo = to_dxo(shareable)
        for task_filter in client_filters:
            dxo = task_filter.process(dxo, ctx)
        return {k: np.array(v) for k, v in dxo.data.items()}

    client_model = None
    for round_number in range(6):
        task, overrides = controller._build_round_tasks(
            ["site-1", "site-2"], round_number, ctx)
        payload = (overrides or {}).get("site-1", task)
        client_model = client_receive(payload)
        assert set(client_model) == set(controller.global_weights)
        for key in client_model:
            server_side = np.asarray(controller.global_weights[key])
            assert client_model[key].dtype == server_side.dtype, key
            np.testing.assert_array_equal(client_model[key], server_side,
                                          err_msg=f"round {round_number} {key}")
        controller._client_version["site-1"] = round_number
        controller._client_version["site-2"] = round_number
        # simulate aggregation moving the global model
        controller.global_weights = {
            key: (np.asarray(value)
                  + rng.normal(0, 1e-2, size=np.asarray(value).shape)
                  ).astype(np.asarray(value).dtype)
            for key, value in controller.global_weights.items()}
        if round_number >= 1:
            assert overrides is not None and "site-1" in overrides


@pytest.mark.chaos
def test_compressed_run_survives_lossy_bus(tmp_path):
    from repro.flare import FaultPlan

    plan = FaultPlan(seed=5, drop_prob=0.05, corrupt_prob=0.02)
    job = FLJob(name="e2e-chaos", initial_weights=toy_weights(),
                learner_factory=lambda name: ToyLearner(name),
                num_rounds=5, min_clients=1, result_timeout=20.0,
                max_failed_rounds=5)
    result = SimulatorRunner(job, n_clients=3, seed=0,
                             run_dir=tmp_path / "chaos", capture_log=False,
                             fault_plan=plan,
                             compression="delta+fp16").run()
    # dropped/corrupt messages may cost contributions but never the run:
    # stale sites fall back to full broadcasts via the version protocol
    assert result.stats.num_rounds == 5
    for value in result.final_weights.values():
        assert np.all(np.isfinite(np.asarray(value, dtype=np.float64)))
