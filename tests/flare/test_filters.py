"""Privacy filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    DataKind,
    ExcludeVars,
    FLContext,
    FilterChain,
    GaussianPrivacy,
    NormClipPrivacy,
    PercentilePrivacy,
)


def ctx():
    return FLContext(identity="site-1")


def weights_dxo():
    rng = np.random.default_rng(0)
    return DXO(DataKind.WEIGHTS,
               data={"encoder.weight": rng.normal(size=(4, 4)),
                     "head.weight": rng.normal(size=(2, 4)),
                     "head.bias": rng.normal(size=2)},
               meta={"site": "site-1"})


class TestExcludeVars:
    def test_glob_exclusion(self):
        out = ExcludeVars(["head.*"]).process(weights_dxo(), ctx())
        assert set(out.data) == {"encoder.weight"}

    def test_meta_preserved(self):
        out = ExcludeVars(["head.*"]).process(weights_dxo(), ctx())
        assert out.meta["site"] == "site-1"

    def test_no_match_keeps_all(self):
        out = ExcludeVars(["nothing.*"]).process(weights_dxo(), ctx())
        assert len(out.data) == 3

    def test_empty_patterns_rejected(self):
        with pytest.raises(ValueError):
            ExcludeVars([])


class TestGaussianPrivacy:
    def test_adds_noise(self):
        dxo = weights_dxo()
        out = GaussianPrivacy(sigma0=0.1, seed=1).process(dxo, ctx())
        assert not np.allclose(out.data["encoder.weight"], dxo.data["encoder.weight"])

    def test_sigma_zero_is_identity(self):
        dxo = weights_dxo()
        out = GaussianPrivacy(sigma0=0.0).process(dxo, ctx())
        assert out is dxo

    def test_noise_scale_tracks_sigma(self):
        dxo = weights_dxo()
        small = GaussianPrivacy(sigma0=0.01, seed=2).process(dxo, ctx())
        large = GaussianPrivacy(sigma0=1.0, seed=2).process(dxo, ctx())
        err_small = np.abs(small.data["encoder.weight"] - dxo.data["encoder.weight"]).mean()
        err_large = np.abs(large.data["encoder.weight"] - dxo.data["encoder.weight"]).mean()
        assert err_large > 10 * err_small

    def test_metrics_passthrough(self):
        metrics = DXO(DataKind.METRICS, data={"acc": 0.9})
        assert GaussianPrivacy(sigma0=1.0).process(metrics, ctx()) is metrics

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianPrivacy(sigma0=-1.0)


class TestPercentilePrivacy:
    def test_clamps_outliers(self):
        data = {"w": np.concatenate([np.zeros(98), [100.0, -100.0]])}
        dxo = DXO(DataKind.WEIGHT_DIFF, data=data)
        out = PercentilePrivacy(percentile=5.0).process(dxo, ctx())
        assert out.data["w"].max() < 100.0
        assert out.data["w"].min() > -100.0

    def test_interior_values_preserved(self):
        data = {"w": np.linspace(-1, 1, 101)}
        out = PercentilePrivacy(percentile=10.0).process(
            DXO(DataKind.WEIGHTS, data=data), ctx())
        middle = out.data["w"][40:60]
        np.testing.assert_allclose(middle, np.linspace(-1, 1, 101)[40:60])

    def test_tiny_tensor_passthrough(self):
        dxo = DXO(DataKind.WEIGHTS, data={"b": np.array([5.0])})
        out = PercentilePrivacy(percentile=10.0).process(dxo, ctx())
        np.testing.assert_array_equal(out.data["b"], [5.0])

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            PercentilePrivacy(percentile=50.0)


class TestNormClip:
    def test_clips_to_max_norm(self):
        dxo = DXO(DataKind.WEIGHT_DIFF, data={"w": np.full(4, 10.0)})
        out = NormClipPrivacy(max_norm=1.0).process(dxo, ctx())
        norm = np.sqrt(sum(np.sum(np.asarray(v) ** 2) for v in out.data.values()))
        assert np.isclose(norm, 1.0, atol=1e-5)

    def test_under_norm_untouched(self):
        dxo = DXO(DataKind.WEIGHT_DIFF, data={"w": np.full(4, 0.01)})
        assert NormClipPrivacy(max_norm=10.0).process(dxo, ctx()) is dxo

    def test_global_across_tensors(self):
        dxo = DXO(DataKind.WEIGHT_DIFF,
                  data={"a": np.full(4, 3.0), "b": np.full(4, 4.0)})
        out = NormClipPrivacy(max_norm=1.0).process(dxo, ctx())
        # direction preserved: ratio a/b stays 3/4
        np.testing.assert_allclose(out.data["a"] / out.data["b"], 0.75)

    def test_bad_norm(self):
        with pytest.raises(ValueError):
            NormClipPrivacy(max_norm=0.0)


class TestFilterChain:
    def test_applies_in_order(self):
        chain = FilterChain([ExcludeVars(["head.*"]),
                             NormClipPrivacy(max_norm=0.5)])
        out = chain.process(weights_dxo(), ctx())
        assert set(out.data) == {"encoder.weight"}
        norm = np.linalg.norm(out.data["encoder.weight"])
        assert norm <= 0.5 + 1e-6

    def test_empty_chain_identity(self):
        dxo = weights_dxo()
        assert FilterChain([]).process(dxo, ctx()) is dxo
