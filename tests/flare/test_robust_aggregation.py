"""Robust aggregators, client sampling, straggler tolerance, stats export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    CoordinateMedianAggregator,
    DataKind,
    FLContext,
    FLJob,
    MetaKey,
    SimulatorRunner,
    TrimmedMeanAggregator,
)

from .helpers import ToyLearner, toy_weights


def ctx():
    c = FLContext()
    c.set_prop("current_round", 0)
    return c


def dxo_of(value, kind=DataKind.WEIGHTS):
    return DXO(kind, data={"w": np.full(4, float(value))},
               meta={MetaKey.NUM_STEPS_CURRENT_ROUND: 1})


class TestMedianAggregator:
    def test_median_of_values(self):
        agg = CoordinateMedianAggregator()
        agg.reset()
        for index, value in enumerate([1.0, 2.0, 100.0]):
            agg.accept(dxo_of(value), f"c{index}", ctx())
        np.testing.assert_allclose(agg.aggregate(ctx()).data["w"], 2.0)

    def test_byzantine_client_bounded_influence(self):
        """One corrupted site cannot move the median beyond honest values."""
        agg = CoordinateMedianAggregator()
        agg.reset()
        for index, value in enumerate([1.0, 1.1, 0.9, 1e9]):
            agg.accept(dxo_of(value), f"c{index}", ctx())
        out = agg.aggregate(ctx()).data["w"]
        assert np.all(out <= 1.1)

    def test_duplicate_and_mismatch_rejected(self):
        agg = CoordinateMedianAggregator()
        agg.reset()
        assert agg.accept(dxo_of(1.0), "a", ctx())
        assert not agg.accept(dxo_of(2.0), "a", ctx())
        other = DXO(DataKind.WEIGHTS, data={"v": np.ones(4)})
        assert not agg.accept(other, "b", ctx())

    def test_empty_raises(self):
        agg = CoordinateMedianAggregator()
        agg.reset()
        with pytest.raises(RuntimeError):
            agg.aggregate(ctx())

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            CoordinateMedianAggregator(expected_data_kind=DataKind.METRICS)


class TestTrimmedMean:
    def test_trims_extremes(self):
        agg = TrimmedMeanAggregator(trim=1)
        agg.reset()
        for index, value in enumerate([0.0, 1.0, 2.0, 3.0, 1000.0]):
            agg.accept(dxo_of(value), f"c{index}", ctx())
        np.testing.assert_allclose(agg.aggregate(ctx()).data["w"], 2.0)

    def test_trim_zero_is_mean(self):
        agg = TrimmedMeanAggregator(trim=0)
        agg.reset()
        for index, value in enumerate([1.0, 3.0]):
            agg.accept(dxo_of(value), f"c{index}", ctx())
        np.testing.assert_allclose(agg.aggregate(ctx()).data["w"], 2.0)

    def test_too_few_contributions(self):
        agg = TrimmedMeanAggregator(trim=2)
        agg.reset()
        for index in range(4):
            agg.accept(dxo_of(index), f"c{index}", ctx())
        with pytest.raises(RuntimeError, match="trimmed mean"):
            agg.aggregate(ctx())

    def test_negative_trim(self):
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(trim=-1)


class TestClientSampling:
    def _run(self, tmp_path, threads, clients_per_round=2, n_clients=5):
        learners: dict[str, ToyLearner] = {}

        def factory(name):
            learners[name] = ToyLearner(name)
            return learners[name]

        from repro.flare import (
            FederatedClient,
            FLServer,
            InTimeAccumulateWeightedAggregator,
            MessageBus,
            Provisioner,
            ScatterAndGather,
            default_project,
        )

        project = default_project(n_clients=n_clients, name="sample")
        kits = Provisioner(project, seed=0, key_bits=512).provision()
        bus = MessageBus()
        server = FLServer(kits["server"], bus, seed=0)
        clients = []
        for spec in project.clients:
            client = FederatedClient(kits[spec.name], factory(spec.name), bus)
            client.register(server)
            client.serve_in_thread()
            clients.append(client)
        controller = ScatterAndGather(
            server=server, client_names=[c.name for c in clients],
            initial_weights=toy_weights(),
            aggregator=InTimeAccumulateWeightedAggregator(),
            num_rounds=4, clients_per_round=clients_per_round)
        try:
            stats = controller.run()
        finally:
            server.stop_clients([c.name for c in clients])
            for client in clients:
                client.stop()
        return stats, learners

    def test_each_round_uses_subset(self, tmp_path):
        stats, _ = self._run(tmp_path, threads=True)
        for record in stats.rounds:
            assert len(record.client_records) == 2

    def test_min_clients_defaults_to_sample_size(self, tmp_path):
        stats, _ = self._run(tmp_path, threads=True)
        assert stats.num_rounds == 4

    def test_sampling_varies_over_rounds(self, tmp_path):
        stats, learners = self._run(tmp_path, threads=True)
        participants_per_round = [sorted(c.client for c in r.client_records)
                                  for r in stats.rounds]
        assert len({tuple(p) for p in participants_per_round}) > 1

    def test_invalid_sample_size(self, tmp_path):
        from repro.flare import InTimeAccumulateWeightedAggregator, ScatterAndGather

        with pytest.raises(ValueError):
            ScatterAndGather(server=None, client_names=["a"],  # type: ignore[arg-type]
                             initial_weights=toy_weights(),
                             aggregator=InTimeAccumulateWeightedAggregator(),
                             clients_per_round=2)


class TestStragglerTolerance:
    def test_round_survives_missing_result(self, tmp_path):
        """A client that never answers must not hang the round forever."""

        def factory(name):
            return ToyLearner(name)

        from repro.flare import (
            FederatedClient,
            FLServer,
            InTimeAccumulateWeightedAggregator,
            MessageBus,
            Provisioner,
            ScatterAndGather,
            default_project,
        )

        project = default_project(n_clients=2, name="straggle")
        kits = Provisioner(project, seed=0, key_bits=512).provision()
        bus = MessageBus()
        server = FLServer(kits["server"], bus, seed=0)
        clients = []
        for index, spec in enumerate(project.clients):
            client = FederatedClient(kits[spec.name], factory(spec.name), bus)
            client.register(server)
            if index > 0:
                client.serve_in_thread()  # the first client never polls
            clients.append(client)
        controller = ScatterAndGather(
            server=server, client_names=[c.name for c in clients],
            initial_weights=toy_weights(),
            aggregator=InTimeAccumulateWeightedAggregator(),
            num_rounds=1, min_clients=1, result_timeout=2.0)
        try:
            stats = controller.run()
        finally:
            server.stop_clients([c.name for c in clients])
            for client in clients:
                client.stop()
        assert stats.num_rounds == 1
        assert len(stats.rounds[0].client_records) == 1


class TestStatsExport:
    def test_json_roundtrip(self, tmp_path):
        from repro.flare import RunStats

        job = FLJob(name="export", initial_weights=toy_weights(),
                    learner_factory=lambda name: ToyLearner(name), num_rounds=2)
        result = SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path,
                                 capture_log=False).run()
        path = result.stats.save_json(tmp_path / "stats.json")
        import json

        restored = RunStats.from_dict(json.loads(path.read_text()))
        assert restored.num_rounds == 2
        assert restored.rounds[0].client_records[0].num_steps == 10
        assert restored.messages_delivered == result.stats.messages_delivered
