"""Client-sampling schedulers: determinism, bias, strata and quorum interplay."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.flare import (
    FLJob,
    SimulatorRunner,
    StratifiedSampler,
    UniformSampler,
    WeightedSampler,
    make_sampler,
)

from .helpers import ToyLearner, toy_weights

CLIENTS = [f"site-{i}" for i in range(1, 13)]


class TestUniformSampler:
    def test_same_seed_same_round_is_deterministic(self):
        a = UniformSampler(seed=7).sample(CLIENTS, 5, round_number=3)
        b = UniformSampler(seed=7).sample(CLIENTS, 5, round_number=3)
        assert a == b

    def test_draw_is_stateless_across_call_history(self):
        # round-3 draw does not depend on which rounds were sampled before
        fresh = UniformSampler(seed=7)
        warmed = UniformSampler(seed=7)
        for r in range(3):
            warmed.sample(CLIENTS, 5, round_number=r)
        assert fresh.sample(CLIENTS, 5, 3) == warmed.sample(CLIENTS, 5, 3)

    def test_rounds_differ_and_seeds_differ(self):
        sampler = UniformSampler(seed=0)
        draws = {tuple(sampler.sample(CLIENTS, 4, r)) for r in range(8)}
        assert len(draws) > 1
        assert UniformSampler(seed=1).sample(CLIENTS, 4, 0) != \
            UniformSampler(seed=2).sample(CLIENTS, 4, 0)

    def test_preserves_registration_order_and_uniqueness(self):
        picks = UniformSampler(seed=3).sample(CLIENTS, 6, 0)
        assert len(set(picks)) == 6
        indices = [CLIENTS.index(name) for name in picks]
        assert indices == sorted(indices)

    def test_n_at_least_population_returns_everyone(self):
        assert UniformSampler(seed=0).sample(CLIENTS, len(CLIENTS), 0) == CLIENTS
        assert UniformSampler(seed=0).sample(CLIENTS, 99, 0) == CLIENTS

    def test_rejects_non_positive_n(self):
        with pytest.raises(ValueError, match="positive"):
            UniformSampler().sample(CLIENTS, 0, 0)


class TestWeightedSampler:
    def test_large_sites_sampled_more_often(self):
        sizes = {name: 1.0 for name in CLIENTS}
        sizes["site-1"] = 50.0
        sampler = WeightedSampler(site_sizes=sizes, seed=0)
        counts = Counter()
        for r in range(200):
            counts.update(sampler.sample(CLIENTS, 3, r))
        assert counts["site-1"] > max(
            counts[name] for name in CLIENTS if name != "site-1")

    def test_unknown_sites_default_to_size_one(self):
        sampler = WeightedSampler(site_sizes={"site-1": 2.0}, seed=0)
        assert len(sampler.sample(CLIENTS, 4, 0)) == 4

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError, match="positive"):
            WeightedSampler(site_sizes={"site-1": 0.0})


class TestStratifiedSampler:
    SIZES = {name: float(i) for i, name in enumerate(CLIENTS, start=1)}

    def test_no_empty_stratum_when_budget_allows(self):
        # satellite pin: every non-empty stratum draws at least one site
        # whenever n >= number of strata
        sampler = StratifiedSampler(site_sizes=self.SIZES, n_strata=4, seed=0)
        for r in range(20):
            picks = sampler.sample(CLIENTS, 4, r)
            strata = sampler._strata(CLIENTS)
            assert all(any(name in stratum for name in picks)
                       for stratum in strata), f"empty stratum at round {r}"

    def test_allocation_is_proportional_and_exact(self):
        quotas = StratifiedSampler._allocate(6, [3, 3, 3, 3])
        assert sum(quotas) == 6
        assert all(q >= 1 for q in quotas)
        quotas = StratifiedSampler._allocate(10, [1, 1, 1, 17])
        assert sum(quotas) == 10
        assert all(q <= pop for q, pop in zip(quotas, [1, 1, 1, 17]))

    def test_more_strata_than_clients_degrades_gracefully(self):
        sampler = StratifiedSampler(site_sizes=self.SIZES, n_strata=50, seed=0)
        picks = sampler.sample(CLIENTS, 5, 0)
        assert len(set(picks)) == 5

    def test_deterministic_per_round(self):
        a = StratifiedSampler(site_sizes=self.SIZES, n_strata=3, seed=9)
        b = StratifiedSampler(site_sizes=self.SIZES, n_strata=3, seed=9)
        assert a.sample(CLIENTS, 7, 5) == b.sample(CLIENTS, 7, 5)


class TestMakeSampler:
    def test_spec_strings(self):
        assert isinstance(make_sampler("uniform"), UniformSampler)
        assert isinstance(make_sampler("weighted"), WeightedSampler)
        stratified = make_sampler("stratified:6", seed=2)
        assert isinstance(stratified, StratifiedSampler)
        assert stratified.n_strata == 6
        assert make_sampler("stratified").n_strata == 4

    def test_none_and_instance_pass_through(self):
        assert make_sampler(None) is None
        sampler = UniformSampler(seed=5)
        assert make_sampler(sampler) is sampler

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            make_sampler("roulette")


class TestSamplingQuorumInterplay:
    """Satellite: sampled rounds × quorum/min_clients behaviour."""

    def test_min_clients_above_clients_per_round_rejected(self):
        job = FLJob(name="q", initial_weights=toy_weights(),
                    learner_factory=lambda name: ToyLearner(name),
                    num_rounds=1, clients_per_round=2, min_clients=3)
        with pytest.raises(ValueError, match="can never be met"):
            SimulatorRunner(job, n_clients=5, threads=False,
                            key_bits=128).run()

    def test_under_quorum_sampled_round_keeps_previous_global(self):
        # every site fails on round 1, so the sampled round-1 cohort yields
        # zero usable updates; with max_failed_rounds=1 the run keeps the
        # previous global and recovers at round 2
        job = FLJob(name="q", initial_weights=toy_weights(0.0),
                    learner_factory=lambda name: ToyLearner(
                        name, delta=1.0, fail_on_round=1),
                    num_rounds=3, clients_per_round=3, min_clients=2,
                    max_failed_rounds=1, sampler="uniform")
        result = SimulatorRunner(job, n_clients=8, seed=0, threads=False,
                                 key_bits=128).run()
        quorum = [r.quorum_met for r in result.stats.rounds]
        assert quorum == [True, False, True]
        # global advanced by delta exactly twice (rounds 0 and 2)
        np.testing.assert_allclose(
            result.final_weights["layer.bias"], np.full(2, 2.0), rtol=1e-6)
        assert result.stats.rounds[1].dropped_clients  # sampled sites dropped

    def test_sampled_run_tasks_exactly_clients_per_round(self):
        job = FLJob(name="q", initial_weights=toy_weights(),
                    learner_factory=lambda name: ToyLearner(name),
                    num_rounds=4, clients_per_round=3, sampler="stratified",
                    site_sizes={f"site-{i}": float(i) for i in range(1, 9)})
        result = SimulatorRunner(job, n_clients=8, seed=0, threads=False,
                                 key_bits=128).run()
        for record in result.stats.rounds:
            assert len(record.client_records) == 3
            assert record.quorum_met

    def test_controller_truncates_participant_log(self):
        # satellite pin: at scale the sampled-cohort log line stays short
        job = FLJob(name="q", initial_weights=toy_weights(),
                    learner_factory=lambda name: ToyLearner(name),
                    num_rounds=1, clients_per_round=10)
        result = SimulatorRunner(job, n_clients=12, seed=0, threads=False,
                                 key_bits=128).run()
        sampled = [line for line in result.log_text.splitlines()
                   if "sampled 10/12 clients" in line]
        assert sampled and "… and 2 more" in sampled[0]
