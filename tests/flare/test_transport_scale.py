"""Satellite pin: per-sender transport state stays bounded at 1,000 endpoints.

A massive cohort must not turn the bus into a memory leak: dedup windows are
capped per endpoint, sequence counters are one integer per sender, and the
delivery metrics are keyed per *topic* (bounded) rather than per message or
per peer (unbounded).
"""

from __future__ import annotations

from repro.flare import MessageBus, Shareable
from repro.flare.transport import _DEDUP_WINDOW

N_ENDPOINTS = 1_000
KEY = b"k" * 32


def scaled_bus() -> MessageBus:
    bus = MessageBus()
    bus.register_endpoint("server")
    bus.install_session_key("server", KEY)
    for i in range(N_ENDPOINTS):
        name = f"site-{i}"
        bus.register_endpoint(name)
        bus.install_session_key(name, KEY)
    return bus


class TestThousandEndpointState:
    def test_registration_state_is_one_entry_per_endpoint(self):
        bus = scaled_bus()
        assert len(bus._session_keys) == N_ENDPOINTS + 1
        # nothing sent yet: dedup windows exist but are empty, and no
        # sequence counters have been allocated
        assert all(len(seen) == 0 for seen in bus._seen_ids.values())
        assert len(bus._send_seq) == 0

    def test_dedup_window_is_capped_per_endpoint(self):
        bus = scaled_bus()
        extra = 500
        for _ in range(_DEDUP_WINDOW + extra):
            bus.send_shareable("server", "site-0", "train", Shareable())
            bus.receive("site-0", timeout=1.0)
        assert len(bus._seen_ids["site-0"]) == _DEDUP_WINDOW
        # only the receiving endpoint grew a window
        assert all(len(seen) == 0 for name, seen in bus._seen_ids.items()
                   if name != "site-0")

    def test_duplicates_inside_window_still_dropped(self):
        bus = scaled_bus()
        msg_id = bus.next_msg_id("server")
        bus.send_shareable("server", "site-0", "train", Shareable(),
                           msg_id=msg_id, attempt=0)
        bus.send_shareable("server", "site-0", "train", Shareable(),
                           msg_id=msg_id, attempt=1)
        bus.receive("site-0", timeout=1.0)
        before = bus.duplicates_dropped
        assert bus.pending("site-0") in (0, 1)  # resend may be queued
        # draining must dedup the resend rather than deliver it twice
        try:
            bus.receive("site-0", timeout=0.05)
        except Exception:
            pass
        assert bus.duplicates_dropped == before + 1

    def test_sequence_counters_are_one_int_per_sender(self):
        bus = scaled_bus()
        for _ in range(100):
            bus.send_shareable("server", "site-1", "train", Shareable())
        for i in range(50):
            bus.send_shareable(f"site-{i}", "server", "result", Shareable())
        # 1 server entry + 50 client entries, regardless of message volume
        assert len(bus._send_seq) == 51
        assert bus._send_seq["server"] == 100

    def test_metrics_cardinality_scales_with_topics_not_peers(self):
        bus = scaled_bus()
        for i in range(200):
            bus.send_shareable("server", f"site-{i}", "train", Shareable())
            bus.receive(f"site-{i}", timeout=1.0)
            bus.send_shareable(f"site-{i}", "server", "result", Shareable())
            bus.receive("server", timeout=1.0)
        # two topics in flight -> instrument families stay a handful, not
        # O(peers) or O(messages)
        assert len(bus.metrics._counters) <= 12
        assert len(bus.metrics._histograms) <= 12

    def test_histogram_samples_are_bounded(self):
        from repro.obs.metrics import EXACT_SAMPLE_LIMIT

        bus = scaled_bus()
        for _ in range(EXACT_SAMPLE_LIMIT + 50):
            bus.send_shareable("server", "site-2", "train", Shareable())
            bus.receive("site-2", timeout=1.0)
        latency = bus.metrics.histogram("transport.latency_seconds",
                                        topic="train")
        # past the exact-sample limit the raw-sample list is released and
        # only fixed-size bucket counts remain
        assert latency._samples is None
        assert latency.count == EXACT_SAMPLE_LIMIT + 50
