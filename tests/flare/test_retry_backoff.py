"""Retry/backoff, idempotency and HMAC-rejection properties of the transport.

Property-style: seeded loops over drop probabilities and fault mixes rather
than single examples, asserting the invariants that make resends safe —
bounded attempts, monotone backoff, exactly-once delivery under duplication
and replay, and corruption rejected by signature checks instead of crashes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    DataKind,
    FaultPlan,
    FaultyMessageBus,
    FLServer,
    FederatedClient,
    MessageBus,
    Provisioner,
    ReceiveTimeout,
    RetryPolicy,
    Shareable,
    SignatureError,
    TaskName,
    TransportError,
    default_project,
    from_dxo,
    send_with_retry,
    to_dxo,
)

from .helpers import ToyLearner, toy_weights


def wired_bus(bus: MessageBus | None = None) -> MessageBus:
    bus = bus if bus is not None else MessageBus()
    for name, key in (("server", b"server-key"), ("site-1", b"client-key")):
        bus.register_endpoint(name)
        bus.install_session_key(name, key)
    return bus


def payload() -> Shareable:
    return from_dxo(DXO(DataKind.WEIGHTS, data={"w": np.arange(4.0)}))


FAST = RetryPolicy(max_attempts=5, base_delay=0.0, max_delay=0.0)


class TestBackoffPolicy:
    def test_backoff_is_monotone_and_bounded(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.01,
                             multiplier=2.0, max_delay=0.1)
        delays = [policy.delay_for(attempt) for attempt in range(8)]
        assert delays == sorted(delays)
        assert all(delay <= policy.max_delay for delay in delays)
        assert delays[0] == pytest.approx(0.01)
        assert delays[-1] == pytest.approx(0.1)  # capped

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-0.1)


class TestBoundedRetries:
    @pytest.mark.parametrize("drop_prob", [0.1, 0.3, 0.5, 0.8])
    def test_attempts_bounded_for_any_drop_probability(self, drop_prob):
        for seed in range(8):
            bus = wired_bus(FaultyMessageBus(FaultPlan(seed=seed,
                                                       drop_prob=drop_prob)))
            try:
                attempts = send_with_retry(bus, "server", "site-1", "train",
                                           payload(), FAST)
            except TransportError:
                # every attempt dropped: the retry budget must be exhausted,
                # never exceeded
                assert bus.injected_drops >= FAST.max_attempts
                continue
            assert 1 <= attempts <= FAST.max_attempts
            assert bus.pending("site-1") == 1
            assert bus.retry_count == attempts - 1

    def test_all_attempts_share_one_message_id(self):
        # drop_prob=1 with a huge budget exercises many resends of one id
        bus = wired_bus(FaultyMessageBus(FaultPlan(seed=0, drop_prob=1.0)))
        with pytest.raises(TransportError, match="undeliverable"):
            send_with_retry(bus, "server", "site-1", "train", payload(),
                            RetryPolicy(max_attempts=7, base_delay=0.0,
                                        max_delay=0.0))
        assert bus.injected_drops == 7


class TestExactlyOnceDelivery:
    def test_duplicate_send_is_deduplicated_exactly_once(self):
        bus = wired_bus()
        msg_id = bus.next_msg_id("server")
        for attempt in range(2):  # a resend after a delivered-but-unacked send
            bus.send_shareable("server", "site-1", "train", payload(),
                               msg_id=msg_id, attempt=attempt)
        sender, topic, _ = bus.receive("site-1", timeout=1.0)
        assert (sender, topic) == ("server", "train")
        with pytest.raises(ReceiveTimeout):
            bus.receive("site-1", timeout=0.1)
        assert bus.duplicates_dropped == 1

    def test_replayed_envelope_rejected(self):
        bus = wired_bus()
        bus.send_shareable("server", "site-1", "train", payload())
        captured = bus._queues["site-1"].queue[0]
        bus.receive("site-1", timeout=1.0)
        bus._queues["site-1"].put(captured)  # attacker replays old envelope
        with pytest.raises(ReceiveTimeout):
            bus.receive("site-1", timeout=0.1)
        assert bus.duplicates_dropped == 1

    def test_injected_duplicates_all_deduplicated(self):
        for seed in range(5):
            bus = wired_bus(FaultyMessageBus(FaultPlan(seed=seed,
                                                       duplicate_prob=1.0)))
            for i in range(5):
                shareable = Shareable({"i": i})
                bus.send_shareable("server", "site-1", "t", shareable)
            got = [bus.receive("site-1", timeout=1.0)[2]["i"] for _ in range(5)]
            assert got == list(range(5))
            with pytest.raises(ReceiveTimeout):
                bus.receive("site-1", timeout=0.1)
            assert bus.duplicates_dropped == 5


class TestCorruptionRejected:
    def test_corrupted_payload_fails_hmac(self):
        for seed in range(5):
            bus = wired_bus(FaultyMessageBus(FaultPlan(seed=seed,
                                                       corrupt_prob=1.0)))
            bus.send_shareable("server", "site-1", "train", payload())
            with pytest.raises(SignatureError, match="signature"):
                bus.receive("site-1", timeout=1.0)

    def test_empty_body_corruption_still_rejected(self):
        bus = wired_bus(FaultyMessageBus(FaultPlan(seed=0, corrupt_prob=1.0)))
        bus.send_shareable("server", "site-1", "ping", Shareable())
        with pytest.raises(SignatureError):
            bus.receive("site-1", timeout=1.0)


@pytest.fixture()
def world():
    project = default_project(n_clients=2, name="partial")
    kits = Provisioner(project, seed=0, key_bits=512).provision()
    bus = MessageBus()
    server = FLServer(kits["server"], bus, seed=0)
    clients = [FederatedClient(kits[f"site-{i}"], ToyLearner(f"site-{i}"), bus)
               for i in (1, 2)]
    for client in clients:
        client.register(server)
    return server, clients, bus


def train_task() -> Shareable:
    return from_dxo(DXO(DataKind.WEIGHTS, data=toy_weights(0.0)))


class TestPartialCollection:
    """Regression: a timeout mid-collection must not lose received results."""

    def test_partial_results_survive_timeout(self, world):
        server, clients, _ = world
        server.broadcast_task(TaskName.TRAIN, train_task(),
                              ["site-1", "site-2"])
        clients[0].poll_once(timeout=1.0)  # only site-1 answers
        results = server.collect_results(2, timeout=0.3)
        assert [sender for sender, _ in results] == ["site-1"]
        np.testing.assert_allclose(to_dxo(results[0][1]).data["layer.weight"],
                                   1.0)

    def test_corrupted_result_skipped_not_fatal(self, world):
        server, clients, bus = world
        server.broadcast_task(TaskName.TRAIN, train_task(),
                              ["site-1", "site-2"])
        clients[0].poll_once(timeout=1.0)
        clients[1].poll_once(timeout=1.0)
        # corrupt site-2's queued result in flight (results are collected
        # FIFO, so the corrupted envelope is hit before the deadline)
        for message in bus._queues[server.name].queue:
            if message.sender == "site-2":
                message.body = message.body[:-1] + bytes(
                    [message.body[-1] ^ 0xFF])
        results = server.collect_results(2, timeout=0.3)
        assert [sender for sender, _ in results] == ["site-1"]

    def test_empty_collection_returns_empty_list(self, world):
        server, _, _ = world
        assert server.collect_results(1, timeout=0.1) == []

    def test_client_retry_counter_tracks_resends(self, world):
        server, clients, _ = world
        # replace the bus send path with one that drops the first attempt
        client = clients[0]
        client.retry_policy = RetryPolicy(max_attempts=3, base_delay=0.0,
                                          max_delay=0.0)
        original = client.bus.send_shareable
        state = {"failed": False}

        def flaky_send(sender, recipient, topic, shareable, msg_id=None,
                       attempt=0):
            if topic.endswith(":result") and not state["failed"]:
                state["failed"] = True
                raise TransportError("injected first-attempt drop")
            return original(sender, recipient, topic, shareable,
                            msg_id=msg_id, attempt=attempt)

        client.bus.send_shareable = flaky_send
        try:
            server.broadcast_task(TaskName.TRAIN, train_task(), ["site-1"])
            client.poll_once(timeout=1.0)
        finally:
            client.bus.send_shareable = original
        assert client.retries == 1
        assert len(server.collect_results(1, timeout=1.0)) == 1
